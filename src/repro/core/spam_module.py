"""The spam-filtering function module (client half + provider half).

The provider trains (or is given) a two-category linear spam model — GR-NB by
default, LR or SVM alternatively (§3.1) — quantizes it, and runs the setup
phase of the spam protocol; the client stores the encrypted model.  Per email
the module runs the protocol of :mod:`repro.twopc.spam` and the *client*
learns the one-bit verdict (§4.4 guarantee 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.classify.features import FeatureExtractor
from repro.classify.model import LinearModel, QuantizedLinearModel
from repro.classify.naive_bayes import GrahamRobinsonNaiveBayes
from repro.core.config import PretzelConfig
from repro.core.modules import FunctionModule, ModuleRunResult
from repro.exceptions import ClassifierError
from repro.mail.message import EmailMessage
from repro.twopc.spam import SpamFilterProtocol, SpamSetup


@dataclass
class SpamModuleOutput:
    """What the client learns: a single bit."""

    is_spam: bool


class SpamFunctionModule(FunctionModule):
    """Joint spam filtering over encrypted email."""

    name = "spam-filter"

    def __init__(
        self,
        config: PretzelConfig,
        extractor: FeatureExtractor,
        linear_model: LinearModel,
        joint_seed: bytes | None = None,
    ) -> None:
        if linear_model.num_categories != 2:
            raise ClassifierError("the spam module needs a two-category model")
        self.config = config
        self.extractor = extractor
        self.scheme = config.build_scheme()
        self.group = config.build_group()
        self.quantized = QuantizedLinearModel.from_linear_model(
            linear_model,
            value_bits=config.value_bits,
            frequency_bits=config.frequency_bits,
            max_features_per_email=config.max_features_per_email,
        )
        self.protocol = SpamFilterProtocol(
            self.scheme,
            self.group,
            across_row_packing=config.across_row_packing,
            ot_mode=config.ot_mode,
        )
        self.setup: SpamSetup = self.protocol.setup(self.quantized, joint_seed=joint_seed)
        # Per-pair OT-extension state, created lazily by the first batch run.
        self._ot_pool = None

    # -- training helper ----------------------------------------------------------
    @classmethod
    def train(
        cls,
        config: PretzelConfig,
        extractor: FeatureExtractor,
        documents: Sequence[dict[int, int]],
        labels: Sequence[int],
        joint_seed: bytes | None = None,
    ) -> "SpamFunctionModule":
        """Train a GR-NB spam model (label 1 = spam) and build the module."""
        classifier = GrahamRobinsonNaiveBayes(num_features=extractor.num_features)
        classifier.fit(documents, labels)
        return cls(config, extractor, classifier.to_linear_model(), joint_seed=joint_seed)

    # -- per-email -------------------------------------------------------------------
    def _run_result(self, result, num_features: int) -> ModuleRunResult:
        return ModuleRunResult(
            module_name=self.name,
            output=SpamModuleOutput(is_spam=result.is_spam),
            provider_seconds=result.provider_seconds,
            client_seconds=result.client_seconds,
            network_bytes=result.network_bytes,
            network_messages=result.network_messages,
            network_rounds=result.network_rounds,
            details={
                "yao_and_gates": result.yao_and_gates,
                "features_in_email": num_features,
            },
        )

    def process_email(self, message: EmailMessage) -> ModuleRunResult:
        features = self.extractor.transform(message.text_content(), boolean=True)
        result = self.protocol.classify_email(self.setup, features)
        return self._run_result(result, len(features))

    def process_emails(self, messages: Sequence[EmailMessage]) -> list[ModuleRunResult]:
        """Batch path: one concurrent session per email, batched provider decrypts.

        The per-pair OT-extension pool persists on the module, so only the
        first burst of this module's lifetime pays the base-OT handshake.
        """
        from repro.core.runtime import run_spam_batch

        if not messages:
            return []
        feature_sets = [
            self.extractor.transform(message.text_content(), boolean=True)
            for message in messages
        ]
        if self._ot_pool is None and self.protocol.ot_mode == "iknp":
            self._ot_pool = self.protocol.make_ot_pool(self.setup)
        results = run_spam_batch(
            self.protocol, self.setup, feature_sets, ot_pool=self._ot_pool
        )
        return [
            self._run_result(result, len(features))
            for result, features in zip(results, feature_sets)
        ]

    # -- costs -------------------------------------------------------------------------
    def client_storage_bytes(self) -> int:
        return self.setup.client_storage_bytes()

    def setup_network_bytes(self) -> int:
        return self.setup.setup_network_bytes
