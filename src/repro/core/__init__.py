"""Pretzel's core: configuration, function modules, and the end-to-end system.

This package glues the substrates together into the system of Fig. 1:

* :mod:`repro.core.config` — one place for every tunable (crypto parameters,
  quantization budget, candidate-topic count B', OT mode, scaling knobs).
* :mod:`repro.core.spam_module`, :mod:`repro.core.topic_module`,
  :mod:`repro.core.search_module` — the three function modules of the paper
  (§2.2, §5), each split into a provider half and a client half.
* :mod:`repro.core.system` — :class:`PretzelProvider`, :class:`PretzelClient`
  and :class:`PretzelSystem`, which drive the full pipeline: compose → encrypt
  and sign → deliver → fetch, verify, decrypt → run the function-module
  protocols → report outputs and costs.
"""

from repro.core.config import PretzelConfig
from repro.core.runtime import (
    DecryptScheduler,
    MailboxDirectory,
    ProviderRuntime,
    SessionJob,
    ShardedRuntime,
    run_spam_batch,
    run_topic_batch,
    shard_of_address,
    spam_job,
    topic_job,
)
from repro.core.spam_module import SpamFunctionModule
from repro.core.topic_module import TopicFunctionModule
from repro.core.search_module import SearchFunctionModule
from repro.core.system import EmailProcessingReport, PretzelClient, PretzelProvider, PretzelSystem

__all__ = [
    "PretzelConfig",
    "SpamFunctionModule",
    "TopicFunctionModule",
    "SearchFunctionModule",
    "PretzelProvider",
    "PretzelClient",
    "PretzelSystem",
    "EmailProcessingReport",
    "ProviderRuntime",
    "DecryptScheduler",
    "ShardedRuntime",
    "shard_of_address",
    "MailboxDirectory",
    "SessionJob",
    "run_spam_batch",
    "run_topic_batch",
    "spam_job",
    "topic_job",
]
