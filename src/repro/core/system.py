"""End-to-end orchestration: Fig. 1 as running code.

:class:`PretzelSystem` wires a sender, a recipient and the recipient's
provider together:

1. the sender's client composes, encrypts and signs an email (e2e module);
2. the recipient's provider stores the opaque ciphertext in the mailbox;
3. the recipient's client fetches, verifies, decrypts (replay guard applied);
4. the decrypted email is handed to each configured function module, whose
   client half runs the two-party protocol with the provider half;
5. the per-email report collects the module outputs and the provider/client
   CPU and network costs — the same quantities §6 tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PretzelConfig
from repro.core.modules import FunctionModule, ModuleRunResult
from repro.exceptions import MailError
from repro.mail.client import MailClient
from repro.mail.e2e import E2EIdentity, E2EModule
from repro.mail.message import EmailMessage
from repro.mail.provider import MailProvider


@dataclass
class EmailProcessingReport:
    """Everything that happened while handling one email end-to-end."""

    message: EmailMessage
    encrypted_size_bytes: int
    module_results: dict[str, ModuleRunResult] = field(default_factory=dict)

    @property
    def total_provider_seconds(self) -> float:
        return sum(result.provider_seconds for result in self.module_results.values())

    @property
    def total_client_seconds(self) -> float:
        return sum(result.client_seconds for result in self.module_results.values())

    @property
    def total_network_bytes(self) -> int:
        """Protocol bytes on top of the email itself (Fig. 3's per-email network rows)."""
        return sum(result.network_bytes for result in self.module_results.values())

    def output_of(self, module_name: str):
        result = self.module_results.get(module_name)
        return result.output if result else None


class PretzelProvider:
    """A mail provider augmented with the provider halves of the function modules."""

    def __init__(self, name: str, config: PretzelConfig | None = None) -> None:
        self.config = config or PretzelConfig.test()
        self.mail = MailProvider(name)

    @property
    def name(self) -> str:
        return self.mail.name


class PretzelClient:
    """A mail client augmented with the client halves of the function modules."""

    def __init__(self, address: str, provider: PretzelProvider, e2e: E2EModule, group) -> None:
        self.provider = provider
        self.identity = E2EIdentity.generate(address, group)
        self.mail = MailClient(identity=self.identity, provider=provider.mail, e2e=e2e)
        self.modules: dict[str, FunctionModule] = {}

    @property
    def address(self) -> str:
        return self.identity.address

    def attach_module(self, module: FunctionModule) -> None:
        """Enable a function module for this user's incoming email."""
        self.modules[module.name] = module

    def detach_module(self, module_name: str) -> None:
        """Opt out of a function module (§4.4: participation is voluntary)."""
        self.modules.pop(module_name, None)

    def client_storage_bytes(self) -> int:
        """Total client-side storage across modules (encrypted models + indexes)."""
        return sum(module.client_storage_bytes() for module in self.modules.values())

    def process_message(self, message: EmailMessage, encrypted_size: int) -> EmailProcessingReport:
        """Run every attached function module over one decrypted email."""
        report = EmailProcessingReport(message=message, encrypted_size_bytes=encrypted_size)
        for name, module in self.modules.items():
            report.module_results[name] = module.process_email(message)
        return report

    def process_messages(self, messages: list[EmailMessage]) -> list[EmailProcessingReport]:
        """Run every attached module over a *batch* of decrypted emails.

        Each module sees the whole batch at once (its
        :meth:`~repro.core.modules.FunctionModule.process_emails`), so modules
        backed by the serving loop run the emails as concurrent protocol
        sessions with cross-session batched provider decrypts.
        """
        reports = [
            EmailProcessingReport(message=message, encrypted_size_bytes=message.size_bytes())
            for message in messages
        ]
        for name, module in self.modules.items():
            for report, result in zip(reports, module.process_emails(messages)):
                report.module_results[name] = result
        return reports


class PretzelSystem:
    """Factory/driver for a small Pretzel deployment (one provider, many users)."""

    def __init__(self, config: PretzelConfig | None = None, provider_name: str = "provider.example") -> None:
        self.config = config or PretzelConfig.test()
        self.group = self.config.build_group()
        self.e2e = E2EModule(self.group)
        self.provider = PretzelProvider(provider_name, self.config)
        self.clients: dict[str, PretzelClient] = {}

    # -- user management -----------------------------------------------------------
    def add_user(self, address: str) -> PretzelClient:
        if address in self.clients:
            raise MailError(f"user {address} already exists")
        client = PretzelClient(address, self.provider, self.e2e, self.group)
        self.clients[address] = client
        # Publish the new user's public identity to everyone (stand-in for the
        # key-management layer the paper scopes out, §7).
        for other in self.clients.values():
            other.mail.learn_identity(client.identity.public_bundle())
            client.mail.learn_identity(other.identity.public_bundle())
        return client

    def client(self, address: str) -> PretzelClient:
        client = self.clients.get(address)
        if client is None:
            raise MailError(f"unknown user {address}")
        return client

    # -- the end-to-end pipeline -----------------------------------------------------
    def send_email(self, sender: str, recipient: str, subject: str, body: str) -> int:
        """Steps 1–2 of Fig. 1: encrypt, sign, deliver.  Returns the wire size."""
        sending_client = self.client(sender)
        encrypted = sending_client.mail.send_new(recipient, subject, body, self.provider.mail)
        return encrypted.size_bytes()

    def fetch_and_process(self, recipient: str) -> list[EmailProcessingReport]:
        """Steps 3–4 of Fig. 1: fetch, verify+decrypt, run the function modules."""
        receiving_client = self.client(recipient)
        messages = receiving_client.mail.fetch_and_decrypt()
        reports = []
        for message in messages:
            reports.append(receiving_client.process_message(message, message.size_bytes()))
        return reports

    def fetch_and_process_batched(self, recipient: str) -> list[EmailProcessingReport]:
        """Like :meth:`fetch_and_process`, but the mailbox is drained as one batch.

        All fetched emails run as concurrent protocol sessions through the
        multi-user serving loop (:mod:`repro.core.runtime`), so the provider's
        per-email decrypts are batched — how a deployed provider would drain a
        mailbox burst.
        """
        receiving_client = self.client(recipient)
        messages = receiving_client.mail.fetch_and_decrypt()
        return receiving_client.process_messages(messages)

    def drain_all_mailboxes_sharded(
        self,
        num_shards: int = 2,
        window_bursts: int = 1,
        runtime=None,
    ) -> dict[str, list[EmailProcessingReport]]:
        """One provider-wide serving pass across shard worker processes.

        The sharded twin of :meth:`drain_all_mailboxes`: recipients partition
        across a :class:`~repro.core.runtime.ShardedRuntime` by mailbox hash,
        so each worker process runs the 2PC provider halves (spam, topics) for
        its own mailboxes with warm per-mailbox state, accumulating decrypts
        in its windowed scheduler.  Client-only modules (keyword search) have
        no provider half to shard and run in-process as before.

        Pass a *runtime* to keep workers (and their warm OT pools) alive
        across serving passes; otherwise one is created and torn down here.
        Any object with the sharded drive API works — in particular a
        :class:`repro.fabric.FabricRuntime`, whose shards are standalone
        agent processes reached over TCP, serves this loop unchanged.
        """
        from repro.core.runtime import ShardedRuntime
        from repro.core.spam_module import SpamFunctionModule
        from repro.core.topic_module import TopicFunctionModule

        owns_runtime = runtime is None
        if runtime is None:
            runtime = ShardedRuntime(num_shards=num_shards, window_bursts=window_bursts)
        try:
            reports: dict[str, list[EmailProcessingReport]] = {}
            # (report, module, features-in-email, job id) per sharded session
            placements: list[tuple[EmailProcessingReport, FunctionModule, int, int]] = []
            for address in self.provider.mail.mailboxes_with_mail():
                client = self.clients.get(address)
                if client is None or client.mail.pending_email_count() == 0:
                    continue
                messages = client.mail.fetch_and_decrypt()
                if not messages:
                    continue
                client_reports = [
                    EmailProcessingReport(
                        message=message, encrypted_size_bytes=message.size_bytes()
                    )
                    for message in messages
                ]
                reports[address] = client_reports
                for name, module in client.modules.items():
                    if isinstance(module, SpamFunctionModule):
                        if not runtime.has_spam(address):
                            runtime.register_spam(address, module.protocol, module.setup)
                        feature_sets = [
                            module.extractor.transform(message.text_content(), boolean=True)
                            for message in messages
                        ]
                        job_ids = runtime.submit_spam(
                            [(address, features) for features in feature_sets]
                        )
                        placements += [
                            (report, module, len(features), job_id)
                            for report, features, job_id in zip(
                                client_reports, feature_sets, job_ids
                            )
                        ]
                    elif isinstance(module, TopicFunctionModule):
                        if not runtime.has_topics(address):
                            runtime.register_topics(address, module.protocol, module.setup)
                        feature_sets = [
                            module.extractor.transform(message.text_content(), boolean=False)
                            for message in messages
                        ]
                        job_ids = runtime.submit_topics(
                            [
                                (address, features, module.candidate_topics(features))
                                for features in feature_sets
                            ]
                        )
                        placements += [
                            (report, module, len(features), job_id)
                            for report, features, job_id in zip(
                                client_reports, feature_sets, job_ids
                            )
                        ]
                    else:
                        for report, result in zip(
                            client_reports, module.process_emails(messages)
                        ):
                            report.module_results[name] = result
            runtime.drain()
            for report, module, num_features, job_id in placements:
                result = runtime.take_result(job_id)
                report.module_results[module.name] = module._run_result(result, num_features)
            return reports
        finally:
            if owns_runtime:
                runtime.close()

    def drain_all_mailboxes(self) -> dict[str, list[EmailProcessingReport]]:
        """One provider-wide serving pass: drain every mailbox with pending mail.

        Each user's pending burst is processed batched; users with nothing
        pending beyond their fetch cursor are skipped.  Returns the reports
        keyed by recipient address.
        """
        reports: dict[str, list[EmailProcessingReport]] = {}
        for address in self.provider.mail.mailboxes_with_mail():
            client = self.clients.get(address)
            if client is None or client.mail.pending_email_count() == 0:
                continue
            reports[address] = self.fetch_and_process_batched(address)
        return reports

    def roundtrip(self, sender: str, recipient: str, subject: str, body: str) -> EmailProcessingReport:
        """Send one email and process it at the recipient; returns the report."""
        self.send_email(sender, recipient, subject, body)
        reports = self.fetch_and_process(recipient)
        if not reports:
            raise MailError("the email was sent but not processed (replay guard or empty fetch)")
        return reports[-1]
