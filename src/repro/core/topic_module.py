"""The topic-extraction function module with decomposed classification (§4.3).

Two classifiers are involved:

* the provider's **proprietary** multi-topic model — quantized, encrypted and
  shipped to the client during the protocol setup phase;
* a **public** candidate model at the client, trained on a small fraction of
  the data (topic lists are public, §4.3), which performs step (i) of the
  decomposition: mapping the email to B' candidate topics locally.

Per email the client picks its B' candidates with the public model and then
runs the protocol of :mod:`repro.twopc.topics`, after which the *provider*
learns exactly one topic index (§4.4 guarantee 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.classify.features import FeatureExtractor
from repro.classify.model import LinearModel, QuantizedLinearModel
from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.core.config import PretzelConfig
from repro.core.modules import FunctionModule, ModuleRunResult
from repro.exceptions import ClassifierError
from repro.mail.message import EmailMessage
from repro.twopc.topics import TopicExtractionProtocol, TopicSetup
from repro.utils.rand import DeterministicRandom


@dataclass
class TopicModuleOutput:
    """What the provider learns: a single topic index and its name."""

    topic_index: int
    topic_name: str
    candidates_considered: int


class TopicFunctionModule(FunctionModule):
    """Joint topic extraction over encrypted email."""

    name = "topic-extraction"

    def __init__(
        self,
        config: PretzelConfig,
        extractor: FeatureExtractor,
        proprietary_model: LinearModel,
        public_model: LinearModel | None = None,
        joint_seed: bytes | None = None,
    ) -> None:
        if proprietary_model.num_categories < 2:
            raise ClassifierError("the topic module needs at least two categories")
        self.config = config
        self.extractor = extractor
        self.scheme = config.build_scheme()
        self.group = config.build_group()
        self.proprietary_model = proprietary_model
        self.public_model = public_model
        self.quantized = QuantizedLinearModel.from_linear_model(
            proprietary_model,
            value_bits=config.value_bits,
            frequency_bits=config.frequency_bits,
            max_features_per_email=config.max_features_per_email,
        )
        self.protocol = TopicExtractionProtocol(self.scheme, self.group, ot_mode=config.ot_mode)
        self.setup: TopicSetup = self.protocol.setup(
            self.quantized,
            joint_seed=joint_seed,
            across_row_packing=config.across_row_packing,
        )
        # Per-pair OT-extension state, created lazily by the first batch run.
        self._ot_pool = None

    # -- training helpers ------------------------------------------------------------
    @classmethod
    def train(
        cls,
        config: PretzelConfig,
        extractor: FeatureExtractor,
        documents: Sequence[dict[int, int]],
        labels: Sequence[int],
        category_names: Sequence[str],
        joint_seed: bytes | None = None,
        seed: int = 29,
    ) -> "TopicFunctionModule":
        """Train the proprietary model on all data and the public model on a fraction.

        The public-model training fraction is ``config.public_model_fraction``,
        matching the sweep of Fig. 14 (1%–10% of the training data suffices
        for good candidate recall).
        """
        num_categories = len(category_names)
        proprietary = MultinomialNaiveBayes(
            num_features=extractor.num_features, category_names=list(category_names)
        )
        proprietary.fit(documents, labels)
        public_model = None
        if config.candidate_topics is not None:
            rng = DeterministicRandom(seed, label="public-model-subset")
            indices = list(range(len(documents)))
            rng.shuffle(indices)
            subset_size = max(num_categories, int(len(indices) * config.public_model_fraction))
            subset = indices[:subset_size]
            # Make sure every category appears at least once in the subset so the
            # public model knows about all topics (topic lists are public, §4.3).
            present = {labels[i] for i in subset}
            for index in indices:
                if len(present) == num_categories:
                    break
                if labels[index] not in present:
                    subset.append(index)
                    present.add(labels[index])
            public_classifier = MultinomialNaiveBayes(
                num_features=extractor.num_features, category_names=list(category_names)
            )
            public_classifier.fit([documents[i] for i in subset], [labels[i] for i in subset])
            public_model = public_classifier.to_linear_model()
        return cls(
            config,
            extractor,
            proprietary.to_linear_model(),
            public_model=public_model,
            joint_seed=joint_seed,
        )

    # -- decomposition step (i): candidate selection at the client ----------------------
    def candidate_topics(self, features: dict[int, int]) -> list[int] | None:
        """The client's candidate set S' (None disables decomposition)."""
        if self.config.candidate_topics is None:
            return None
        count = min(self.config.candidate_topics, self.proprietary_model.num_categories)
        model = self.public_model if self.public_model is not None else self.proprietary_model
        return model.top_categories(features, count)

    # -- per-email ----------------------------------------------------------------------
    def _run_result(self, result, num_features: int) -> ModuleRunResult:
        output = TopicModuleOutput(
            topic_index=result.extracted_topic,
            topic_name=self.proprietary_model.category_names[result.extracted_topic],
            candidates_considered=result.candidates_used,
        )
        return ModuleRunResult(
            module_name=self.name,
            output=output,
            provider_seconds=result.provider_seconds,
            client_seconds=result.client_seconds,
            network_bytes=result.network_bytes,
            network_messages=result.network_messages,
            network_rounds=result.network_rounds,
            details={
                "yao_and_gates": result.yao_and_gates,
                "features_in_email": num_features,
            },
        )

    def process_email(self, message: EmailMessage) -> ModuleRunResult:
        features = self.extractor.transform(message.text_content(), boolean=False)
        candidates = self.candidate_topics(features)
        result = self.protocol.extract_topic(self.setup, features, candidate_topics=candidates)
        return self._run_result(result, len(features))

    def process_emails(self, messages: Sequence[EmailMessage]) -> list[ModuleRunResult]:
        """Batch path: one concurrent session per email, batched provider decrypts.

        The per-pair OT-extension pool persists on the module, so only the
        first burst of this module's lifetime pays the base-OT handshake.
        """
        from repro.core.runtime import run_topic_batch

        if not messages:
            return []
        feature_sets = [
            self.extractor.transform(message.text_content(), boolean=False)
            for message in messages
        ]
        candidate_lists = [self.candidate_topics(features) for features in feature_sets]
        if self._ot_pool is None and self.protocol.ot_mode == "iknp":
            self._ot_pool = self.protocol.make_ot_pool(self.setup)
        results = run_topic_batch(
            self.protocol,
            self.setup,
            feature_sets,
            candidate_lists=candidate_lists,
            ot_pool=self._ot_pool,
        )
        return [
            self._run_result(result, len(features))
            for result, features in zip(results, feature_sets)
        ]

    # -- costs -------------------------------------------------------------------------------
    def client_storage_bytes(self) -> int:
        storage = self.setup.client_storage_bytes()
        if self.public_model is not None:
            storage += self.public_model.plaintext_size_bytes()
        return storage

    def setup_network_bytes(self) -> int:
        return self.setup.setup_network_bytes
