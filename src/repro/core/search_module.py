"""The keyword-search function module (client-only, §5).

Unlike the classification modules, search involves no provider computation at
all: the client maintains a local inverted index over its decrypted email and
answers its own queries.  The cost is client storage (Fig. 15), which
:meth:`client_storage_bytes` reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.modules import FunctionModule, ModuleRunResult
from repro.mail.message import EmailMessage
from repro.search.index import KeywordSearchIndex


@dataclass
class SearchModuleOutput:
    """Result of indexing one email."""

    document_id: int
    indexed_documents: int


class SearchFunctionModule(FunctionModule):
    """Client-side keyword search over decrypted email."""

    name = "keyword-search"

    def __init__(self) -> None:
        self.index = KeywordSearchIndex()
        self._id_to_message: dict[int, str] = {}

    def process_email(self, message: EmailMessage) -> ModuleRunResult:
        """Index one freshly decrypted email (the per-email "update" of Fig. 15)."""
        start = time.perf_counter()
        document_id = self.index.add_document(message.text_content())
        elapsed = time.perf_counter() - start
        self._id_to_message[document_id] = message.message_id()
        return ModuleRunResult(
            module_name=self.name,
            output=SearchModuleOutput(
                document_id=document_id,
                indexed_documents=self.index.document_count(),
            ),
            client_seconds=elapsed,
        )

    def search(self, keyword: str) -> tuple[list[str], float]:
        """Query the index; returns matching message ids and the query latency."""
        start = time.perf_counter()
        document_ids = self.index.query(keyword)
        elapsed = time.perf_counter() - start
        return [self._id_to_message[document_id] for document_id in document_ids], elapsed

    def client_storage_bytes(self) -> int:
        return self.index.size_bytes()
