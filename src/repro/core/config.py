"""System-wide configuration.

A :class:`PretzelConfig` fixes every knob the protocols and modules need:
which AHE scheme backs the secure dot products, the fixed-point quantization
budget (Fig. 3's ``bin``/``fin``), the number of candidate topics B' (§4.3),
the OT flavour, and the DH group profile for the e2e module and Yao.

Two presets are provided: :meth:`PretzelConfig.test` (small ring degree and
groups — seconds per protocol run, used by the unit tests) and
:meth:`PretzelConfig.standard` (paper-faithful XPIR-BV parameters: 1024 slots,
~16 KB ciphertexts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.ahe import AHEScheme
from repro.crypto.bv import BVParameters, BVScheme
from repro.crypto.dh import DHGroup, generate_group, rfc3526_group_2048
from repro.crypto.paillier import PaillierScheme
from repro.exceptions import ParameterError

# Module-level cache so tests and benchmarks do not regenerate safe-prime
# groups for every config instance.
_GROUP_CACHE: dict[int, DHGroup] = {}


def _cached_group(bits: int) -> DHGroup:
    group = _GROUP_CACHE.get(bits)
    if group is None:
        group = generate_group(bits)
        _GROUP_CACHE[bits] = group
    return group


@dataclass
class PretzelConfig:
    """Every tunable of a Pretzel deployment, in one place."""

    # Cryptosystem for the secure dot products (§4.1): "xpir-bv" or "paillier".
    ahe_scheme: str = "xpir-bv"
    bv_parameters: BVParameters = field(default_factory=BVParameters)
    paillier_modulus_bits: int = 1024
    paillier_slot_bits: int = 32
    # Packing (§4.2): Pretzel's across-row packing vs the legacy layout.
    across_row_packing: bool = True
    # Quantization budget (Fig. 3): bin, fin, and the L used for width sizing.
    value_bits: int = 10
    frequency_bits: int = 4
    max_features_per_email: int = 8192
    # Decomposed classification (§4.3): number of candidate topics (None = B).
    candidate_topics: int | None = 20
    # Fraction of training data used for the client's public candidate model.
    public_model_fraction: float = 0.1
    # Yao / OT settings.
    ot_mode: str = "iknp"
    dh_group_bits: int = 256
    use_standard_group: bool = False

    def __post_init__(self) -> None:
        if self.ahe_scheme not in ("xpir-bv", "paillier"):
            raise ParameterError(f"unknown AHE scheme {self.ahe_scheme!r}")
        if self.ot_mode not in ("iknp", "base"):
            raise ParameterError(f"unknown OT mode {self.ot_mode!r}")
        if self.candidate_topics is not None and self.candidate_topics < 1:
            raise ParameterError("candidate_topics must be positive or None")
        if not 0.0 < self.public_model_fraction <= 1.0:
            raise ParameterError("public_model_fraction must be in (0, 1]")

    # -- factories -------------------------------------------------------------
    @classmethod
    def test(cls) -> "PretzelConfig":
        """Small, fast parameters for unit tests."""
        return cls(
            bv_parameters=BVParameters.test_parameters(),
            paillier_modulus_bits=512,
            dh_group_bits=256,
            candidate_topics=5,
            public_model_fraction=0.3,
        )

    @classmethod
    def standard(cls) -> "PretzelConfig":
        """Paper-faithful parameters (1024-slot XPIR-BV, 2048-bit DH group)."""
        return cls(use_standard_group=True)

    @classmethod
    def baseline(cls) -> "PretzelConfig":
        """The paper's Baseline arm (§3.3): Paillier and legacy packing."""
        return cls(ahe_scheme="paillier", across_row_packing=False, candidate_topics=None)

    # -- derived objects ----------------------------------------------------------
    def build_scheme(self) -> AHEScheme:
        """Instantiate the configured AHE scheme."""
        if self.ahe_scheme == "xpir-bv":
            return BVScheme(self.bv_parameters)
        return PaillierScheme(
            modulus_bits=self.paillier_modulus_bits, slot_bits=self.paillier_slot_bits
        )

    def build_group(self) -> DHGroup:
        """Return the DH group used by the e2e module, OT and parameter agreement."""
        if self.use_standard_group:
            return rfc3526_group_2048()
        return _cached_group(self.dh_group_bits)
