"""Multi-user provider serving loop (§6.3's deployment story as running code).

A deployed Pretzel provider serves millions of mailboxes; per-email protocol
work arrives concurrently, not one session at a time.  This module supplies
the runtime layer that makes the provider half scale:

* :class:`SessionJob` — one in-flight email: a client/provider session pair
  over its own framed channel (sessions are reentrant state machines, so a
  job carries *all* of its protocol state).
* :class:`ProviderRuntime` — the serving loop.  It multiplexes any number of
  jobs, delivering frames round-robin, and *parks* provider sessions at
  their decrypt step: all parked decryption requests that share a key pair
  are folded into one ``decrypt_slots_many`` call, so the provider-side BV
  inverse transforms amortise across sessions (the batching behind
  Figs. 7/10) instead of running once per email.  Batch CPU time is
  attributed back to sessions proportionally to their ciphertext counts.
* :class:`MailboxDirectory` — per-user protocol state kept warm between
  emails: the setup objects (key pairs, encrypted models) and, through
  :meth:`~repro.crypto.packing.PackedLinearModel.ensure_stacks`, the dense
  stacked encrypted-model rows, so no email in a burst pays the one-time
  stacking cost.

:func:`run_spam_batch` / :func:`run_topic_batch` are the convenience drivers
used by the benchmarks, tests and function modules: N feature vectors in,
N protocol results out, with every frame serialized and every byte counted.

Scaling past one loop (this PR's serving stack, cf. the §6.3 estimates):

* :class:`DecryptScheduler` — the time/size-windowed accumulator that lets a
  provider hold parked decrypts *across bursts* and per key pair before
  folding them into one ``decrypt_slots_many`` call (latency/throughput
  knob; ``window_bursts=1`` degenerates to the per-burst batching above).
* :class:`ProviderRuntime.serve_burst`/:meth:`ProviderRuntime.drain` — the
  windowed serving entry points: jobs whose decrypts are still inside an
  open window stay parked between bursts and complete when it closes.
* :class:`ShardedRuntime` — N worker processes, each owning the mailboxes
  that hash to its shard (stable SHA-256 partition) with its own
  :class:`MailboxDirectory` (warm OT pools, stacked model rows) and windowed
  :class:`ProviderRuntime`.  Shards are embarrassingly parallel because all
  decrypt batching is per key pair, which never crosses a mailbox.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.crypto.ot import OtExtensionPool
from repro.exceptions import ProtocolError
from repro.twopc.session import SessionJob, SessionLoop, _ParkedDecryption, decrypt_group_key
from repro.twopc.spam import SpamFilterProtocol, SpamProtocolResult, SpamSetup
from repro.twopc.topics import TopicExtractionProtocol, TopicProtocolResult, TopicSetup

SparseVector = Mapping[int, int]


# ---------------------------------------------------------------------------
# The windowed decrypt scheduler
# ---------------------------------------------------------------------------
@dataclass
class _DecryptWindow:
    """Parked decrypts for one key pair, accumulating until the window closes."""

    entries: list[_ParkedDecryption] = field(default_factory=list)
    ciphertext_count: int = 0
    opened_at: float = 0.0
    opened_burst: int = 0


class DecryptScheduler:
    """Accumulate parked provider decrypts across bursts, per key pair.

    The per-burst serving loop already folds the decrypts of one burst into
    one ``decrypt_slots_many`` per key pair.  This scheduler generalises that
    into a *window*: requests parked in burst *b* stay parked until any of

    * ``window_bursts`` bursts have completed since the window opened,
    * the window holds ``max_pending_ciphertexts`` or more ciphertexts,
    * ``max_delay_seconds`` have elapsed since the window opened,

    whichever trigger is observed first — the latency/throughput knob of the
    §6.3 serving stack.  The scheduler is *poll-driven*: triggers are
    evaluated when the serving loop calls :meth:`take_due` (inside
    ``serve_burst`` and ``drain``), so ``max_delay_seconds`` bounds how long
    a window survives *once traffic or a drain touches the loop again* — an
    idle provider with no further bursts holds its windows until ``drain``.
    ``window_bursts=1`` (the default, with no size/time triggers) closes
    every window at the end of the burst that opened it, i.e. exactly the
    per-burst batching of the PR 2 serving loop.  Windows are per key pair
    by construction, so nothing here ever mixes mailboxes.
    """

    def __init__(
        self,
        window_bursts: int = 1,
        max_pending_ciphertexts: int | None = None,
        max_delay_seconds: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if window_bursts < 1:
            raise ProtocolError("window_bursts must be at least 1")
        if max_pending_ciphertexts is not None and max_pending_ciphertexts < 1:
            raise ProtocolError("max_pending_ciphertexts must be at least 1")
        if max_delay_seconds is not None and max_delay_seconds < 0:
            raise ProtocolError("max_delay_seconds must be non-negative")
        self.window_bursts = window_bursts
        self.max_pending_ciphertexts = max_pending_ciphertexts
        self.max_delay_seconds = max_delay_seconds
        self._clock = clock
        self._windows: dict[tuple[int, int], _DecryptWindow] = {}
        self._burst = 0

    def enqueue(self, entry: _ParkedDecryption) -> None:
        key = decrypt_group_key(entry.request)
        window = self._windows.get(key)
        if window is None:
            window = _DecryptWindow(opened_at=self._clock(), opened_burst=self._burst)
            self._windows[key] = window
        window.entries.append(entry)
        window.ciphertext_count += len(entry.request.ciphertexts)

    def end_burst(self) -> None:
        """Mark a burst boundary (ages every open window by one burst)."""
        self._burst += 1

    def _is_due(self, window: _DecryptWindow, now: float) -> bool:
        if self._burst - window.opened_burst >= self.window_bursts:
            return True
        if (
            self.max_pending_ciphertexts is not None
            and window.ciphertext_count >= self.max_pending_ciphertexts
        ):
            return True
        if (
            self.max_delay_seconds is not None
            and now - window.opened_at >= self.max_delay_seconds
        ):
            return True
        return False

    def take_due(self, now: float | None = None) -> list[list[_ParkedDecryption]]:
        """Pop and return every window whose trigger has fired."""
        now = self._clock() if now is None else now
        due = [key for key, window in self._windows.items() if self._is_due(window, now)]
        return [self._windows.pop(key).entries for key in due]

    def flush(self) -> list[list[_ParkedDecryption]]:
        """Pop every open window regardless of triggers (shutdown / drain)."""
        windows, self._windows = list(self._windows.values()), {}
        return [window.entries for window in windows]

    def pending_ciphertexts(self) -> int:
        return sum(window.ciphertext_count for window in self._windows.values())

    def pending_sessions(self) -> int:
        return sum(len(window.entries) for window in self._windows.values())


class ProviderRuntime(SessionLoop):
    """The multi-user provider serving loop.

    A thin domain name over :class:`~repro.twopc.session.SessionLoop` — the
    shared frame pump with cross-session batched decryption — so the same
    loop that drives one in-process session also drains a provider's burst
    of concurrent email jobs.  See :class:`MailboxDirectory` for the
    per-mailbox state the provider keeps warm between bursts.

    :meth:`run` keeps the PR 2 contract: drive a burst to completion, folding
    each round's parked decrypts immediately.  The *windowed* entry points —
    :meth:`serve_burst` and :meth:`drain` — thread a
    :class:`DecryptScheduler` through the same delivery phases, so decrypts
    can stay parked across bursts until their window closes; jobs whose
    sessions are inside an open window simply remain active between calls.
    """

    def __init__(self, scheduler: DecryptScheduler | None = None) -> None:
        super().__init__()
        self.scheduler = scheduler or DecryptScheduler()
        self._active: list[SessionJob] = []

    # -- windowed serving ----------------------------------------------------
    def serve_burst(self, jobs: Sequence[SessionJob]) -> list[SessionJob]:
        """Admit *jobs*, pump everything deliverable, close due windows.

        Returns the jobs (from this burst or earlier ones) that finished;
        jobs waiting on an open decrypt window stay active until a later
        burst, a trigger, or :meth:`drain` closes it.
        """
        for job in jobs:
            self._active.append(job)
            parked: list[_ParkedDecryption] = []
            for name in (job.client_name, job.provider_name):
                session = job.session(name)
                job.dispatch(name, session.start())
                self._collect_parked(job, name, session, parked)
            for entry in parked:
                self.scheduler.enqueue(entry)
        self._advance()
        self.scheduler.end_burst()
        while True:
            due = self.scheduler.take_due()
            if not due:
                break
            for entries in due:
                self._service_group(entries)
            self._advance()
        return self._collect_finished()

    def drain(self) -> list[SessionJob]:
        """Close every open window and finish every active job."""
        while True:
            self._advance()
            groups = self.scheduler.flush()
            if not groups:
                break
            for entries in groups:
                self._service_group(entries)
        stuck = [job.label for job in self._active if not job.finished]
        if stuck:
            raise ProtocolError(f"serving loop deadlock after drain; unfinished jobs: {stuck}")
        return self._collect_finished()

    def outstanding_jobs(self) -> int:
        """Jobs admitted but not yet finished (waiting on an open window)."""
        return sum(1 for job in self._active if not job.finished)

    def _advance(self) -> None:
        """Deliver all deliverable frames, servicing windows as triggers fire."""
        while True:
            parked: list[_ParkedDecryption] = []
            self._deliver_all(self._active, parked)
            for entry in parked:
                self.scheduler.enqueue(entry)
            due = self.scheduler.take_due()
            if not due:
                return
            for entries in due:
                self._service_group(entries)

    def _collect_finished(self) -> list[SessionJob]:
        finished = [job for job in self._active if job.finished]
        self._active = [job for job in self._active if not job.finished]
        return finished


# ---------------------------------------------------------------------------
# Job builders and batch drivers
# ---------------------------------------------------------------------------
def spam_job(
    protocol: SpamFilterProtocol,
    setup: SpamSetup,
    features: SparseVector,
    label: Any = None,
    ot_pool: OtExtensionPool | None = None,
) -> SessionJob:
    """One spam-classification email session, ready for a serving loop."""
    return SessionJob(
        channel=protocol.make_channel(setup, name=f"spam[{label}]"),
        client=protocol.client_session(setup, features, ot_pool=ot_pool),
        provider=protocol.provider_session(setup, ot_pool=ot_pool),
        label=label,
    )


def topic_job(
    protocol: TopicExtractionProtocol,
    setup: TopicSetup,
    features: SparseVector,
    candidate_topics: Sequence[int] | None = None,
    label: Any = None,
    ot_pool: OtExtensionPool | None = None,
) -> SessionJob:
    """One topic-extraction email session, ready for a serving loop."""
    return SessionJob(
        channel=protocol.make_channel(setup, name=f"topics[{label}]"),
        client=protocol.client_session(setup, features, candidate_topics, ot_pool=ot_pool),
        provider=protocol.provider_session(setup, ot_pool=ot_pool),
        label=label,
    )


def _spam_result(job: SessionJob) -> SpamProtocolResult:
    client = job.client
    assert client.is_spam is not None
    return SpamProtocolResult(
        is_spam=client.is_spam,
        provider_seconds=job.provider.seconds,
        client_seconds=client.seconds,
        network_bytes=job.channel.total_bytes(),
        yao_and_gates=client.yao_and_gates,
        network_messages=job.channel.total_messages(),
        network_rounds=job.channel.rounds(),
    )


def _topic_result(job: SessionJob) -> TopicProtocolResult:
    provider = job.provider
    assert provider.extracted_topic is not None
    return TopicProtocolResult(
        extracted_topic=provider.extracted_topic,
        provider_seconds=provider.seconds,
        client_seconds=job.client.seconds,
        network_bytes=job.channel.total_bytes(),
        yao_and_gates=job.client.yao_and_gates,
        candidates_used=len(job.client.candidates),
        network_messages=job.channel.total_messages(),
        network_rounds=job.channel.rounds(),
    )


def run_spam_batch(
    protocol: SpamFilterProtocol,
    setup: SpamSetup,
    feature_sets: Sequence[SparseVector],
    runtime: ProviderRuntime | None = None,
    ot_pool: OtExtensionPool | None = None,
    use_ot_pool: bool = True,
) -> list[SpamProtocolResult]:
    """Classify N emails as N concurrent sessions with cross-session amortisation.

    Provider decrypts batch across sessions, and (unless *use_ot_pool* is
    off) the Yao OTs of every session extend one per-pair base-OT handshake
    instead of each paying :data:`~repro.crypto.ot.SECURITY_PARAMETER` fresh
    public-key operations.
    """
    if not feature_sets:
        return []
    runtime = runtime or ProviderRuntime()
    setup.encrypted_model.ensure_stacks()
    if ot_pool is None and use_ot_pool and protocol.ot_mode == "iknp":
        ot_pool = protocol.make_ot_pool(setup)
    jobs = [
        spam_job(protocol, setup, features, label=index, ot_pool=ot_pool)
        for index, features in enumerate(feature_sets)
    ]
    runtime.run(jobs)
    return [_spam_result(job) for job in jobs]


def run_topic_batch(
    protocol: TopicExtractionProtocol,
    setup: TopicSetup,
    feature_sets: Sequence[SparseVector],
    candidate_lists: Sequence[Sequence[int] | None] | None = None,
    runtime: ProviderRuntime | None = None,
    ot_pool: OtExtensionPool | None = None,
    use_ot_pool: bool = True,
) -> list[TopicProtocolResult]:
    """Extract topics for N emails as N concurrent sessions with batched decrypts."""
    if not feature_sets:
        return []
    runtime = runtime or ProviderRuntime()
    setup.encrypted_model.ensure_stacks()
    if candidate_lists is None:
        candidate_lists = [None] * len(feature_sets)
    if len(candidate_lists) != len(feature_sets):
        raise ProtocolError("one candidate list (or None) is required per email")
    if ot_pool is None and use_ot_pool and protocol.ot_mode == "iknp":
        ot_pool = protocol.make_ot_pool(setup)
    jobs = [
        topic_job(protocol, setup, features, candidates, label=index, ot_pool=ot_pool)
        for index, (features, candidates) in enumerate(zip(feature_sets, candidate_lists))
    ]
    runtime.run(jobs)
    return [_topic_result(job) for job in jobs]


# ---------------------------------------------------------------------------
# Per-mailbox state kept warm between emails
# ---------------------------------------------------------------------------
@dataclass
class MailboxProtocols:
    """The protocol state a provider keeps per registered mailbox."""

    address: str
    spam: tuple[SpamFilterProtocol, SpamSetup] | None = None
    topics: tuple[TopicExtractionProtocol, TopicSetup] | None = None
    spam_ot_pool: OtExtensionPool | None = None
    topic_ot_pool: OtExtensionPool | None = None


class MailboxDirectory:
    """Per-user protocol state the serving loop reuses across emails.

    Registering a mailbox stores its setup (key pair + encrypted model) and
    pre-builds the dense stacked model rows, so the per-email hot path never
    pays setup or stacking costs — the "per-sender encrypted model rows"
    cache of the deployment sketch in §6.3.
    """

    def __init__(self) -> None:
        self._mailboxes: dict[str, MailboxProtocols] = {}

    def _entry(self, address: str) -> MailboxProtocols:
        entry = self._mailboxes.get(address)
        if entry is None:
            entry = MailboxProtocols(address=address)
            self._mailboxes[address] = entry
        return entry

    def register_spam(
        self, address: str, protocol: SpamFilterProtocol, setup: SpamSetup
    ) -> None:
        entry = self._entry(address)
        setup.encrypted_model.ensure_stacks()
        entry.spam = (protocol, setup)
        if protocol.ot_mode == "iknp":
            entry.spam_ot_pool = protocol.make_ot_pool(setup)

    def register_topics(
        self, address: str, protocol: TopicExtractionProtocol, setup: TopicSetup
    ) -> None:
        entry = self._entry(address)
        setup.encrypted_model.ensure_stacks()
        entry.topics = (protocol, setup)
        if protocol.ot_mode == "iknp":
            entry.topic_ot_pool = protocol.make_ot_pool(setup)

    def spam_of(self, address: str) -> tuple[SpamFilterProtocol, SpamSetup]:
        entry = self._mailboxes.get(address)
        if entry is None or entry.spam is None:
            raise ProtocolError(f"no spam mailbox registered for {address!r}")
        return entry.spam

    def topics_of(self, address: str) -> tuple[TopicExtractionProtocol, TopicSetup]:
        entry = self._mailboxes.get(address)
        if entry is None or entry.topics is None:
            raise ProtocolError(f"no topic mailbox registered for {address!r}")
        return entry.topics

    def spam_pool_of(self, address: str) -> OtExtensionPool | None:
        entry = self._mailboxes.get(address)
        return entry.spam_ot_pool if entry else None

    def topic_pool_of(self, address: str) -> OtExtensionPool | None:
        entry = self._mailboxes.get(address)
        return entry.topic_ot_pool if entry else None

    def mailbox_count(self) -> int:
        return len(self._mailboxes)

    def spam_jobs(
        self, address: str, feature_sets: Sequence[SparseVector]
    ) -> list[SessionJob]:
        protocol, setup = self.spam_of(address)
        pool = self._mailboxes[address].spam_ot_pool
        return [
            spam_job(protocol, setup, features, label=(address, index), ot_pool=pool)
            for index, features in enumerate(feature_sets)
        ]

    def topic_jobs(
        self,
        address: str,
        feature_sets: Sequence[SparseVector],
        candidate_lists: Sequence[Sequence[int] | None] | None = None,
    ) -> list[SessionJob]:
        protocol, setup = self.topics_of(address)
        pool = self._mailboxes[address].topic_ot_pool
        if candidate_lists is None:
            candidate_lists = [None] * len(feature_sets)
        return [
            topic_job(protocol, setup, features, candidates, label=(address, index), ot_pool=pool)
            for index, (features, candidates) in enumerate(zip(feature_sets, candidate_lists))
        ]


# ---------------------------------------------------------------------------
# The sharded serving stack: worker processes keyed by mailbox hash
# ---------------------------------------------------------------------------
def shard_of_address(address: str, num_shards: int) -> int:
    """Stable shard assignment: SHA-256 of the address, mod the shard count.

    Deliberately *not* Python's salted ``hash`` — the partition must agree
    across processes and across runs, because per-mailbox state (encrypted
    models, OT pools) lives wherever the mailbox hashes to.
    """
    digest = hashlib.sha256(address.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def _worker_build_job(
    directory: MailboxDirectory,
    kind: str,
    address: str,
    features: SparseVector,
    candidates: Sequence[int] | None,
    job_id: int,
) -> SessionJob:
    if kind == "spam":
        protocol, setup = directory.spam_of(address)
        return spam_job(
            protocol, setup, features, label=job_id, ot_pool=directory.spam_pool_of(address)
        )
    if kind == "topics":
        protocol, setup = directory.topics_of(address)
        return topic_job(
            protocol,
            setup,
            features,
            candidates,
            label=job_id,
            ot_pool=directory.topic_pool_of(address),
        )
    raise ProtocolError(f"unknown job kind {kind!r}")


def _worker_results(
    pending: dict[int, str], finished: Sequence[SessionJob]
) -> list[tuple[int, Any]]:
    results = []
    for job in finished:
        job_id = job.label
        kind = pending.pop(job_id)
        result = _spam_result(job) if kind == "spam" else _topic_result(job)
        results.append((job_id, result))
    return results


def _shard_worker_main(
    connection,
    window_bursts: int,
    max_pending_ciphertexts: int | None,
    max_delay_seconds: float | None,
) -> None:
    """One shard: its own directory, windowed runtime, and command loop.

    The parent speaks a small request/response protocol over the pipe; every
    command gets exactly one reply.  Errors are caught and shipped back as
    ``("error", message)`` so a protocol mistake in one shard surfaces in the
    parent instead of killing the worker silently.
    """
    directory = MailboxDirectory()
    runtime = ProviderRuntime(
        scheduler=DecryptScheduler(
            window_bursts=window_bursts,
            max_pending_ciphertexts=max_pending_ciphertexts,
            max_delay_seconds=max_delay_seconds,
        )
    )
    pending: dict[int, str] = {}  # job_id -> kind, for jobs inside open windows
    while True:
        try:
            command, payload = connection.recv()
        except (EOFError, OSError):
            return
        try:
            if command == "register_spam":
                address, protocol, setup = payload
                directory.register_spam(address, protocol, setup)
                reply = ("ok", None)
            elif command == "register_topics":
                address, protocol, setup = payload
                directory.register_topics(address, protocol, setup)
                reply = ("ok", None)
            elif command == "burst":
                jobs = []
                for job_id, kind, address, features, candidates in payload:
                    jobs.append(
                        _worker_build_job(directory, kind, address, features, candidates, job_id)
                    )
                    pending[job_id] = kind
                finished = runtime.serve_burst(jobs)
                reply = ("results", _worker_results(pending, finished))
            elif command == "drain":
                reply = ("results", _worker_results(pending, runtime.drain()))
            elif command == "stats":
                reply = (
                    "stats",
                    {
                        "mailboxes": directory.mailbox_count(),
                        "decrypt_batch_sizes": list(runtime.decrypt_batch_sizes),
                        "outstanding_jobs": runtime.outstanding_jobs(),
                        "pending_window_ciphertexts": runtime.scheduler.pending_ciphertexts(),
                    },
                )
            elif command == "stop":
                connection.send(("ok", None))
                return
            else:
                reply = ("error", f"unknown shard command {command!r}")
        except Exception as error:  # noqa: BLE001 — every failure goes to the parent
            reply = ("error", f"{type(error).__name__}: {error}")
        connection.send(reply)


@dataclass
class _OutstandingItem:
    """Parent-side record of a submitted email, kept until its result lands.

    This is all the state needed to resubmit the email after a shard restart
    (frames never leave the worker, so an email in flight on a killed shard
    simply re-runs from its features).
    """

    shard: int
    kind: str
    address: str
    features: SparseVector
    candidates: Sequence[int] | None = None


class ShardedRuntime:
    """Partition the serving loop across worker processes by mailbox hash.

    Each of the ``num_shards`` workers owns the mailboxes that
    :func:`shard_of_address` maps to it: its own :class:`MailboxDirectory`
    (encrypted-model stacks and per-pair OT pools stay warm in the worker
    across bursts) and its own windowed :class:`ProviderRuntime`.  Because
    decrypt batching is per key pair, shards never need to coordinate — the
    partition is embarrassingly parallel, which is the §6.3 scaling story.

    The parent keeps enough state to survive a worker loss: registrations are
    replayed and in-flight emails resubmitted by :meth:`restart_shard`, so a
    mid-window crash costs recomputation of the open window, never
    correctness.  Results are collected by job id (:meth:`take_result`);
    :meth:`run_spam_stream` is the submit/drain convenience the benchmarks
    use.
    """

    def __init__(
        self,
        num_shards: int = 4,
        window_bursts: int = 1,
        max_pending_ciphertexts: int | None = None,
        max_delay_seconds: float | None = None,
        start_method: str | None = None,
    ) -> None:
        if num_shards < 1:
            raise ProtocolError("a sharded runtime needs at least one shard")
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self.num_shards = num_shards
        self._window = (window_bursts, max_pending_ciphertexts, max_delay_seconds)
        self._context = multiprocessing.get_context(start_method)
        self._connections: list[Any] = []
        self._processes: list[Any] = []
        self._registrations: list[tuple[int, str, tuple]] = []
        self._registered: set[tuple[str, str]] = set()  # (kind, address)
        self._outstanding: dict[int, _OutstandingItem] = {}
        self._results: dict[int, Any] = {}
        self._job_ids = itertools.count()
        self._closed = False
        for _ in range(num_shards):
            self._spawn_worker()

    # -- worker lifecycle ----------------------------------------------------
    def _spawn_worker(self) -> None:
        parent_connection, child_connection = self._context.Pipe()
        process = self._context.Process(
            target=_shard_worker_main,
            args=(child_connection, *self._window),
            daemon=True,
        )
        process.start()
        child_connection.close()
        self._connections.append(parent_connection)
        self._processes.append(process)

    def _send(self, shard: int, command: str, payload: Any) -> None:
        if self._closed:
            raise ProtocolError("the sharded runtime is closed")
        try:
            self._connections[shard].send((command, payload))
        except (EOFError, OSError, BrokenPipeError) as error:
            raise ProtocolError(
                f"shard {shard} worker died (restart_shard can recover it): {error}"
            ) from error

    def _collect(self, shard: int, command: str) -> Any:
        try:
            tag, body = self._connections[shard].recv()
        except (EOFError, OSError, BrokenPipeError) as error:
            raise ProtocolError(
                f"shard {shard} worker died (restart_shard can recover it): {error}"
            ) from error
        if tag == "error":
            raise ProtocolError(f"shard {shard} rejected {command!r}: {body}")
        if tag == "results":
            for job_id, result in body:
                self._results[job_id] = result
                self._outstanding.pop(job_id, None)
        return body

    def _request(self, shard: int, command: str, payload: Any) -> Any:
        self._send(shard, command, payload)
        return self._collect(shard, command)

    def restart_shard(self, shard: int) -> int:
        """Kill one worker and rebuild it: replay registrations, resubmit work.

        Models a provider process dying mid-window (§6.3 deployments restart
        workers all the time).  Returns the number of in-flight emails that
        were resubmitted to the fresh worker.
        """
        if not 0 <= shard < self.num_shards:
            raise ProtocolError(f"no shard {shard} in a {self.num_shards}-shard runtime")
        process = self._processes[shard]
        process.terminate()
        process.join(timeout=10.0)
        self._connections[shard].close()
        # Rebuild in place so shard indices (and the address partition) hold.
        parent_connection, child_connection = self._context.Pipe()
        fresh = self._context.Process(
            target=_shard_worker_main,
            args=(child_connection, *self._window),
            daemon=True,
        )
        fresh.start()
        child_connection.close()
        self._connections[shard] = parent_connection
        self._processes[shard] = fresh
        for registered_shard, command, payload in self._registrations:
            if registered_shard == shard:
                self._request(shard, command, payload)
        resubmit = [
            (job_id, item)
            for job_id, item in self._outstanding.items()
            if item.shard == shard
        ]
        if resubmit:
            self._request(
                shard,
                "burst",
                [
                    (job_id, item.kind, item.address, item.features, item.candidates)
                    for job_id, item in resubmit
                ],
            )
        return len(resubmit)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for connection, process in zip(self._connections, self._processes):
            try:
                connection.send(("stop", None))
                connection.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=10.0)

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- registration --------------------------------------------------------
    def shard_of(self, address: str) -> int:
        return shard_of_address(address, self.num_shards)

    def register_spam(
        self, address: str, protocol: SpamFilterProtocol, setup: SpamSetup
    ) -> None:
        shard = self.shard_of(address)
        payload = (address, protocol, setup)
        self._request(shard, "register_spam", payload)
        self._registrations.append((shard, "register_spam", payload))
        self._registered.add(("spam", address))

    def register_topics(
        self, address: str, protocol: TopicExtractionProtocol, setup: TopicSetup
    ) -> None:
        shard = self.shard_of(address)
        payload = (address, protocol, setup)
        self._request(shard, "register_topics", payload)
        self._registrations.append((shard, "register_topics", payload))
        self._registered.add(("topics", address))

    def has_spam(self, address: str) -> bool:
        return ("spam", address) in self._registered

    def has_topics(self, address: str) -> bool:
        return ("topics", address) in self._registered

    # -- submission / results ------------------------------------------------
    def _submit(self, items: list[_OutstandingItem]) -> list[int]:
        job_ids = []
        by_shard: dict[int, list[tuple]] = {}
        for item in items:
            job_id = next(self._job_ids)
            job_ids.append(job_id)
            self._outstanding[job_id] = item
            by_shard.setdefault(item.shard, []).append(
                (job_id, item.kind, item.address, item.features, item.candidates)
            )
        # Fan out before collecting: every worker computes its slice of the
        # burst concurrently; the replies are gathered only afterwards.
        for shard, shard_items in by_shard.items():
            self._send(shard, "burst", shard_items)
        for shard in by_shard:
            self._collect(shard, "burst")
        return job_ids

    def submit_spam(self, emails: Sequence[tuple[str, SparseVector]]) -> list[int]:
        """Submit one burst of (address, features) emails; returns their job ids.

        Each shard runs its slice of the burst through its windowed serving
        loop; results that complete immediately (closed windows) are already
        collected when this returns — the rest arrive with later bursts or
        :meth:`drain`.
        """
        return self._submit(
            [
                _OutstandingItem(
                    shard=self.shard_of(address), kind="spam", address=address, features=features
                )
                for address, features in emails
            ]
        )

    def submit_topics(
        self, emails: Sequence[tuple[str, SparseVector, Sequence[int] | None]]
    ) -> list[int]:
        """Submit one burst of (address, features, candidates) topic emails."""
        return self._submit(
            [
                _OutstandingItem(
                    shard=self.shard_of(address),
                    kind="topics",
                    address=address,
                    features=features,
                    candidates=candidates,
                )
                for address, features, candidates in emails
            ]
        )

    def drain(self) -> None:
        """Close every shard's open windows; all outstanding results land."""
        for shard in range(self.num_shards):
            self._send(shard, "drain", None)
        for shard in range(self.num_shards):
            self._collect(shard, "drain")

    def take_result(self, job_id: int) -> Any:
        """Pop the protocol result for *job_id* (drain first if still open)."""
        if job_id not in self._results:
            raise ProtocolError(
                f"no result for job {job_id} yet "
                f"({len(self._outstanding)} emails still inside open windows)"
            )
        return self._results.pop(job_id)

    def outstanding_count(self) -> int:
        return len(self._outstanding)

    def run_spam_stream(
        self, bursts: Sequence[Sequence[tuple[str, SparseVector]]]
    ) -> list[SpamProtocolResult]:
        """Feed bursts through the shards, drain, return results in order."""
        job_ids: list[int] = []
        for burst in bursts:
            job_ids.extend(self.submit_spam(burst))
        self.drain()
        return [self.take_result(job_id) for job_id in job_ids]

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard serving stats (mailboxes, decrypt batch sizes, backlog)."""
        return [self._request(shard, "stats", None) for shard in range(self.num_shards)]
