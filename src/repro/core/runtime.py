"""Multi-user provider serving loop (§6.3's deployment story as running code).

A deployed Pretzel provider serves millions of mailboxes; per-email protocol
work arrives concurrently, not one session at a time.  This module supplies
the runtime layer that makes the provider half scale:

* :class:`SessionJob` — one in-flight email: a client/provider session pair
  over its own framed channel (sessions are reentrant state machines, so a
  job carries *all* of its protocol state).
* :class:`ProviderRuntime` — the serving loop.  It multiplexes any number of
  jobs, delivering frames round-robin, and *parks* provider sessions at
  their decrypt step: all parked decryption requests that share a key pair
  are folded into one ``decrypt_slots_many`` call, so the provider-side BV
  inverse transforms amortise across sessions (the batching behind
  Figs. 7/10) instead of running once per email.  Batch CPU time is
  attributed back to sessions proportionally to their ciphertext counts.
* :class:`MailboxDirectory` — per-user protocol state kept warm between
  emails: the setup objects (key pairs, encrypted models) and, through
  :meth:`~repro.crypto.packing.PackedLinearModel.ensure_stacks`, the dense
  stacked encrypted-model rows, so no email in a burst pays the one-time
  stacking cost.

:func:`run_spam_batch` / :func:`run_topic_batch` are the convenience drivers
used by the benchmarks, tests and function modules: N feature vectors in,
N protocol results out, with every frame serialized and every byte counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.crypto.ot import OtExtensionPool
from repro.exceptions import ProtocolError
from repro.twopc.session import SessionJob, SessionLoop
from repro.twopc.spam import SpamFilterProtocol, SpamProtocolResult, SpamSetup
from repro.twopc.topics import TopicExtractionProtocol, TopicProtocolResult, TopicSetup

SparseVector = Mapping[int, int]


class ProviderRuntime(SessionLoop):
    """The multi-user provider serving loop.

    A thin domain name over :class:`~repro.twopc.session.SessionLoop` — the
    shared frame pump with cross-session batched decryption — so the same
    loop that drives one in-process session also drains a provider's burst
    of concurrent email jobs.  See :class:`MailboxDirectory` for the
    per-mailbox state the provider keeps warm between bursts.
    """




# ---------------------------------------------------------------------------
# Job builders and batch drivers
# ---------------------------------------------------------------------------
def spam_job(
    protocol: SpamFilterProtocol,
    setup: SpamSetup,
    features: SparseVector,
    label: Any = None,
    ot_pool: OtExtensionPool | None = None,
) -> SessionJob:
    """One spam-classification email session, ready for a serving loop."""
    return SessionJob(
        channel=protocol.make_channel(setup, name=f"spam[{label}]"),
        client=protocol.client_session(setup, features, ot_pool=ot_pool),
        provider=protocol.provider_session(setup, ot_pool=ot_pool),
        label=label,
    )


def topic_job(
    protocol: TopicExtractionProtocol,
    setup: TopicSetup,
    features: SparseVector,
    candidate_topics: Sequence[int] | None = None,
    label: Any = None,
    ot_pool: OtExtensionPool | None = None,
) -> SessionJob:
    """One topic-extraction email session, ready for a serving loop."""
    return SessionJob(
        channel=protocol.make_channel(setup, name=f"topics[{label}]"),
        client=protocol.client_session(setup, features, candidate_topics, ot_pool=ot_pool),
        provider=protocol.provider_session(setup, ot_pool=ot_pool),
        label=label,
    )


def _spam_result(job: SessionJob) -> SpamProtocolResult:
    client = job.client
    assert client.is_spam is not None
    return SpamProtocolResult(
        is_spam=client.is_spam,
        provider_seconds=job.provider.seconds,
        client_seconds=client.seconds,
        network_bytes=job.channel.total_bytes(),
        yao_and_gates=client.yao_and_gates,
        network_messages=job.channel.total_messages(),
        network_rounds=job.channel.rounds(),
    )


def _topic_result(job: SessionJob) -> TopicProtocolResult:
    provider = job.provider
    assert provider.extracted_topic is not None
    return TopicProtocolResult(
        extracted_topic=provider.extracted_topic,
        provider_seconds=provider.seconds,
        client_seconds=job.client.seconds,
        network_bytes=job.channel.total_bytes(),
        yao_and_gates=job.client.yao_and_gates,
        candidates_used=len(job.client.candidates),
        network_messages=job.channel.total_messages(),
        network_rounds=job.channel.rounds(),
    )


def run_spam_batch(
    protocol: SpamFilterProtocol,
    setup: SpamSetup,
    feature_sets: Sequence[SparseVector],
    runtime: ProviderRuntime | None = None,
    ot_pool: OtExtensionPool | None = None,
    use_ot_pool: bool = True,
) -> list[SpamProtocolResult]:
    """Classify N emails as N concurrent sessions with cross-session amortisation.

    Provider decrypts batch across sessions, and (unless *use_ot_pool* is
    off) the Yao OTs of every session extend one per-pair base-OT handshake
    instead of each paying :data:`~repro.crypto.ot.SECURITY_PARAMETER` fresh
    public-key operations.
    """
    if not feature_sets:
        return []
    runtime = runtime or ProviderRuntime()
    setup.encrypted_model.ensure_stacks()
    if ot_pool is None and use_ot_pool and protocol.ot_mode == "iknp":
        ot_pool = protocol.make_ot_pool(setup)
    jobs = [
        spam_job(protocol, setup, features, label=index, ot_pool=ot_pool)
        for index, features in enumerate(feature_sets)
    ]
    runtime.run(jobs)
    return [_spam_result(job) for job in jobs]


def run_topic_batch(
    protocol: TopicExtractionProtocol,
    setup: TopicSetup,
    feature_sets: Sequence[SparseVector],
    candidate_lists: Sequence[Sequence[int] | None] | None = None,
    runtime: ProviderRuntime | None = None,
    ot_pool: OtExtensionPool | None = None,
    use_ot_pool: bool = True,
) -> list[TopicProtocolResult]:
    """Extract topics for N emails as N concurrent sessions with batched decrypts."""
    if not feature_sets:
        return []
    runtime = runtime or ProviderRuntime()
    setup.encrypted_model.ensure_stacks()
    if candidate_lists is None:
        candidate_lists = [None] * len(feature_sets)
    if len(candidate_lists) != len(feature_sets):
        raise ProtocolError("one candidate list (or None) is required per email")
    if ot_pool is None and use_ot_pool and protocol.ot_mode == "iknp":
        ot_pool = protocol.make_ot_pool(setup)
    jobs = [
        topic_job(protocol, setup, features, candidates, label=index, ot_pool=ot_pool)
        for index, (features, candidates) in enumerate(zip(feature_sets, candidate_lists))
    ]
    runtime.run(jobs)
    return [_topic_result(job) for job in jobs]


# ---------------------------------------------------------------------------
# Per-mailbox state kept warm between emails
# ---------------------------------------------------------------------------
@dataclass
class MailboxProtocols:
    """The protocol state a provider keeps per registered mailbox."""

    address: str
    spam: tuple[SpamFilterProtocol, SpamSetup] | None = None
    topics: tuple[TopicExtractionProtocol, TopicSetup] | None = None
    spam_ot_pool: OtExtensionPool | None = None
    topic_ot_pool: OtExtensionPool | None = None


class MailboxDirectory:
    """Per-user protocol state the serving loop reuses across emails.

    Registering a mailbox stores its setup (key pair + encrypted model) and
    pre-builds the dense stacked model rows, so the per-email hot path never
    pays setup or stacking costs — the "per-sender encrypted model rows"
    cache of the deployment sketch in §6.3.
    """

    def __init__(self) -> None:
        self._mailboxes: dict[str, MailboxProtocols] = {}

    def _entry(self, address: str) -> MailboxProtocols:
        entry = self._mailboxes.get(address)
        if entry is None:
            entry = MailboxProtocols(address=address)
            self._mailboxes[address] = entry
        return entry

    def register_spam(
        self, address: str, protocol: SpamFilterProtocol, setup: SpamSetup
    ) -> None:
        entry = self._entry(address)
        setup.encrypted_model.ensure_stacks()
        entry.spam = (protocol, setup)
        if protocol.ot_mode == "iknp":
            entry.spam_ot_pool = protocol.make_ot_pool(setup)

    def register_topics(
        self, address: str, protocol: TopicExtractionProtocol, setup: TopicSetup
    ) -> None:
        entry = self._entry(address)
        setup.encrypted_model.ensure_stacks()
        entry.topics = (protocol, setup)
        if protocol.ot_mode == "iknp":
            entry.topic_ot_pool = protocol.make_ot_pool(setup)

    def spam_of(self, address: str) -> tuple[SpamFilterProtocol, SpamSetup]:
        entry = self._mailboxes.get(address)
        if entry is None or entry.spam is None:
            raise ProtocolError(f"no spam mailbox registered for {address!r}")
        return entry.spam

    def topics_of(self, address: str) -> tuple[TopicExtractionProtocol, TopicSetup]:
        entry = self._mailboxes.get(address)
        if entry is None or entry.topics is None:
            raise ProtocolError(f"no topic mailbox registered for {address!r}")
        return entry.topics

    def mailbox_count(self) -> int:
        return len(self._mailboxes)

    def spam_jobs(
        self, address: str, feature_sets: Sequence[SparseVector]
    ) -> list[SessionJob]:
        protocol, setup = self.spam_of(address)
        pool = self._mailboxes[address].spam_ot_pool
        return [
            spam_job(protocol, setup, features, label=(address, index), ot_pool=pool)
            for index, features in enumerate(feature_sets)
        ]

    def topic_jobs(
        self,
        address: str,
        feature_sets: Sequence[SparseVector],
        candidate_lists: Sequence[Sequence[int] | None] | None = None,
    ) -> list[SessionJob]:
        protocol, setup = self.topics_of(address)
        pool = self._mailboxes[address].topic_ot_pool
        if candidate_lists is None:
            candidate_lists = [None] * len(feature_sets)
        return [
            topic_job(protocol, setup, features, candidates, label=(address, index), ot_pool=pool)
            for index, (features, candidates) in enumerate(zip(feature_sets, candidate_lists))
        ]
