"""Multi-user provider serving loop (§6.3's deployment story as running code).

A deployed Pretzel provider serves millions of mailboxes; per-email protocol
work arrives concurrently, not one session at a time.  This module supplies
the runtime layer that makes the provider half scale:

* :class:`SessionJob` — one in-flight email: a client/provider session pair
  over its own framed channel (sessions are reentrant state machines, so a
  job carries *all* of its protocol state).
* :class:`ProviderRuntime` — the serving loop.  It multiplexes any number of
  jobs, delivering frames round-robin, and *parks* provider sessions at
  their decrypt step: all parked decryption requests that share a key pair
  are folded into one ``decrypt_slots_many`` call, so the provider-side BV
  inverse transforms amortise across sessions (the batching behind
  Figs. 7/10) instead of running once per email.  Batch CPU time is
  attributed back to sessions proportionally to their ciphertext counts.
* :class:`MailboxDirectory` — per-user protocol state kept warm between
  emails: the setup objects (key pairs, encrypted models) and, through
  :meth:`~repro.crypto.packing.PackedLinearModel.ensure_stacks`, the dense
  stacked encrypted-model rows, so no email in a burst pays the one-time
  stacking cost.

:func:`run_spam_batch` / :func:`run_topic_batch` are the convenience drivers
used by the benchmarks, tests and function modules: N feature vectors in,
N protocol results out, with every frame serialized and every byte counted.

Scaling past one loop (this PR's serving stack, cf. the §6.3 estimates):

* :class:`DecryptScheduler` — the time/size-windowed accumulator that lets a
  provider hold parked decrypts *across bursts* and per key pair before
  folding them into one ``decrypt_slots_many`` call (latency/throughput
  knob; ``window_bursts=1`` degenerates to the per-burst batching above).
* :class:`ProviderRuntime.serve_burst`/:meth:`ProviderRuntime.drain` — the
  windowed serving entry points: jobs whose decrypts are still inside an
  open window stay parked between bursts and complete when it closes.
* :class:`ShardedRuntime` — N worker processes, each owning the mailboxes
  that hash to its shard (stable SHA-256 partition) with its own
  :class:`MailboxDirectory` (warm OT pools, stacked model rows) and windowed
  :class:`ProviderRuntime`.  Shards are embarrassingly parallel because all
  decrypt batching is per key pair, which never crosses a mailbox.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.crypto.chacha import open_sealed, seal
from repro.crypto.ot import OtExtensionPool
from repro.exceptions import IntegrityError, ProtocolError, SnapshotError
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    empty_snapshot,
    get_registry,
    get_tracer,
    merge_snapshots,
    set_registry,
    set_tracer,
)
from repro.twopc.session import SessionJob, SessionLoop, _ParkedDecryption, decrypt_group_key
from repro.twopc.spam import (
    SpamClientSession,
    SpamFilterProtocol,
    SpamProtocolResult,
    SpamProviderSession,
    SpamSetup,
)
from repro.twopc.topics import (
    TopicClientSession,
    TopicExtractionProtocol,
    TopicProtocolResult,
    TopicProviderSession,
    TopicSetup,
)
from repro.twopc.wire import SessionState
from repro.utils.serialization import canonical_dumps, canonical_loads
from repro.utils.timing import AdaptiveWindowController

SparseVector = Mapping[int, int]

#: Recent decrypt-age samples kept verbatim on the scheduler (per-window
#: latency ledger); the unbounded distribution lives in the registry
#: histogram ``decrypt_age_seconds``.
DECRYPT_AGE_SAMPLE_CAP = 4096


# ---------------------------------------------------------------------------
# The windowed decrypt scheduler
# ---------------------------------------------------------------------------
@dataclass
class _DecryptWindow:
    """Parked decrypts for one key pair, accumulating until the window closes."""

    entries: list[_ParkedDecryption] = field(default_factory=list)
    #: Enqueue time of each entry, parallel to ``entries`` (latency ledger).
    entry_times: list[float] = field(default_factory=list)
    ciphertext_count: int = 0
    opened_at: float = 0.0
    opened_burst: int = 0


class DecryptScheduler:
    """Accumulate parked provider decrypts across bursts, per key pair.

    The per-burst serving loop already folds the decrypts of one burst into
    one ``decrypt_slots_many`` per key pair.  This scheduler generalises that
    into a *window*: requests parked in burst *b* stay parked until any of

    * ``window_bursts`` bursts have completed since the window opened,
    * the window holds ``max_pending_ciphertexts`` or more ciphertexts,
    * ``max_delay_seconds`` have elapsed since the window opened,

    whichever trigger is observed first — the latency/throughput knob of the
    §6.3 serving stack.  The scheduler is *poll-driven*: triggers are
    evaluated when the serving loop calls :meth:`take_due` — from
    ``serve_burst``, ``drain``, *and* :meth:`ProviderRuntime.poll`, the
    traffic-free flush tick.  The poll tick is what makes ``max_delay_seconds``
    a real latency bound: an idle provider with parked decrypts and no further
    bursts used to hold its windows (and the clients' emails) until ``drain``;
    now any driver with a timer (the shard workers' idle tick, a test's fake
    clock) closes aged windows on schedule.  ``window_bursts=1`` (the
    default, with no size/time triggers) closes every window at the end of
    the burst that opened it, i.e. exactly the per-burst batching of the
    PR 2 serving loop.  Windows are per key pair by construction, so nothing
    here ever mixes mailboxes.

    Every window close records each released entry's enqueue→fired age in
    :attr:`decrypt_ages` — the per-window latency ledger the SLO suite reads
    (``regress.py --suite latency``).
    """

    def __init__(
        self,
        window_bursts: int = 1,
        max_pending_ciphertexts: int | None = None,
        max_delay_seconds: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if window_bursts < 1:
            raise ProtocolError("window_bursts must be at least 1")
        if max_pending_ciphertexts is not None and max_pending_ciphertexts < 1:
            raise ProtocolError("max_pending_ciphertexts must be at least 1")
        if max_delay_seconds is not None and max_delay_seconds < 0:
            raise ProtocolError("max_delay_seconds must be non-negative")
        self.window_bursts = window_bursts
        self.max_pending_ciphertexts = max_pending_ciphertexts
        self.max_delay_seconds = max_delay_seconds
        self._clock = clock
        self._windows: dict[tuple[int, int], _DecryptWindow] = {}
        self._burst = 0
        #: Recent enqueue→fired ages (the latency ledger) — bounded so a
        #: long-running server never grows it; the full distribution lives in
        #: the registry histogram.
        self._decrypt_ages: deque[float] = deque(maxlen=DECRYPT_AGE_SAMPLE_CAP)
        registry = get_registry()
        self._metric_age = registry.histogram("decrypt_age_seconds")
        self._metric_flush_ciphertexts = registry.histogram("window_flush_ciphertexts")
        self._metric_flush_sessions = registry.histogram("window_flush_sessions")
        self._metric_pending = registry.gauge("pending_window_ciphertexts")

    @property
    def decrypt_ages(self) -> list[float]:
        """The most recent released-entry ages, oldest first (bounded window)."""
        return list(self._decrypt_ages)

    def enqueue(self, entry: _ParkedDecryption) -> None:
        now = self._clock()
        self._observe_arrival(len(entry.request.ciphertexts), now)
        key = decrypt_group_key(entry.request)
        window = self._windows.get(key)
        if window is None:
            window = _DecryptWindow(opened_at=now, opened_burst=self._burst)
            self._windows[key] = window
        window.entries.append(entry)
        window.entry_times.append(now)
        window.ciphertext_count += len(entry.request.ciphertexts)
        self._metric_pending.inc(len(entry.request.ciphertexts))

    def _observe_arrival(self, ciphertexts: int, now: float) -> None:
        """Hook for adaptive subclasses: one arrival of *ciphertexts* at *now*."""

    def end_burst(self) -> None:
        """Mark a burst boundary (ages every open window by one burst)."""
        self._burst += 1

    def _is_due(self, window: _DecryptWindow, now: float) -> bool:
        if self._burst - window.opened_burst >= self.window_bursts:
            return True
        if (
            self.max_pending_ciphertexts is not None
            and window.ciphertext_count >= self.max_pending_ciphertexts
        ):
            return True
        if (
            self.max_delay_seconds is not None
            # Same expression as next_deadline(), so polling exactly at the
            # quoted deadline fires (now - opened >= delay can round the
            # other way at the boundary).
            and now >= window.opened_at + self.max_delay_seconds
        ):
            return True
        return False

    def take_due(self, now: float | None = None) -> list[list[_ParkedDecryption]]:
        """Pop and return every window whose trigger has fired."""
        now = self._clock() if now is None else now
        self._observe_poll(now)
        due = [key for key, window in self._windows.items() if self._is_due(window, now)]
        return [self._release(self._windows.pop(key), now) for key in due]

    def _observe_poll(self, now: float) -> None:
        """Hook for adaptive subclasses: the loop polled triggers at *now*."""

    def _release(self, window: _DecryptWindow, now: float) -> list[_ParkedDecryption]:
        """Record the released entries' ages and hand the entries back."""
        for enqueued in window.entry_times:
            age = now - enqueued
            self._decrypt_ages.append(age)
            self._metric_age.observe(age)
        self._metric_flush_ciphertexts.observe(window.ciphertext_count)
        self._metric_flush_sessions.observe(len(window.entries))
        self._metric_pending.dec(window.ciphertext_count)
        return window.entries

    def next_deadline(self) -> float | None:
        """The earliest time an open window's age trigger will fire, or ``None``.

        ``None`` means no timer is needed: either nothing is parked or there
        is no ``max_delay_seconds`` trigger configured.  Drivers with a timer
        (the shard workers' idle tick, the trace-replay harness) use this to
        schedule the next :meth:`ProviderRuntime.poll` instead of guessing.
        """
        if self.max_delay_seconds is None or not self._windows:
            return None
        return min(window.opened_at for window in self._windows.values()) + (
            self.max_delay_seconds
        )

    def flush(self) -> list[list[_ParkedDecryption]]:
        """Pop every open window regardless of triggers (shutdown / drain)."""
        now = self._clock()
        windows, self._windows = list(self._windows.values()), {}
        return [self._release(window, now) for window in windows]

    def detach_job(self, job: SessionJob) -> list[_ParkedDecryption]:
        """Pull every parked entry belonging to *job* out of its window.

        The reconnect-resume path: a disconnecting client's provider session
        must leave the batching machinery (its decrypt may otherwise fire
        while the client is away and try to send frames into a dead channel).
        The detached entries are handed back verbatim so
        :meth:`ProviderRuntime.reconnect_job` can re-enqueue them — the
        parked decrypt window re-attaches, it is never recomputed.  Windows
        emptied by the detach are closed.
        """
        detached: list[_ParkedDecryption] = []
        for key in list(self._windows):
            window = self._windows[key]
            kept: list[_ParkedDecryption] = []
            kept_times: list[float] = []
            for entry, enqueued in zip(window.entries, window.entry_times):
                if entry.job is job:
                    detached.append(entry)
                    window.ciphertext_count -= len(entry.request.ciphertexts)
                    self._metric_pending.dec(len(entry.request.ciphertexts))
                else:
                    kept.append(entry)
                    kept_times.append(enqueued)
            window.entries = kept
            window.entry_times = kept_times
            if not kept:
                del self._windows[key]
        return detached

    def pending_ciphertexts(self) -> int:
        return sum(window.ciphertext_count for window in self._windows.values())

    def pending_sessions(self) -> int:
        return sum(len(window.entries) for window in self._windows.values())

    def parked_requests(self) -> dict[int, Any]:
        """``id(session) -> DecryptionRequest`` for every entry in an open window.

        The scheduler owns a parked session's request (the session handed it
        over when it parked), so checkpointing a session's complete state
        means folding the request back in — this is the lookup the
        checkpointer uses (see ``BufferedProviderSession.snapshot(pending=…)``).
        """
        requests: dict[int, Any] = {}
        for window in self._windows.values():
            for entry in window.entries:
                requests[id(entry.session)] = entry.request
        return requests


class AdaptiveDecryptScheduler(DecryptScheduler):
    """A :class:`DecryptScheduler` whose delay window follows the load.

    Static windows force one tradeoff on every traffic regime: a wide
    ``max_delay_seconds`` batches well during bursts but taxes every
    idle-period email with the full delay, while a tight one releases idle
    emails fast but shreds the batches a burst could have formed.  This
    scheduler retunes ``max_delay_seconds`` continuously from an EWMA of the
    observed ciphertext arrival rate (the
    :class:`~repro.utils.timing.AdaptiveWindowController` law: window width
    proportional to how much of a target batch the current rate can fill
    within the cap), so bursts see wide windows and quiet periods see
    near-immediate release.  ``max_pending_ciphertexts`` doubles as the
    controller's target batch size: during a hot burst the size trigger
    fires first and the delay cap never binds.

    The controller observes time only through the injected ``clock`` (and
    the explicit ``now=`` of :meth:`take_due`), so the whole control loop is
    unit-testable with a fake clock — no wall time anywhere.
    """

    def __init__(
        self,
        min_delay_seconds: float = 0.002,
        max_delay_seconds: float = 0.25,
        target_batch_ciphertexts: int = 32,
        alpha: float = 0.3,
        clock=time.monotonic,
    ) -> None:
        super().__init__(
            # Burst count never closes an adaptive window: the time and size
            # triggers are the control surface.
            window_bursts=_NEVER_BURSTS,
            max_pending_ciphertexts=target_batch_ciphertexts,
            max_delay_seconds=max_delay_seconds,
            clock=clock,
        )
        self.controller = AdaptiveWindowController(
            min_delay_seconds=min_delay_seconds,
            max_delay_seconds=max_delay_seconds,
            target_batch_items=target_batch_ciphertexts,
            alpha=alpha,
        )
        #: (time, retuned delay) after every arrival — the control-loop trace.
        self.window_history: list[tuple[float, float]] = []
        self.max_delay_seconds = self.controller.delay_seconds(clock())

    def _observe_arrival(self, ciphertexts: int, now: float) -> None:
        self.max_delay_seconds = self.controller.observe(ciphertexts, now)
        self.window_history.append((now, self.max_delay_seconds))

    def _observe_poll(self, now: float) -> None:
        # Idle decay: a poll with no arrivals shrinks the window toward
        # min_delay, so a burst's wide setting cannot strand the tail emails
        # parked after the burst died down.
        self.max_delay_seconds = self.controller.delay_seconds(now)

    def observed_rate(self, now: float | None = None) -> float:
        """The controller's current (decayed) ciphertexts/second estimate."""
        return self.controller.estimator.rate(self._clock() if now is None else now)

    def next_deadline(self) -> float | None:
        # ``self.max_delay_seconds`` is the delay as of the *last* retune; by
        # the time the oldest window would fire under it, idle decay will
        # have shrunk it further.  Quoting the decayed value keeps a timer
        # from sleeping out a burst-width delay on a stream that just died.
        if not self._windows:
            return None
        opened = min(window.opened_at for window in self._windows.values())
        return opened + self.controller.delay_seconds(max(self._clock(), opened))


_NEVER_BURSTS = 10**9  # a burst count no stream reaches: time/size triggers govern


@dataclass
class _DisconnectedJob:
    """A job whose client went away: the provider session parked server-side."""

    job: SessionJob
    entries: list[_ParkedDecryption]


class ProviderRuntime(SessionLoop):
    """The multi-user provider serving loop.

    A thin domain name over :class:`~repro.twopc.session.SessionLoop` — the
    shared frame pump with cross-session batched decryption — so the same
    loop that drives one in-process session also drains a provider's burst
    of concurrent email jobs.  See :class:`MailboxDirectory` for the
    per-mailbox state the provider keeps warm between bursts.

    :meth:`run` keeps the PR 2 contract: drive a burst to completion, folding
    each round's parked decrypts immediately.  The *windowed* entry points —
    :meth:`serve_burst` and :meth:`drain` — thread a
    :class:`DecryptScheduler` through the same delivery phases, so decrypts
    can stay parked across bursts until their window closes; jobs whose
    sessions are inside an open window simply remain active between calls.
    """

    def __init__(self, scheduler: DecryptScheduler | None = None) -> None:
        super().__init__()
        self.scheduler = scheduler or DecryptScheduler()
        self._active: list[SessionJob] = []
        self._disconnected: dict[Any, _DisconnectedJob] = {}
        # Telemetry: spans follow each job enqueue → window park → decrypt →
        # reply on the scheduler's injected clock (VirtualClock replays give
        # bit-identical spans).  Marks are keyed by id(job) — SessionJob is a
        # dataclass with eq=True and therefore unhashable — and popped when
        # the job finishes.
        self._tracer = get_tracer()
        self._metric_emails = get_registry().counter("emails_served_total")
        self._trace_sequence = itertools.count()
        self._span_marks: dict[int, dict[str, Any]] = {}

    # -- telemetry ----------------------------------------------------------
    def _now(self) -> float:
        return self.scheduler._clock()

    def _mark(self, job: SessionJob) -> dict[str, Any]:
        mark = self._span_marks.get(id(job))
        if mark is None:
            if job.trace_id is None:
                job.trace_id = (
                    f"email-{job.label}"
                    if job.label is not None
                    else f"job-{next(self._trace_sequence)}"
                )
            mark = self._span_marks[id(job)] = {
                "trace_id": job.trace_id,
                "admitted": self._now(),
                "ciphertexts": 0,
            }
        return mark

    def _enqueue_parked(self, entry: _ParkedDecryption) -> None:
        """Park one decrypt in the scheduler, stamping the job's enqueue time."""
        self._mark(entry.job).setdefault("enqueued", self._now())
        self.scheduler.enqueue(entry)

    def _service_group(self, entries: list[_ParkedDecryption]) -> None:
        start = self._now()
        for entry in entries:
            mark = self._mark(entry.job)
            mark.setdefault("fired", start)
            mark.setdefault("decrypt_start", start)
            mark["ciphertexts"] += len(entry.request.ciphertexts)
        super()._service_group(entries)
        end = self._now()
        for entry in entries:
            self._mark(entry.job)["decrypt_end"] = end

    def _emit_spans(self, job: SessionJob, mark: dict[str, Any], now: float) -> None:
        trace_id = mark["trace_id"]
        admitted = mark["admitted"]
        enqueued = mark.get("enqueued")
        fired = mark.get("fired")
        decrypt_start = mark.get("decrypt_start")
        decrypt_end = mark.get("decrypt_end")
        self._tracer.record(
            trace_id, "enqueue", admitted, enqueued if enqueued is not None else admitted
        )
        if enqueued is not None and fired is not None:
            self._tracer.record(trace_id, "window_park", enqueued, fired)
        if decrypt_start is not None and decrypt_end is not None:
            self._tracer.record(
                trace_id,
                "decrypt",
                decrypt_start,
                decrypt_end,
                ciphertexts=mark["ciphertexts"],
            )
        reply_start = decrypt_end if decrypt_end is not None else admitted
        self._tracer.record(trace_id, "reply", reply_start, now)
        self._tracer.record(trace_id, "email", admitted, now, label=str(job.label))

    def stats(self) -> dict[str, Any]:
        """One serving-state summary, read from the registry and scheduler.

        The same shape the shard workers report, so single-process and
        sharded deployments expose comparable views.
        """
        return {
            "decrypt_batch_sizes": list(self.decrypt_batch_sizes),
            "decrypt_ages": self.scheduler.decrypt_ages,
            "outstanding_jobs": self.outstanding_jobs(),
            "disconnected_jobs": self.disconnected_jobs(),
            "pending_window_ciphertexts": self.scheduler.pending_ciphertexts(),
            "emails_served": int(self._metric_emails.value),
        }

    # -- reconnect-resume ----------------------------------------------------
    def disconnect_job(self, label: Any) -> SessionState:
        """Detach the client of job *label*; returns its session snapshot.

        The degraded-network story's server half: when a client's connection
        dies mid-protocol, the provider does not abandon the job.  The loop is
        first pumped to quiescence (so no frame is stranded inside the dead
        channel), the client session is snapshotted — these are the bytes the
        client device carries across the reconnect — and the provider session
        is parked server-side together with any decrypt-window entries it had
        in the scheduler.  The job stops counting as active until
        :meth:`reconnect_job` revives it; nothing about it is re-executed.

        Raises :class:`~repro.exceptions.ProtocolError` for an unknown or
        already-finished job, and propagates
        :class:`~repro.exceptions.SnapshotError` if the client session is at
        a position that cannot be snapshotted (the job stays active).
        """
        self._advance()
        job = next((item for item in self._active if item.label == label), None)
        if job is None:
            raise ProtocolError(f"no active job {label!r} to disconnect")
        if job.finished:
            raise ProtocolError(f"job {label!r} already finished; nothing to resume")
        if any(job._inbound.values()):
            raise ProtocolError(f"job {label!r} still has frames in flight")
        state = job.client.snapshot()  # may raise SnapshotError; job stays active
        entries = self.scheduler.detach_job(job)
        self._active.remove(job)
        self._disconnected[label] = _DisconnectedJob(job=job, entries=entries)
        return state

    def reconnect_job(self, label: Any, channel: Any, client: Any) -> SessionJob:
        """Re-attach a disconnected job on a fresh channel with a restored client.

        *client* is the session the returning device rebuilt from the
        snapshot :meth:`disconnect_job` handed out; *channel* is the fresh
        transport the reconnect arrived on.  The provider session (and its
        parked decrypt entries) re-attach exactly where they left off — the
        entries rejoin the scheduler, so the next burst, trigger, or drain
        closes their window and the protocol resumes with zero re-execution.
        """
        parked = self._disconnected.pop(label, None)
        if parked is None:
            raise ProtocolError(f"no disconnected job {label!r} to reconnect")
        old = parked.job
        job = SessionJob(
            channel=channel,
            client=client,
            provider=old.provider,
            label=label,
            client_name=old.client_name,
            provider_name=old.provider_name,
        )
        self._active.append(job)
        # Carry the span bookkeeping across the reconnect: the new job object
        # continues the old job's trace.
        old_mark = self._span_marks.pop(id(old), None)
        if old_mark is not None:
            job.trace_id = old_mark["trace_id"]
            self._span_marks[id(job)] = old_mark
        for entry in parked.entries:
            entry.job = job
            self._enqueue_parked(entry)
        return job

    def disconnected_jobs(self) -> int:
        """Jobs whose clients are away (parked server-side, awaiting reconnect)."""
        return len(self._disconnected)

    # -- windowed serving ----------------------------------------------------
    def serve_burst(self, jobs: Sequence[SessionJob]) -> list[SessionJob]:
        """Admit *jobs*, pump everything deliverable, close due windows.

        Returns the jobs (from this burst or earlier ones) that finished;
        jobs waiting on an open decrypt window stay active until a later
        burst, a trigger, or :meth:`drain` closes it.
        """
        for job in jobs:
            self._active.append(job)
            self._mark(job)  # admission opens the job's trace
            parked: list[_ParkedDecryption] = []
            for name in (job.client_name, job.provider_name):
                session = job.session(name)
                if not session.started:
                    job.dispatch(name, session.start())
                self._collect_parked(job, name, session, parked)
            for entry in parked:
                self._enqueue_parked(entry)
        self._advance()
        self.scheduler.end_burst()
        while True:
            due = self.scheduler.take_due()
            if not due:
                break
            for entries in due:
                self._service_group(entries)
            self._advance()
        return self._collect_finished()

    def poll(self, now: float | None = None) -> list[SessionJob]:
        """Close every window whose trigger has fired — without new traffic.

        The idle-starvation fix: :meth:`DecryptScheduler.take_due` is only
        evaluated when something calls it, so before this method existed an
        idle provider (no further bursts, no drain) held parked decrypts —
        and the clients' emails — past any ``max_delay_seconds``.  Drivers
        with a timer call this on a tick (the shard workers' idle loop, the
        trace-replay harness; tests pass an explicit fake-clock ``now``):
        aged windows are serviced, their sessions resumed, and any jobs that
        finish are returned.  A poll with nothing due is a cheap no-op.
        """
        due = self.scheduler.take_due(now)
        if not due:
            return self._collect_finished()
        for entries in due:
            self._service_group(entries)
        self._advance()  # deliver the resumed frames (and any newly due windows)
        return self._collect_finished()

    def drain(self) -> list[SessionJob]:
        """Close every open window and finish every active job."""
        while True:
            self._advance()
            groups = self.scheduler.flush()
            if not groups:
                break
            for entries in groups:
                self._service_group(entries)
        stuck = [job.label for job in self._active if not job.finished]
        if stuck:
            raise ProtocolError(f"serving loop deadlock after drain; unfinished jobs: {stuck}")
        return self._collect_finished()

    def outstanding_jobs(self) -> int:
        """Jobs admitted but not yet finished (waiting on an open window)."""
        return sum(1 for job in self._active if not job.finished)

    def _advance(self) -> None:
        """Deliver until quiescent, servicing windows as triggers fire.

        Runs to a fixed point: a delivery pass visits each party once, so a
        frame chain that hops back to an already-visited party (the topic
        provider receiving the garbler's tables, for example) needs another
        pass — returning after a single pass would strand deliverable frames
        and trip the drain-time deadlock check.
        """
        while True:
            parked: list[_ParkedDecryption] = []
            progressed = self._deliver_all(self._active, parked)
            for entry in parked:
                self._enqueue_parked(entry)
            due = self.scheduler.take_due()
            if due:
                for entries in due:
                    self._service_group(entries)
                continue
            if not progressed:
                return

    def _collect_finished(self) -> list[SessionJob]:
        finished = [job for job in self._active if job.finished]
        self._active = [job for job in self._active if not job.finished]
        if finished:
            now = self._now()
            for job in finished:
                mark = self._span_marks.pop(id(job), None)
                if mark is not None:
                    self._emit_spans(job, mark, now)
                self._metric_emails.inc()
        return finished


# ---------------------------------------------------------------------------
# Session stores: where serialized SessionState snapshots live
# ---------------------------------------------------------------------------
class SessionStore(ABC):
    """Keyed storage for serialized session snapshots and shard checkpoints.

    The value is always *bytes* (a :class:`~repro.twopc.wire.SessionState`
    encoding or a checkpoint blob of them) — the store never sees live
    objects, which is the whole point of the persistence contract: anything
    that outlives a process is explicit, versioned bytes.
    """

    @abstractmethod
    def put(self, key: str, blob: bytes) -> None:
        """Store *blob* under *key*, replacing any previous value."""

    @abstractmethod
    def get(self, key: str) -> bytes | None:
        """The blob stored under *key*, or ``None``."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove *key* if present (idempotent)."""

    @abstractmethod
    def keys(self) -> list[str]:
        """All stored keys, sorted."""


class InMemorySessionStore(SessionStore):
    """A dict-backed store: survives nothing, perfect for tests and handoffs."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def put(self, key: str, blob: bytes) -> None:
        self._blobs[key] = bytes(blob)

    def get(self, key: str) -> bytes | None:
        return self._blobs.get(key)

    def delete(self, key: str) -> None:
        self._blobs.pop(key, None)

    def keys(self) -> list[str]:
        return sorted(self._blobs)


class FileSessionStore(SessionStore):
    """One file per key under a directory; writes are atomic (tmp + rename).

    This is what lets a SIGKILLed shard worker come back: the checkpoint it
    wrote at the last burst boundary is on disk, and the replacement process
    (which shares nothing with the dead one) resumes from those bytes.

    Blobs are sealed at rest (ChaCha20 + HMAC-SHA256, encrypt-then-MAC):
    session snapshots carry garble and OT secrets, so the checkpoint files
    must not be plaintext (the ROADMAP's checkpoint-hygiene item).  By
    default the store keeps its 32-byte key in a ``store.key`` file beside
    the blobs — every opener of the same directory (a replacement worker, a
    reopened store) transparently shares it — or callers pass ``key=`` to
    keep it elsewhere.  :meth:`get` authenticates before returning: a
    tampered blob, a blob sealed under a different key, or a pre-existing
    *plaintext* checkpoint (no version byte) raises
    :class:`~repro.exceptions.SnapshotError` — refused, never misparsed.

    Beside the whole-blob keys the store also offers an *append-only record
    log* per key (:meth:`append_records` / :meth:`read_records` /
    :meth:`replace_records`): length-prefixed records, each sealed
    individually under the same store key (domain-separated info string).
    This is the bounded-write shard-checkpoint format — a burst boundary
    appends only what changed (see :class:`ShardCheckpointLog`) instead of
    rewriting every open session, so checkpoint cost tracks churn, not
    window width.
    """

    _SUFFIX = ".state"
    _LOG_SUFFIX = ".statelog"
    _KEY_FILE = "store.key"
    _INFO = b"pretzel-session-store"
    _LOG_INFO = b"pretzel-session-store-log"

    def __init__(self, directory: str | Path, key: bytes | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._key = bytes(key) if key is not None else self._load_or_create_key()

    def _load_or_create_key(self) -> bytes:
        path = self.directory / self._KEY_FILE
        try:
            # O_EXCL create: exactly one concurrent opener mints the key,
            # everyone else reads the winner's.
            with open(path, "xb") as handle:
                handle.write(os.urandom(32))
        except FileExistsError:
            pass
        return path.read_bytes()

    @staticmethod
    def _escape(key: str) -> str:
        return "".join(
            character
            if (character.isalnum() or character in "._-") and character != "%"
            else f"%{ord(character):02x}"
            for character in key
        )

    @staticmethod
    def _unescape(name: str) -> str:
        pieces = name.split("%")
        return pieces[0] + "".join(
            chr(int(piece[:2], 16)) + piece[2:] for piece in pieces[1:]
        )

    def _path(self, key: str) -> Path:
        return self.directory / (self._escape(key) + self._SUFFIX)

    def put(self, key: str, blob: bytes) -> None:
        path = self._path(key)
        temp = path.with_suffix(path.suffix + ".tmp")
        temp.write_bytes(seal(self._key, bytes(blob), info=self._INFO))
        os.replace(temp, path)

    def get(self, key: str) -> bytes | None:
        path = self._path(key)
        try:
            sealed = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            return open_sealed(self._key, sealed, info=self._INFO)
        except IntegrityError as error:
            raise SnapshotError(f"checkpoint {key!r} refused: {error}") from error

    def delete(self, key: str) -> None:
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            pass

    def keys(self) -> list[str]:
        return sorted(
            self._unescape(path.name[: -len(self._SUFFIX)])
            for path in self.directory.glob(f"*{self._SUFFIX}")
        )

    # -- append-only record logs --------------------------------------------
    def _log_path(self, key: str) -> Path:
        return self.directory / (self._escape(key) + self._LOG_SUFFIX)

    def _sealed_stream(self, records: Sequence[bytes]) -> bytes:
        buffer = bytearray()
        for record in records:
            sealed = seal(self._key, bytes(record), info=self._LOG_INFO)
            buffer += len(sealed).to_bytes(4, "big") + sealed
        return bytes(buffer)

    def append_records(self, key: str, records: Sequence[bytes]) -> None:
        """Append *records* to the key's log in one write, each sealed.

        One ``write`` call per batch, so a crash mid-append tears at most the
        batch's tail — never a record in the middle of the file.
        """
        if not records:
            return
        with open(self._log_path(key), "ab") as handle:
            handle.write(self._sealed_stream(records))

    def read_records(self, key: str) -> list[bytes] | None:
        """Every record appended under *key*, oldest first; ``None`` if no log.

        A torn tail (crash mid-append) is dropped silently — everything
        before it is intact by construction, and whatever the torn batch
        carried is recovered by resubmission.  A record that fails
        authentication raises :class:`~repro.exceptions.SnapshotError`:
        damage *inside* an append-only file is tampering, not a crash
        artifact, and the whole log is refused.
        """
        try:
            data = self._log_path(key).read_bytes()
        except FileNotFoundError:
            return None
        records: list[bytes] = []
        offset = 0
        while offset + 4 <= len(data):
            length = int.from_bytes(data[offset : offset + 4], "big")
            if offset + 4 + length > len(data):
                break  # torn tail: the crash interrupted the final batch
            sealed = data[offset + 4 : offset + 4 + length]
            try:
                records.append(open_sealed(self._key, sealed, info=self._LOG_INFO))
            except IntegrityError as error:
                raise SnapshotError(f"checkpoint log {key!r} refused: {error}") from error
            offset += 4 + length
        return records

    def replace_records(self, key: str, records: Sequence[bytes]) -> None:
        """Atomically rewrite the key's log — the compaction primitive."""
        path = self._log_path(key)
        temp = path.with_suffix(path.suffix + ".tmp")
        temp.write_bytes(self._sealed_stream(records))
        os.replace(temp, path)

    def delete_records(self, key: str) -> None:
        try:
            self._log_path(key).unlink()
        except FileNotFoundError:
            pass


# ---------------------------------------------------------------------------
# Shard checkpoints: open decrypt windows as SessionState snapshots
# ---------------------------------------------------------------------------
CHECKPOINT_VERSION = 1


def checkpoint_open_windows(
    runtime: ProviderRuntime,
    directory: "MailboxDirectory",
    job_context: Mapping[int, tuple[str, str]],
    incarnation: str = "",
) -> bytes | None:
    """Serialize every open-window job of *runtime* (plus its OT pools).

    *job_context* maps job label -> (kind, address); jobs whose sessions
    decline to snapshot (:class:`~repro.exceptions.SnapshotError`) are simply
    left out — the parent recovers those by resubmission, so checkpointing
    degrades to the recompute path instead of failing.  Returns ``None``
    when there is nothing in flight (the caller clears the stored blob).

    *incarnation* names the parent runtime that owns these job ids; restore
    refuses a blob from a different incarnation, because job ids restart
    from zero in every parent and a stale checkpoint's sessions would
    otherwise be delivered under a fresh parent's colliding ids.
    """
    jobs_payload, pools_payload = _checkpoint_payloads(runtime, directory, job_context)
    if not jobs_payload:
        return None
    return canonical_dumps(
        {
            "version": CHECKPOINT_VERSION,
            "incarnation": incarnation,
            "pools": pools_payload,
            "jobs": jobs_payload,
        }
    )


def _checkpoint_payloads(
    runtime: ProviderRuntime,
    directory: "MailboxDirectory",
    job_context: Mapping[int, tuple[str, str]],
) -> tuple[list[dict], list[dict]]:
    """The (jobs, pools) payload lists shared by blob and log checkpointing."""
    parked = runtime.scheduler.parked_requests()
    jobs_payload: list[dict] = []
    pool_keys: set[tuple[str, str]] = set()
    for job in runtime._active:
        if job.finished:
            continue
        kind, address = job_context[job.label]
        try:
            client_state = job.client.snapshot().to_bytes()
            provider_state = job.provider.snapshot(
                pending=parked.get(id(job.provider))
            ).to_bytes()
        except SnapshotError:
            continue
        jobs_payload.append(
            {
                "job_id": job.label,
                "kind": kind,
                "address": address,
                "client": client_state,
                "provider": provider_state,
            }
        )
        pool_keys.add((kind, address))
    pools_payload: list[dict] = []
    for kind, address in sorted(pool_keys):
        pool = (
            directory.spam_pool_of(address)
            if kind == "spam"
            else directory.topic_pool_of(address)
        )
        if pool is not None:
            pools_payload.append(
                {"kind": kind, "address": address, "state": pool.snapshot().to_bytes()}
            )
    return jobs_payload, pools_payload


def restore_open_windows(
    blob: bytes, directory: "MailboxDirectory", incarnation: str = ""
) -> list[tuple[int, str, str, SessionJob]]:
    """Rebuild the jobs of a checkpoint blob against *directory*'s setups.

    Pools are restored *first* (overwriting any fresh pools registration
    replay created) so the rebuilt sessions extend the exact pad cursors
    their pre-crash frames were derived from.  Returns
    ``(job_id, kind, address, job)`` tuples ready for a serving loop; the
    caller admits them (their sessions are already started, so nothing
    re-executes).
    """
    try:
        data = canonical_loads(blob)
    except Exception as error:
        raise SnapshotError(f"malformed shard checkpoint: {error}") from error
    if not isinstance(data, dict) or data.get("version") != CHECKPOINT_VERSION:
        raise SnapshotError("unsupported shard checkpoint format")
    if data.get("incarnation") != incarnation:
        raise SnapshotError(
            "shard checkpoint belongs to a different runtime incarnation "
            "(its job ids would collide with this parent's)"
        )
    for record in data["pools"]:
        pool = OtExtensionPool.restore(SessionState.from_bytes(record["state"]))
        directory.set_pool(record["kind"], record["address"], pool)
    restored: list[tuple[int, str, str, SessionJob]] = []
    for record in data["jobs"]:
        kind, address, job_id = record["kind"], record["address"], record["job_id"]
        if kind == "spam":
            protocol, setup = directory.spam_of(address)
            pool = directory.spam_pool_of(address)
            client: Any = SpamClientSession.restore(
                protocol, setup, SessionState.from_bytes(record["client"]), ot_pool=pool
            )
            provider: Any = SpamProviderSession.restore(
                protocol, setup, SessionState.from_bytes(record["provider"]), ot_pool=pool
            )
        elif kind == "topics":
            protocol, setup = directory.topics_of(address)
            pool = directory.topic_pool_of(address)
            client = TopicClientSession.restore(
                protocol, setup, SessionState.from_bytes(record["client"]), ot_pool=pool
            )
            provider = TopicProviderSession.restore(
                protocol, setup, SessionState.from_bytes(record["provider"]), ot_pool=pool
            )
        else:
            raise SnapshotError(f"unknown job kind {kind!r} in shard checkpoint")
        job = SessionJob(
            channel=protocol.make_channel(setup, name=f"resume[{job_id}]"),
            client=client,
            provider=provider,
            label=job_id,
        )
        restored.append((job_id, kind, address, job))
    return restored


class ShardCheckpointLog:
    """Append-only shard checkpoint: per-session records, not whole blobs.

    The monolithic-blob checkpoint rewrites *every* open window at each
    burst boundary, so its write cost grows with total parked state even
    when one email parks.  This log appends only what changed — a ``park``
    record when a session's snapshot digest moves, a ``tomb`` record when a
    job drains — via :meth:`FileSessionStore.append_records`, so steady-state
    write cost tracks the burst, not the backlog.

    Record types (each a :func:`canonical_dumps` dict, individually sealed
    by the store):

    * ``begin`` — written once per log life: checkpoint version + owning
      incarnation.  :meth:`load` folds it into the blob header, so stale
      incarnations are refused by :func:`restore_open_windows` exactly as
      monolithic blobs were.
    * ``pool`` — an OT pool's cursor state, deduplicated by digest and
      always appended *before* the parks of the same sync so a torn tail
      can never strand a park whose pads are newer than its pool record.
    * ``park`` — one open job's client+provider session state, deduplicated
      by digest per job id (an unchanged parked session is never rewritten).
    * ``tomb`` — the job drained; :meth:`load` drops its parks.

    A torn final batch (the process died mid-``write``) is silently dropped
    by :meth:`FileSessionStore.read_records` — those emails recover through
    the parent's resubmission path, the same degradation the blob scheme
    had for an unwritten checkpoint.  Mid-file tampering surfaces as
    :class:`~repro.exceptions.SnapshotError`.  :meth:`load` compacts the
    surviving records back into a minimal log so the file's size tracks
    open work, not history.
    """

    def __init__(self, store: SessionStore, key: str, incarnation: str = "") -> None:
        self._store = store
        self._key = key
        self._incarnation = incarnation
        self._begun = False
        self._pool_digests: dict[tuple[str, str], bytes] = {}
        self._park_digests: dict[int, bytes] = {}

    def sync(
        self,
        runtime: ProviderRuntime,
        directory: "MailboxDirectory",
        job_context: Mapping[int, tuple[str, str]],
    ) -> None:
        """Append whatever changed since the last sync (one write syscall)."""
        jobs_payload, pools_payload = _checkpoint_payloads(runtime, directory, job_context)
        if not jobs_payload:
            # Nothing in flight: dropping the file is cheaper than appending
            # a tombstone per drained job, and it resets the dedup state so
            # the next log life re-records everything it needs.
            self.clear()
            return
        records: list[bytes] = []
        if not self._begun:
            records.append(
                canonical_dumps(
                    {
                        "type": "begin",
                        "version": CHECKPOINT_VERSION,
                        "incarnation": self._incarnation,
                    }
                )
            )
        new_pools: dict[tuple[str, str], bytes] = {}
        for pool in pools_payload:
            digest = hashlib.sha256(pool["state"]).digest()
            new_pools[(pool["kind"], pool["address"])] = digest
            if self._pool_digests.get((pool["kind"], pool["address"])) != digest:
                records.append(canonical_dumps(dict(pool, type="pool")))
        new_parks: dict[int, bytes] = {}
        for job in jobs_payload:
            digest = hashlib.sha256(job["client"] + job["provider"]).digest()
            new_parks[job["job_id"]] = digest
            if self._park_digests.get(job["job_id"]) != digest:
                records.append(canonical_dumps(dict(job, type="park")))
        for job_id in sorted(self._park_digests.keys() - new_parks.keys()):
            records.append(canonical_dumps({"type": "tomb", "job_id": job_id}))
        if records:
            self._store.append_records(self._key, records)
        self._begun = True
        self._pool_digests.update(new_pools)
        self._park_digests = new_parks

    def clear(self) -> None:
        """Delete the log file and reset the dedup state."""
        self._store.delete_records(self._key)
        self._begun = False
        self._pool_digests.clear()
        self._park_digests.clear()

    def load(self) -> bytes | None:
        """Fold the log into a :func:`restore_open_windows` blob, then compact.

        Returns ``None`` when there is no log or no live job.  Pools are
        filtered to the addresses of live jobs — restoring a pool no live
        session extends would rewind its pad cursor and risk pad reuse.
        Jobs come back sorted by id, i.e. admission order.
        """
        records = self._store.read_records(self._key)
        if records is None:
            return None
        begin: dict | None = None
        pools: dict[tuple[str, str], dict] = {}
        parks: dict[int, dict] = {}
        for raw in records:
            try:
                record = canonical_loads(raw)
                kind = record["type"]
            except Exception as error:
                raise SnapshotError(
                    f"malformed checkpoint log record: {error}"
                ) from error
            if kind == "begin":
                begin = record
            elif kind == "pool":
                pools[(record["kind"], record["address"])] = record
            elif kind == "park":
                parks[record["job_id"]] = record
            elif kind == "tomb":
                parks.pop(record["job_id"], None)
            else:
                raise SnapshotError(f"unknown checkpoint log record type {kind!r}")
        if not parks:
            self.clear()
            return None
        if begin is None:
            raise SnapshotError("checkpoint log is missing its begin record")
        live = {(job["kind"], job["address"]) for job in parks.values()}
        live_pools = [key for key in sorted(pools) if key in live]

        def _strip(record: dict) -> dict:
            return {name: value for name, value in record.items() if name != "type"}

        blob = canonical_dumps(
            {
                "version": begin.get("version"),
                "incarnation": begin.get("incarnation", ""),
                "pools": [_strip(pools[key]) for key in live_pools],
                "jobs": [_strip(parks[job_id]) for job_id in sorted(parks)],
            }
        )
        # Compact: rewrite the file as just the surviving records and seed
        # the dedup state from them, so the next sync appends only deltas.
        compacted = [canonical_dumps(begin)]
        self._pool_digests = {
            key: hashlib.sha256(pools[key]["state"]).digest() for key in live_pools
        }
        compacted.extend(canonical_dumps(pools[key]) for key in live_pools)
        self._park_digests = {}
        for job_id in sorted(parks):
            record = parks[job_id]
            self._park_digests[job_id] = hashlib.sha256(
                record["client"] + record["provider"]
            ).digest()
            compacted.append(canonical_dumps(record))
        self._store.replace_records(self._key, compacted)
        self._begun = True
        return blob


# ---------------------------------------------------------------------------
# Job builders and batch drivers
# ---------------------------------------------------------------------------
def spam_job(
    protocol: SpamFilterProtocol,
    setup: SpamSetup,
    features: SparseVector,
    label: Any = None,
    ot_pool: OtExtensionPool | None = None,
) -> SessionJob:
    """One spam-classification email session, ready for a serving loop."""
    return SessionJob(
        channel=protocol.make_channel(setup, name=f"spam[{label}]"),
        client=protocol.client_session(setup, features, ot_pool=ot_pool),
        provider=protocol.provider_session(setup, ot_pool=ot_pool),
        label=label,
    )


def topic_job(
    protocol: TopicExtractionProtocol,
    setup: TopicSetup,
    features: SparseVector,
    candidate_topics: Sequence[int] | None = None,
    label: Any = None,
    ot_pool: OtExtensionPool | None = None,
) -> SessionJob:
    """One topic-extraction email session, ready for a serving loop."""
    return SessionJob(
        channel=protocol.make_channel(setup, name=f"topics[{label}]"),
        client=protocol.client_session(setup, features, candidate_topics, ot_pool=ot_pool),
        provider=protocol.provider_session(setup, ot_pool=ot_pool),
        label=label,
    )


def _spam_result(job: SessionJob) -> SpamProtocolResult:
    client = job.client
    assert client.is_spam is not None
    return SpamProtocolResult(
        is_spam=client.is_spam,
        provider_seconds=job.provider.seconds,
        client_seconds=client.seconds,
        network_bytes=job.channel.total_bytes(),
        yao_and_gates=client.yao_and_gates,
        network_messages=job.channel.total_messages(),
        network_rounds=job.channel.rounds(),
    )


def _topic_result(job: SessionJob) -> TopicProtocolResult:
    provider = job.provider
    assert provider.extracted_topic is not None
    return TopicProtocolResult(
        extracted_topic=provider.extracted_topic,
        provider_seconds=provider.seconds,
        client_seconds=job.client.seconds,
        network_bytes=job.channel.total_bytes(),
        yao_and_gates=job.client.yao_and_gates,
        candidates_used=len(job.client.candidates),
        network_messages=job.channel.total_messages(),
        network_rounds=job.channel.rounds(),
    )


def run_spam_batch(
    protocol: SpamFilterProtocol,
    setup: SpamSetup,
    feature_sets: Sequence[SparseVector],
    runtime: ProviderRuntime | None = None,
    ot_pool: OtExtensionPool | None = None,
    use_ot_pool: bool = True,
) -> list[SpamProtocolResult]:
    """Classify N emails as N concurrent sessions with cross-session amortisation.

    Provider decrypts batch across sessions, and (unless *use_ot_pool* is
    off) the Yao OTs of every session extend one per-pair base-OT handshake
    instead of each paying :data:`~repro.crypto.ot.SECURITY_PARAMETER` fresh
    public-key operations.
    """
    if not feature_sets:
        return []
    runtime = runtime or ProviderRuntime()
    setup.encrypted_model.ensure_stacks()
    if ot_pool is None and use_ot_pool and protocol.ot_mode == "iknp":
        ot_pool = protocol.make_ot_pool(setup)
    jobs = [
        spam_job(protocol, setup, features, label=index, ot_pool=ot_pool)
        for index, features in enumerate(feature_sets)
    ]
    runtime.run(jobs)
    return [_spam_result(job) for job in jobs]


def run_topic_batch(
    protocol: TopicExtractionProtocol,
    setup: TopicSetup,
    feature_sets: Sequence[SparseVector],
    candidate_lists: Sequence[Sequence[int] | None] | None = None,
    runtime: ProviderRuntime | None = None,
    ot_pool: OtExtensionPool | None = None,
    use_ot_pool: bool = True,
) -> list[TopicProtocolResult]:
    """Extract topics for N emails as N concurrent sessions with batched decrypts."""
    if not feature_sets:
        return []
    runtime = runtime or ProviderRuntime()
    setup.encrypted_model.ensure_stacks()
    if candidate_lists is None:
        candidate_lists = [None] * len(feature_sets)
    if len(candidate_lists) != len(feature_sets):
        raise ProtocolError("one candidate list (or None) is required per email")
    if ot_pool is None and use_ot_pool and protocol.ot_mode == "iknp":
        ot_pool = protocol.make_ot_pool(setup)
    jobs = [
        topic_job(protocol, setup, features, candidates, label=index, ot_pool=ot_pool)
        for index, (features, candidates) in enumerate(zip(feature_sets, candidate_lists))
    ]
    runtime.run(jobs)
    return [_topic_result(job) for job in jobs]


# ---------------------------------------------------------------------------
# Per-mailbox state kept warm between emails
# ---------------------------------------------------------------------------
@dataclass
class MailboxProtocols:
    """The protocol state a provider keeps per registered mailbox."""

    address: str
    spam: tuple[SpamFilterProtocol, SpamSetup] | None = None
    topics: tuple[TopicExtractionProtocol, TopicSetup] | None = None
    spam_ot_pool: OtExtensionPool | None = None
    topic_ot_pool: OtExtensionPool | None = None


class MailboxDirectory:
    """Per-user protocol state the serving loop reuses across emails.

    Registering a mailbox stores its setup (key pair + encrypted model) and
    pre-builds the dense stacked model rows, so the per-email hot path never
    pays setup or stacking costs — the "per-sender encrypted model rows"
    cache of the deployment sketch in §6.3.
    """

    def __init__(self) -> None:
        self._mailboxes: dict[str, MailboxProtocols] = {}

    def _entry(self, address: str) -> MailboxProtocols:
        entry = self._mailboxes.get(address)
        if entry is None:
            entry = MailboxProtocols(address=address)
            self._mailboxes[address] = entry
        return entry

    def register_spam(
        self,
        address: str,
        protocol: SpamFilterProtocol,
        setup: SpamSetup,
        build_pool: bool = True,
    ) -> None:
        """Store a mailbox's spam setup; ``build_pool=False`` defers the base OTs.

        A restart that intends to restore a checkpoint defers pool building:
        the restored pool replaces whatever registration would have built, so
        paying the per-pair base-OT handshake just to discard it would be
        pure recovery latency (:meth:`ensure_pools` backfills any mailbox the
        checkpoint did not cover).
        """
        entry = self._entry(address)
        setup.encrypted_model.ensure_stacks()
        entry.spam = (protocol, setup)
        if build_pool and protocol.ot_mode == "iknp":
            entry.spam_ot_pool = protocol.make_ot_pool(setup)

    def register_topics(
        self,
        address: str,
        protocol: TopicExtractionProtocol,
        setup: TopicSetup,
        build_pool: bool = True,
    ) -> None:
        entry = self._entry(address)
        setup.encrypted_model.ensure_stacks()
        entry.topics = (protocol, setup)
        if build_pool and protocol.ot_mode == "iknp":
            entry.topic_ot_pool = protocol.make_ot_pool(setup)

    def ensure_pools(self) -> None:
        """Build the OT pool of every registered mailbox that still lacks one."""
        for entry in self._mailboxes.values():
            if entry.spam is not None and entry.spam_ot_pool is None:
                protocol, setup = entry.spam
                if protocol.ot_mode == "iknp":
                    entry.spam_ot_pool = protocol.make_ot_pool(setup)
            if entry.topics is not None and entry.topic_ot_pool is None:
                protocol, setup = entry.topics
                if protocol.ot_mode == "iknp":
                    entry.topic_ot_pool = protocol.make_ot_pool(setup)

    def spam_of(self, address: str) -> tuple[SpamFilterProtocol, SpamSetup]:
        entry = self._mailboxes.get(address)
        if entry is None or entry.spam is None:
            raise ProtocolError(f"no spam mailbox registered for {address!r}")
        return entry.spam

    def topics_of(self, address: str) -> tuple[TopicExtractionProtocol, TopicSetup]:
        entry = self._mailboxes.get(address)
        if entry is None or entry.topics is None:
            raise ProtocolError(f"no topic mailbox registered for {address!r}")
        return entry.topics

    def spam_pool_of(self, address: str) -> OtExtensionPool | None:
        entry = self._mailboxes.get(address)
        return entry.spam_ot_pool if entry else None

    def topic_pool_of(self, address: str) -> OtExtensionPool | None:
        entry = self._mailboxes.get(address)
        return entry.topic_ot_pool if entry else None

    def set_pool(self, kind: str, address: str, pool: OtExtensionPool) -> None:
        """Install a restored OT pool, replacing whatever registration built.

        Restoring a checkpoint must override the *fresh* pool that replaying
        a registration created: the snapshotted sessions' frames were derived
        from the old pool's seeds and pad cursors, and only the restored pool
        continues them bit-identically.
        """
        entry = self._entry(address)
        if kind == "spam":
            entry.spam_ot_pool = pool
        elif kind == "topics":
            entry.topic_ot_pool = pool
        else:
            raise ProtocolError(f"unknown pool kind {kind!r}")

    def mailbox_count(self) -> int:
        return len(self._mailboxes)

    def spam_jobs(
        self, address: str, feature_sets: Sequence[SparseVector]
    ) -> list[SessionJob]:
        protocol, setup = self.spam_of(address)
        pool = self._mailboxes[address].spam_ot_pool
        return [
            spam_job(protocol, setup, features, label=(address, index), ot_pool=pool)
            for index, features in enumerate(feature_sets)
        ]

    def topic_jobs(
        self,
        address: str,
        feature_sets: Sequence[SparseVector],
        candidate_lists: Sequence[Sequence[int] | None] | None = None,
    ) -> list[SessionJob]:
        protocol, setup = self.topics_of(address)
        pool = self._mailboxes[address].topic_ot_pool
        if candidate_lists is None:
            candidate_lists = [None] * len(feature_sets)
        return [
            topic_job(protocol, setup, features, candidates, label=(address, index), ot_pool=pool)
            for index, (features, candidates) in enumerate(zip(feature_sets, candidate_lists))
        ]


# ---------------------------------------------------------------------------
# The sharded serving stack: worker processes keyed by mailbox hash
# ---------------------------------------------------------------------------
def shard_of_address(address: str, num_shards: int) -> int:
    """Stable shard assignment: SHA-256 of the address, mod the shard count.

    Deliberately *not* Python's salted ``hash`` — the partition must agree
    across processes and across runs, because per-mailbox state (encrypted
    models, OT pools) lives wherever the mailbox hashes to.
    """
    digest = hashlib.sha256(address.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def _worker_build_job(
    directory: MailboxDirectory,
    kind: str,
    address: str,
    features: SparseVector,
    candidates: Sequence[int] | None,
    job_id: int,
) -> SessionJob:
    if kind == "spam":
        protocol, setup = directory.spam_of(address)
        return spam_job(
            protocol, setup, features, label=job_id, ot_pool=directory.spam_pool_of(address)
        )
    if kind == "topics":
        protocol, setup = directory.topics_of(address)
        return topic_job(
            protocol,
            setup,
            features,
            candidates,
            label=job_id,
            ot_pool=directory.topic_pool_of(address),
        )
    raise ProtocolError(f"unknown job kind {kind!r}")


def _worker_results(
    pending: dict[int, tuple[str, str]], finished: Sequence[SessionJob]
) -> list[tuple[int, Any]]:
    results = []
    for job in finished:
        job_id = job.label
        kind, _address = pending.pop(job_id)
        result = _spam_result(job) if kind == "spam" else _topic_result(job)
        results.append((job_id, result))
    return results


def _make_scheduler(spec: tuple) -> DecryptScheduler:
    """Build a worker's scheduler from its picklable spec.

    ``("static", window_bursts, max_pending, max_delay)`` builds the classic
    fixed-knob :class:`DecryptScheduler`; ``("adaptive", options)`` builds an
    :class:`AdaptiveDecryptScheduler` with *options* as keyword arguments.
    A spec (not a scheduler) crosses the fork/spawn boundary because the
    adaptive controller's state is per-process by design.
    """
    kind = spec[0]
    if kind == "static":
        _, window_bursts, max_pending, max_delay = spec
        return DecryptScheduler(
            window_bursts=window_bursts,
            max_pending_ciphertexts=max_pending,
            max_delay_seconds=max_delay,
        )
    if kind == "adaptive":
        return AdaptiveDecryptScheduler(**spec[1])
    raise ProtocolError(f"unknown scheduler spec kind {kind!r}")


class ShardWorkerCore:
    """One shard's brain, divorced from its transport.

    Owns the shard's :class:`MailboxDirectory`, windowed
    :class:`ProviderRuntime`, pending-job table and append-only checkpoint
    log, and turns ``(command, payload)`` tuples into exactly one reply
    tuple each.  Both serving loops wrap it: the in-box pipe worker
    (:func:`_shard_worker_main`) and the cross-host TCP agent
    (:mod:`repro.fabric.agent`) differ only in how commands arrive and
    replies leave, so the two fabrics cannot drift in semantics.

    Every results-bearing reply (``burst``/``drain``/``poll``/``restore``)
    piggybacks a *cumulative* snapshot of this worker's metrics registry.
    Cumulative — not a delta — so a lost reply or a killed worker can never
    leave the parent holding a partial increment; the parent keeps only the
    latest snapshot per worker incarnation and folds dead incarnations in
    exactly once (see :meth:`ShardedRuntime.aggregated_metrics`).

    With a *checkpoint_store*, open decrypt windows are synced to a
    :class:`ShardCheckpointLog` at every burst/drain boundary (before the
    reply leaves, so an acked burst is always recoverable).  The ``restore``
    command resumes from the worker's own log when its payload is ``None``,
    or from a checkpoint blob handed over by the parent — the live-migration
    path, where host A's ``checkpoint`` reply becomes host B's ``restore``
    payload.
    """

    def __init__(
        self,
        scheduler_spec: tuple,
        checkpoint_store: SessionStore | None = None,
        shard_index: int = 0,
        incarnation: str = "",
    ) -> None:
        self.directory = MailboxDirectory()
        self.runtime = ProviderRuntime(scheduler=_make_scheduler(scheduler_spec))
        self._incarnation = incarnation
        self._log = (
            ShardCheckpointLog(checkpoint_store, f"shard-{shard_index}", incarnation)
            if checkpoint_store is not None
            else None
        )
        self._pending: dict[int, tuple[str, str]] = {}  # job_id -> (kind, address)
        self._completed: list[tuple[int, Any]] = []  # idle-tick results
        self.restored_jobs = 0
        #: Set by the ``checkpoint`` command: this shard's open windows have
        #: been handed over and it must not make further progress (an idle
        #: tick firing after the handover would serve the same email the
        #: target is about to resume, double-counting its metrics).
        self.quiesced = False

    def next_timeout(self) -> float | None:
        """Seconds until the next decrypt-window age deadline, or ``None``."""
        if self.quiesced:
            return None
        deadline = self.runtime.scheduler.next_deadline()
        return None if deadline is None else max(0.0, deadline - time.monotonic())

    def idle_tick(self) -> None:
        """The transport stayed quiet past a window deadline: fire it now.

        Jobs finished here are stashed and ride back on the next
        results-bearing reply.
        """
        if self.quiesced:
            return
        finished = self.runtime.poll()
        if finished:
            self._completed.extend(_worker_results(self._pending, finished))
            self._checkpoint()

    def _checkpoint(self) -> None:
        if self._log is not None:
            self._log.sync(self.runtime, self.directory, self._pending)

    def _take_results(self, finished: Sequence[SessionJob]) -> list[tuple[int, Any]]:
        results, taken = _worker_results(self._pending, finished), self._completed[:]
        self._completed.clear()
        return taken + results

    def handle(self, command: str, payload: Any) -> tuple[str, Any]:
        """Execute one command; every failure comes back as ``("error", …)``."""
        try:
            return self._dispatch(command, payload)
        except Exception as error:  # noqa: BLE001 — every failure goes to the parent
            return ("error", f"{type(error).__name__}: {error}")

    def _dispatch(self, command: str, payload: Any) -> tuple[str, Any]:
        directory, runtime = self.directory, self.runtime
        if command == "register_spam":
            address, protocol, setup, *options = payload
            directory.register_spam(
                address, protocol, setup, build_pool=not (options and options[0])
            )
            return ("ok", None)
        if command == "register_topics":
            address, protocol, setup, *options = payload
            directory.register_topics(
                address, protocol, setup, build_pool=not (options and options[0])
            )
            return ("ok", None)
        if command == "ensure_pools":
            directory.ensure_pools()
            return ("ok", None)
        if command == "burst":
            jobs = []
            for job_id, kind, address, features, candidates in payload:
                jobs.append(
                    _worker_build_job(directory, kind, address, features, candidates, job_id)
                )
                self._pending[job_id] = (kind, address)
            finished = runtime.serve_burst(jobs)
            results = self._take_results(finished)
            self._checkpoint()
            return ("results", (results, get_registry().snapshot()))
        if command == "drain":
            results = self._take_results(runtime.drain())
            self._checkpoint()
            return ("results", (results, get_registry().snapshot()))
        if command == "poll":
            results = self._take_results(runtime.poll())
            if results:
                self._checkpoint()
            return ("results", (results, get_registry().snapshot()))
        if command == "restore":
            return self._restore(payload)
        if command == "checkpoint":
            # Migration handover: serialize every open window as one blob for
            # the parent to replay into another worker's ``restore``.  Any
            # already-finished results still waiting for a ride leave with it
            # (the source is about to be retired and will not reply again).
            # Quiescing first makes the reply's snapshot *final*: no idle tick
            # may fire a window the target is about to resume, so the handed-
            # over emails are counted on exactly one shard.
            self.quiesced = True
            blob = checkpoint_open_windows(
                runtime, directory, self._pending, self._incarnation
            )
            results = self._take_results([])
            return ("checkpointed", (blob, results, get_registry().snapshot()))
        if command == "disconnect":
            state = runtime.disconnect_job(payload)
            self._checkpoint()
            return ("state", state.to_bytes())
        if command == "reconnect":
            job_id, blob = payload
            if job_id not in self._pending:
                raise ProtocolError(f"no open job {job_id} on this shard")
            kind, address = self._pending[job_id]
            client_state = SessionState.from_bytes(blob)
            if kind == "spam":
                protocol, setup = directory.spam_of(address)
                client: Any = SpamClientSession.restore(
                    protocol, setup, client_state, ot_pool=directory.spam_pool_of(address)
                )
            else:
                protocol, setup = directory.topics_of(address)
                client = TopicClientSession.restore(
                    protocol, setup, client_state, ot_pool=directory.topic_pool_of(address)
                )
            channel = protocol.make_channel(setup, name=f"reconnect[{job_id}]")
            runtime.reconnect_job(job_id, channel, client)
            self._checkpoint()
            return ("ok", None)
        if command == "stats":
            return (
                "stats",
                {
                    "mailboxes": directory.mailbox_count(),
                    "decrypt_batch_sizes": list(runtime.decrypt_batch_sizes),
                    "outstanding_jobs": runtime.outstanding_jobs(),
                    "disconnected_jobs": runtime.disconnected_jobs(),
                    "pending_window_ciphertexts": runtime.scheduler.pending_ciphertexts(),
                    "decrypt_ages": list(runtime.scheduler.decrypt_ages),
                    "restored_jobs": self.restored_jobs,
                    "metrics": get_registry().snapshot(),
                },
            )
        if command == "stop":
            return ("ok", None)
        return ("error", f"unknown shard command {command!r}")

    def _restore(self, payload: Any) -> tuple[str, Any]:
        resumed_ids: list[int] = []
        jobs = []
        blob = payload if isinstance(payload, bytes) else None
        if blob is None and self._log is not None:
            try:
                blob = self._log.load()
            except SnapshotError:
                # The log itself is unreadable (tampered records, sealed
                # under a lost key, malformed folds): same recovery as a
                # refused blob below.
                self._log.clear()
                blob = None
        if blob is not None:
            try:
                restored = restore_open_windows(blob, self.directory, self._incarnation)
            except SnapshotError:
                # An unreadable checkpoint (older format, foreign
                # incarnation, corrupt bytes) must not fail recovery: drop
                # it and let the parent's resubmission recompute the
                # in-flight emails.  Clear so retries do not hit the same
                # poisoned log.
                if self._log is not None:
                    self._log.clear()
                restored = []
            for job_id, kind, address, job in restored:
                self._pending[job_id] = (kind, address)
                resumed_ids.append(job_id)
                jobs.append(job)
        self.restored_jobs += len(jobs)
        finished = self.runtime.serve_burst(jobs) if jobs else []
        results = self._take_results(finished)
        self._checkpoint()
        return ("restored", (resumed_ids, results, get_registry().snapshot()))


def _shard_worker_main(
    connection,
    scheduler_spec: tuple,
    checkpoint_dir: str | None = None,
    shard_index: int = 0,
    incarnation: str = "",
) -> None:
    """Pipe loop around a :class:`ShardWorkerCore` — the in-box worker.

    The parent speaks a small request/response protocol over the pipe; every
    command gets exactly one reply.  Errors are caught and shipped back as
    ``("error", message)`` so a protocol mistake in one shard surfaces in the
    parent instead of killing the worker silently.

    The wait for the next command is *bounded by the scheduler's next age
    deadline*: when the pipe stays quiet past it, the worker ticks
    :meth:`ProviderRuntime.poll` so aged decrypt windows fire with no new
    traffic (the idle-starvation fix — before this tick, a quiet shard held
    parked decrypts until the next burst or drain).
    """
    # A fresh registry/tracer per worker process: under the fork start method
    # the child would otherwise inherit (and re-report) every count the
    # parent accumulated before the spawn.
    set_registry(MetricsRegistry())
    set_tracer(SpanTracer())
    store = FileSessionStore(checkpoint_dir) if checkpoint_dir is not None else None
    core = ShardWorkerCore(
        scheduler_spec,
        checkpoint_store=store,
        shard_index=shard_index,
        incarnation=incarnation,
    )
    while True:
        try:
            if not connection.poll(core.next_timeout()):
                core.idle_tick()
                continue
            command, payload = connection.recv()
        except (EOFError, OSError):
            return
        connection.send(core.handle(command, payload))
        if command == "stop":
            return


@dataclass
class _OutstandingItem:
    """Parent-side record of a submitted email, kept until its result lands.

    This is all the state needed to resubmit the email after a shard restart
    (frames never leave the worker, so an email in flight on a killed shard
    simply re-runs from its features).
    """

    shard: int
    kind: str
    address: str
    features: SparseVector
    candidates: Sequence[int] | None = None


class ShardedRuntime:
    """Partition the serving loop across worker processes by mailbox hash.

    Each of the ``num_shards`` workers owns the mailboxes that
    :func:`shard_of_address` maps to it: its own :class:`MailboxDirectory`
    (encrypted-model stacks and per-pair OT pools stay warm in the worker
    across bursts) and its own windowed :class:`ProviderRuntime`.  Because
    decrypt batching is per key pair, shards never need to coordinate — the
    partition is embarrassingly parallel, which is the §6.3 scaling story.

    The runtime survives worker loss two ways.  With a *checkpoint_dir*,
    every worker persists its open decrypt windows as ``SessionState``
    snapshots at each burst boundary, and :meth:`restart_shard` *resumes*
    them — parked sessions come back bit-identically, with no re-execution
    of completed protocol steps.  Without one (or for work the checkpoint
    does not cover), the parent replays registrations and resubmits in-flight
    emails from their features — the recompute fallback.  Either way a
    mid-window crash never costs correctness.  Results are collected by job
    id (:meth:`take_result`); :meth:`run_spam_stream` is the submit/drain
    convenience the benchmarks use.
    """

    def __init__(
        self,
        num_shards: int = 4,
        window_bursts: int = 1,
        max_pending_ciphertexts: int | None = None,
        max_delay_seconds: float | None = None,
        start_method: str | None = None,
        checkpoint_dir: str | Path | None = None,
        adaptive: bool = False,
        adaptive_options: Mapping[str, Any] | None = None,
    ) -> None:
        if num_shards < 1:
            raise ProtocolError("a sharded runtime needs at least one shard")
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self.num_shards = num_shards
        if adaptive:
            self._scheduler_spec: tuple = ("adaptive", dict(adaptive_options or {}))
        else:
            self._scheduler_spec = (
                "static",
                window_bursts,
                max_pending_ciphertexts,
                max_delay_seconds,
            )
        self._checkpoint_dir = None if checkpoint_dir is None else str(checkpoint_dir)
        # Job ids restart from zero in every parent, so checkpoints are bound
        # to this runtime instance: a leftover blob from an earlier parent in
        # the same directory is refused at restore (recompute fallback)
        # instead of resumed under colliding ids.
        self._incarnation = os.urandom(8).hex()
        self._context = multiprocessing.get_context(start_method)
        self._connections: list[Any] = []
        self._processes: list[Any] = []
        self._registrations: list[tuple[int, str, tuple]] = []
        self._registered: set[tuple[str, str]] = set()  # (kind, address)
        self._outstanding: dict[int, _OutstandingItem] = {}
        self._results: dict[int, Any] = {}
        self._job_ids = itertools.count()
        self._closed = False
        # Cross-shard metrics aggregation.  Workers report *cumulative*
        # registry snapshots; per shard the parent keeps only the live
        # incarnation's latest (replacing, never adding) plus a base holding
        # the final snapshots of dead incarnations — so a restarted worker's
        # counts are folded in exactly once and nothing double-counts.
        self._shard_metrics: dict[int, dict] = {}
        self._shard_metrics_base: dict[int, dict] = {}
        for shard in range(num_shards):
            connection, process = self._spawn_worker(shard)
            self._connections.append(connection)
            self._processes.append(process)

    # -- worker lifecycle ----------------------------------------------------
    def _spawn_worker(self, shard: int) -> tuple[Any, Any]:
        parent_connection, child_connection = self._context.Pipe()
        process = self._context.Process(
            target=_shard_worker_main,
            args=(
                child_connection,
                self._scheduler_spec,
                self._checkpoint_dir,
                shard,
                self._incarnation,
            ),
            daemon=True,
        )
        process.start()
        child_connection.close()
        return parent_connection, process

    def _send(self, shard: int, command: str, payload: Any) -> None:
        if self._closed:
            raise ProtocolError("the sharded runtime is closed")
        try:
            self._connections[shard].send((command, payload))
        except (EOFError, OSError, BrokenPipeError) as error:
            raise ProtocolError(
                f"shard {shard} worker died (restart_shard can recover it): {error}"
            ) from error

    def _collect(self, shard: int, command: str) -> Any:
        try:
            tag, body = self._connections[shard].recv()
        except (EOFError, OSError, BrokenPipeError) as error:
            raise ProtocolError(
                f"shard {shard} worker died (restart_shard can recover it): {error}"
            ) from error
        if tag == "error":
            raise ProtocolError(f"shard {shard} rejected {command!r}: {body}")
        if tag == "results":
            results, metrics = body
            for job_id, result in results:
                self._results[job_id] = result
                self._outstanding.pop(job_id, None)
            self._shard_metrics[shard] = metrics
        elif tag == "restored":
            _resumed_ids, results, metrics = body
            for job_id, result in results:
                self._results[job_id] = result
                self._outstanding.pop(job_id, None)
            self._shard_metrics[shard] = metrics
        elif tag == "stats" and isinstance(body, dict) and "metrics" in body:
            self._shard_metrics[shard] = body["metrics"]
        return body

    def _request(self, shard: int, command: str, payload: Any) -> Any:
        self._send(shard, command, payload)
        return self._collect(shard, command)

    def restart_shard(self, shard: int, resume: bool = True) -> int:
        """Kill one worker and rebuild it: replay registrations, resume, resubmit.

        Models a provider process dying mid-window (§6.3 deployments restart
        workers all the time).  With a checkpoint directory configured (and
        *resume* left on), the fresh worker first restores the open-window
        sessions from its :class:`FileSessionStore` snapshot — those emails
        pick up exactly where they parked, with no re-execution of completed
        protocol steps.  Anything not covered by the checkpoint (e.g. work
        admitted after the last checkpointed boundary, or sessions that
        declined to snapshot) is resubmitted from its features — the
        recompute fallback.  Returns the number of resubmitted emails, so
        ``0`` means every in-flight email was resumed from its snapshot.
        """
        if not 0 <= shard < self.num_shards:
            raise ProtocolError(f"no shard {shard} in a {self.num_shards}-shard runtime")
        process = self._processes[shard]
        process.terminate()
        process.join(timeout=10.0)
        self._connections[shard].close()
        # The dying incarnation's cumulative snapshot becomes part of this
        # shard's base — folded exactly once; the fresh worker starts a new
        # cumulative series from zero.
        final = self._shard_metrics.pop(shard, None)
        if final is not None:
            base = self._shard_metrics_base.get(shard)
            self._shard_metrics_base[shard] = (
                merge_snapshots(base, final) if base is not None else final
            )
        # Rebuild in place so shard indices (and the address partition) hold.
        parent_connection, fresh = self._spawn_worker(shard)
        self._connections[shard] = parent_connection
        self._processes[shard] = fresh
        resuming = resume and self._checkpoint_dir is not None
        for registered_shard, command, payload in self._registrations:
            if registered_shard == shard:
                # When a checkpoint will be restored, defer the per-pair OT
                # handshakes: restored pools replace them for checkpointed
                # mailboxes, and ensure_pools backfills the rest — paying
                # base OTs only to overwrite them would be dead recovery time.
                self._request(shard, command, (*payload, True) if resuming else payload)
        resumed: set[int] = set()
        if resuming:
            resumed_ids, _results, _metrics = self._request(shard, "restore", None)
            resumed = set(resumed_ids)
            self._request(shard, "ensure_pools", None)
        resubmit = [
            (job_id, item)
            for job_id, item in self._outstanding.items()
            if item.shard == shard and job_id not in resumed
        ]
        if resubmit:
            self._request(
                shard,
                "burst",
                [
                    (job_id, item.kind, item.address, item.features, item.candidates)
                    for job_id, item in resubmit
                ],
            )
        return len(resubmit)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for connection, process in zip(self._connections, self._processes):
            try:
                connection.send(("stop", None))
                connection.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=10.0)

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def worker_pid(self, shard: int) -> int:
        """The OS pid of one shard's worker (crash drills SIGKILL this)."""
        if not 0 <= shard < self.num_shards:
            raise ProtocolError(f"no shard {shard} in a {self.num_shards}-shard runtime")
        return self._processes[shard].pid

    def join_worker(self, shard: int, timeout: float = 10.0) -> None:
        """Wait for one shard's worker process to exit (after a kill)."""
        self._processes[shard].join(timeout=timeout)

    # -- registration --------------------------------------------------------
    def shard_of(self, address: str) -> int:
        return shard_of_address(address, self.num_shards)

    def register_spam(
        self, address: str, protocol: SpamFilterProtocol, setup: SpamSetup
    ) -> None:
        shard = self.shard_of(address)
        payload = (address, protocol, setup)
        self._request(shard, "register_spam", payload)
        self._registrations.append((shard, "register_spam", payload))
        self._registered.add(("spam", address))

    def register_topics(
        self, address: str, protocol: TopicExtractionProtocol, setup: TopicSetup
    ) -> None:
        shard = self.shard_of(address)
        payload = (address, protocol, setup)
        self._request(shard, "register_topics", payload)
        self._registrations.append((shard, "register_topics", payload))
        self._registered.add(("topics", address))

    def has_spam(self, address: str) -> bool:
        return ("spam", address) in self._registered

    def has_topics(self, address: str) -> bool:
        return ("topics", address) in self._registered

    # -- submission / results ------------------------------------------------
    def _submit(self, items: list[_OutstandingItem]) -> list[int]:
        job_ids = []
        by_shard: dict[int, list[tuple]] = {}
        for item in items:
            job_id = next(self._job_ids)
            job_ids.append(job_id)
            self._outstanding[job_id] = item
            by_shard.setdefault(item.shard, []).append(
                (job_id, item.kind, item.address, item.features, item.candidates)
            )
        # Fan out before collecting: every worker computes its slice of the
        # burst concurrently; the replies are gathered only afterwards.
        for shard, shard_items in by_shard.items():
            self._send(shard, "burst", shard_items)
        for shard in by_shard:
            self._collect(shard, "burst")
        return job_ids

    def submit_spam(self, emails: Sequence[tuple[str, SparseVector]]) -> list[int]:
        """Submit one burst of (address, features) emails; returns their job ids.

        Each shard runs its slice of the burst through its windowed serving
        loop; results that complete immediately (closed windows) are already
        collected when this returns — the rest arrive with later bursts or
        :meth:`drain`.
        """
        return self._submit(
            [
                _OutstandingItem(
                    shard=self.shard_of(address), kind="spam", address=address, features=features
                )
                for address, features in emails
            ]
        )

    def submit_topics(
        self, emails: Sequence[tuple[str, SparseVector, Sequence[int] | None]]
    ) -> list[int]:
        """Submit one burst of (address, features, candidates) topic emails."""
        return self._submit(
            [
                _OutstandingItem(
                    shard=self.shard_of(address),
                    kind="topics",
                    address=address,
                    features=features,
                    candidates=candidates,
                )
                for address, features, candidates in emails
            ]
        )

    def poll(self) -> int:
        """Tick every shard's age triggers; returns how many new results landed.

        Workers also self-tick while their pipe is idle, so calling this is
        never *required* for progress — it exists so tests and latency-probe
        loops can force the flush deterministically and observe the results
        synchronously (each shard's ``poll`` reply carries any jobs its idle
        ticks finished since the last results-bearing reply).
        """
        before = len(self._results)
        for shard in range(self.num_shards):
            self._send(shard, "poll", None)
        for shard in range(self.num_shards):
            self._collect(shard, "poll")
        return len(self._results) - before

    def drain(self) -> None:
        """Close every shard's open windows; all outstanding results land."""
        for shard in range(self.num_shards):
            self._send(shard, "drain", None)
        for shard in range(self.num_shards):
            self._collect(shard, "drain")

    # -- reconnect-resume ----------------------------------------------------
    def disconnect_client(self, job_id: int) -> bytes:
        """Detach the client of an in-flight email; returns its snapshot bytes.

        Models a mail client losing its connection mid-protocol: the owning
        shard parks the provider session (and its decrypt-window entries)
        server-side and hands back the serialized client ``SessionState`` —
        the bytes the device carries offline.  The job stays outstanding (its
        result will land only after :meth:`reconnect_client`), and nothing is
        recomputed on either side.
        """
        item = self._outstanding.get(job_id)
        if item is None:
            raise ProtocolError(f"job {job_id} is not outstanding (finished or unknown)")
        return self._request(item.shard, "disconnect", job_id)

    def reconnect_client(self, job_id: int, state: bytes) -> None:
        """Resume a disconnected email from its snapshot on a fresh channel.

        The owning shard restores the client session from *state*, opens a
        fresh channel, and re-attaches the parked provider session — the
        protocol picks up exactly where it stopped, with zero resubmissions.
        The result lands with the next burst or :meth:`drain` that closes the
        job's decrypt window.
        """
        item = self._outstanding.get(job_id)
        if item is None:
            raise ProtocolError(f"job {job_id} is not outstanding (finished or unknown)")
        self._request(item.shard, "reconnect", (job_id, bytes(state)))

    def take_result(self, job_id: int) -> Any:
        """Pop the protocol result for *job_id* (drain first if still open)."""
        if job_id not in self._results:
            raise ProtocolError(
                f"no result for job {job_id} yet "
                f"({len(self._outstanding)} emails still inside open windows)"
            )
        return self._results.pop(job_id)

    def outstanding_count(self) -> int:
        return len(self._outstanding)

    def run_spam_stream(
        self, bursts: Sequence[Sequence[tuple[str, SparseVector]]]
    ) -> list[SpamProtocolResult]:
        """Feed bursts through the shards, drain, return results in order."""
        job_ids: list[int] = []
        for burst in bursts:
            job_ids.extend(self.submit_spam(burst))
        self.drain()
        return [self.take_result(job_id) for job_id in job_ids]

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard serving stats (mailboxes, decrypt batch sizes, backlog).

        Each dict also carries the worker's cumulative registry snapshot
        under ``"metrics"`` — a thin read of the worker-side registry.
        """
        return [self._request(shard, "stats", None) for shard in range(self.num_shards)]

    def aggregated_metrics(self) -> dict:
        """One merged metrics snapshot covering every worker, past and present.

        The sum of each shard's dead-incarnation base and the live
        incarnation's latest cumulative snapshot.  Because workers report
        cumulatively and the parent replaces (never adds) the live snapshot,
        a SIGKILL + restore cycle cannot double-count — the property the
        crash-recovery metrics test pins.
        """
        snaps = list(self._shard_metrics_base.values()) + list(self._shard_metrics.values())
        return merge_snapshots(*snaps) if snaps else empty_snapshot()
