"""Function-module abstraction (Fig. 1: client half + provider half).

Every value-added function in Pretzel is a *function module*: a pair of
components, one at the client and one at the provider, that jointly compute a
result over the decrypted email without either side revealing its input.  The
spam and topic modules run two-party protocols; the keyword-search module is
client-only (§5).  This module defines the small shared vocabulary: a result
record with cost accounting and the abstract interface the system driver
calls.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.mail.message import EmailMessage


@dataclass
class ModuleRunResult:
    """Outcome of running one function module over one email.

    ``network_bytes`` is the exact sum of the serialized frame lengths the
    protocol session put on its transport; ``network_messages`` and
    ``network_rounds`` are the frame count and the number of communication
    rounds (direction changes) of the same session — the paper reports rounds
    alongside bytes in Figs. 3, 6 and 11.
    """

    module_name: str
    output: Any
    provider_seconds: float = 0.0
    client_seconds: float = 0.0
    network_bytes: int = 0
    network_messages: int = 0
    network_rounds: int = 0
    details: dict[str, Any] = field(default_factory=dict)


class FunctionModule(ABC):
    """A provider-supplied function evaluated jointly with the client."""

    name: str = "abstract"

    @abstractmethod
    def process_email(self, message: EmailMessage) -> ModuleRunResult:
        """Run the module's protocol over one decrypted email."""

    def process_emails(self, messages: Sequence[EmailMessage]) -> list[ModuleRunResult]:
        """Run the module over a batch of decrypted emails.

        The default runs the per-email protocol sequentially.  Modules whose
        provider half supports the multi-user serving loop
        (:mod:`repro.core.runtime`) override this to run the batch as
        concurrent sessions with cross-session batched decrypts.
        """
        return [self.process_email(message) for message in messages]

    def client_storage_bytes(self) -> int:
        """Client-side storage this module requires (encrypted models, indexes)."""
        return 0

    def setup_network_bytes(self) -> int:
        """One-time setup-phase transfer (encrypted model shipping)."""
        return 0
