"""Client-side keyword search (§5, Fig. 15)."""

from repro.search.index import KeywordSearchIndex

__all__ = ["KeywordSearchIndex"]
