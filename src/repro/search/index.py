"""Client-side inverted index for keyword search (§5 of the paper).

Pretzel's keyword-search module is "a simple existence proof that the
provider's servers are not essential": the client maintains and queries a
local index over its decrypted email (the prototype uses SQLite FTS4; this
reproduction builds an inverted index with posting lists directly).  Fig. 15
reports, per corpus, the index size, the per-keyword query time and the
per-email update time; :class:`KeywordSearchIndex` exposes all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.classify.features import tokenize
from repro.exceptions import SearchIndexError


@dataclass
class KeywordSearchIndex:
    """Inverted index: token -> sorted list of document ids."""

    _postings: dict[str, list[int]] = field(default_factory=dict)
    _documents: dict[int, int] = field(default_factory=dict)  # doc id -> token count
    _next_id: int = 0

    # -- updates -----------------------------------------------------------
    def add_document(self, text: str, document_id: int | None = None) -> int:
        """Index one email; returns its document id (Fig. 15 "update time")."""
        if document_id is None:
            document_id = self._next_id
            self._next_id += 1
        elif document_id in self._documents:
            raise SearchIndexError(f"document id {document_id} is already indexed")
        else:
            self._next_id = max(self._next_id, document_id + 1)
        tokens = tokenize(text)
        self._documents[document_id] = len(tokens)
        for token in set(tokens):
            postings = self._postings.setdefault(token, [])
            postings.append(document_id)
        return document_id

    def remove_document(self, document_id: int) -> None:
        """Remove a document from the index (e.g. email deleted)."""
        if document_id not in self._documents:
            raise SearchIndexError(f"document id {document_id} is not indexed")
        del self._documents[document_id]
        empty_tokens = []
        for token, postings in self._postings.items():
            if document_id in postings:
                postings.remove(document_id)
                if not postings:
                    empty_tokens.append(token)
        for token in empty_tokens:
            del self._postings[token]

    # -- queries -------------------------------------------------------------
    def query(self, keyword: str) -> list[int]:
        """Document ids containing *keyword* (Fig. 15 "query time")."""
        normalized = tokenize(keyword)
        if len(normalized) != 1:
            raise SearchIndexError("query() takes exactly one keyword; use query_all/query_any")
        return sorted(self._postings.get(normalized[0], []))

    def query_all(self, phrase: str) -> list[int]:
        """Documents containing *every* keyword in *phrase* (AND semantics)."""
        tokens = tokenize(phrase)
        if not tokens:
            return []
        result: set[int] | None = None
        for token in tokens:
            postings = set(self._postings.get(token, []))
            result = postings if result is None else (result & postings)
            if not result:
                return []
        return sorted(result or [])

    def query_any(self, phrase: str) -> list[int]:
        """Documents containing *any* keyword in *phrase* (OR semantics)."""
        tokens = tokenize(phrase)
        result: set[int] = set()
        for token in tokens:
            result.update(self._postings.get(token, []))
        return sorted(result)

    # -- accounting ----------------------------------------------------------------
    def document_count(self) -> int:
        return len(self._documents)

    def vocabulary_size(self) -> int:
        return len(self._postings)

    def size_bytes(self) -> int:
        """Approximate on-disk size: tokens plus 4-byte postings (Fig. 15 "index size")."""
        token_bytes = sum(len(token.encode("utf-8")) + 8 for token in self._postings)
        posting_bytes = sum(4 * len(postings) for postings in self._postings.values())
        document_bytes = 12 * len(self._documents)
        return token_bytes + posting_bytes + document_bytes
