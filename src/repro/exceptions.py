"""Exception hierarchy for the Pretzel reproduction.

All library errors derive from :class:`PretzelError` so callers can catch a
single base class.  Subsystems raise the most specific subclass available;
errors carry human-readable messages and never swallow the underlying cause.
"""

from __future__ import annotations


class PretzelError(Exception):
    """Base class for every error raised by this library."""


class ParameterError(PretzelError, ValueError):
    """A configuration or cryptographic parameter is invalid."""


class CryptoError(PretzelError):
    """Base class for cryptographic failures."""


class KeyError_(CryptoError):
    """A key is malformed, missing, or does not match its parameters."""


class DecryptionError(CryptoError):
    """Ciphertext failed to decrypt (wrong key, corrupted data, noise overflow)."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class IntegrityError(CryptoError):
    """A MAC or authenticated-encryption tag failed to verify."""


class NoiseBudgetExceeded(DecryptionError):
    """Homomorphic noise grew beyond what the ciphertext modulus can absorb."""


class PackingError(PretzelError, ValueError):
    """Packed plaintext layout is inconsistent (overflow, misaligned rows, ...)."""


class ProtocolError(PretzelError):
    """A two-party protocol received an out-of-order or malformed message."""


class ProtocolAbort(ProtocolError):
    """A party detected misbehaviour and aborted the protocol."""


class WireFormatError(ProtocolError):
    """A serialized protocol frame is malformed, truncated, or mis-versioned."""


class TransportClosedError(ProtocolError):
    """The transport (or its peer) closed; no further frames can move."""


class TransportTimeoutError(ProtocolError):
    """No frame arrived within the receive deadline (the peer may be silent)."""


class ReliabilityError(ProtocolError):
    """The ack/retransmit layer exhausted its retries without making progress."""


class SnapshotError(ProtocolError):
    """A session cannot be snapshotted or restored at its current position."""


class CircuitError(PretzelError, ValueError):
    """A boolean circuit is malformed or used inconsistently."""


class OTError(ProtocolError):
    """Oblivious-transfer sub-protocol failure."""


class ReplayError(ProtocolError):
    """A duplicate or replayed email was detected (§4.4 of the paper)."""


class MailError(PretzelError):
    """Errors in the simulated mail substrate (delivery, mailbox, parsing)."""


class ClassifierError(PretzelError):
    """A classifier was used before training or with inconsistent shapes."""


class DatasetError(PretzelError):
    """Synthetic corpus generation or loading failed."""


class SearchIndexError(PretzelError):
    """Keyword-search index failure."""
