"""Microbenchmark constants and workload parameters for the cost model.

Fig. 3 of the paper expresses every cost of NoPriv, Baseline and Pretzel as a
formula over a handful of per-operation constants (Fig. 6) and workload
parameters (N, N', B, B', L, bin, fin, email size).  This module holds both:

* :class:`MicrobenchmarkConstants` defaults to the paper's measured values
  (EC2 m3.2xlarge) and can alternatively be measured on the local machine via
  :meth:`MicrobenchmarkConstants.measure_local`, which times this library's
  own implementations — that is what ``benchmarks/bench_fig06`` does;
* :class:`WorkloadParameters` captures the paper's sweep axes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

from repro.exceptions import ParameterError


@dataclass
class MicrobenchmarkConstants:
    """Per-operation costs.  Times are seconds; sizes are bytes (Fig. 6)."""

    # GPG / e2e module
    gpg_encrypt_seconds: float = 1.7e-3
    gpg_decrypt_seconds: float = 1.3e-3
    # Paillier
    paillier_encrypt_seconds: float = 2.5e-3
    paillier_decrypt_seconds: float = 0.7e-3
    paillier_add_seconds: float = 7e-6
    paillier_ciphertext_bytes: int = 256
    # XPIR-BV
    xpir_encrypt_seconds: float = 103e-6
    xpir_decrypt_seconds: float = 31e-6
    xpir_add_seconds: float = 3e-6
    xpir_shift_add_seconds: float = 70e-6
    xpir_ciphertext_bytes: int = 16 * 1024
    xpir_slots: int = 1024
    # Yao (per b-bit input value)
    yao_compare_seconds: float = 71e-6
    yao_compare_bytes: int = 2501
    yao_argmax_seconds_per_input: float = 70e-6
    yao_argmax_bytes_per_input: int = 3959
    # NoPriv plaintext operations
    lookup_seconds: float = 0.17e-6
    float_add_seconds: float = 0.001e-6
    feature_extract_seconds: float = 0.17e-6

    def with_overrides(self, **overrides: float) -> "MicrobenchmarkConstants":
        return replace(self, **overrides)

    @classmethod
    def paper_values(cls) -> "MicrobenchmarkConstants":
        """The constants exactly as reported in Fig. 6."""
        return cls()

    @classmethod
    def measure_local(cls, quick: bool = True) -> "MicrobenchmarkConstants":
        """Measure the constants using this library's implementations.

        ``quick`` keeps repetition counts small so the measurement finishes in
        a few seconds; the Fig. 6 bench uses larger counts via pytest-benchmark.
        """
        # Imported lazily to keep the cost model importable without NumPy work.
        from repro.crypto.bv import BVScheme
        from repro.crypto.paillier import PaillierScheme

        repetitions = 3 if quick else 20
        bv = BVScheme()
        bv_keys = bv.generate_keypair()
        sample = list(range(16))
        start = time.perf_counter()
        for _ in range(repetitions):
            ciphertext = bv.encrypt_slots(bv_keys.public, sample)
        xpir_encrypt = (time.perf_counter() - start) / repetitions
        start = time.perf_counter()
        for _ in range(repetitions):
            bv.decrypt_slots(bv_keys, ciphertext)
        xpir_decrypt = (time.perf_counter() - start) / repetitions
        other = bv.encrypt_slots(bv_keys.public, sample)
        start = time.perf_counter()
        for _ in range(repetitions):
            bv.add(ciphertext, other)
        xpir_add = (time.perf_counter() - start) / repetitions
        start = time.perf_counter()
        for _ in range(repetitions):
            bv.add(ciphertext, bv.shift_up(other, 2))
        xpir_shift_add = (time.perf_counter() - start) / repetitions

        paillier = PaillierScheme(modulus_bits=1024, slot_bits=32)
        paillier_keys = paillier.generate_keypair()
        start = time.perf_counter()
        for _ in range(repetitions):
            pail_ct = paillier.encrypt_slots(paillier_keys.public, sample)
        paillier_encrypt = (time.perf_counter() - start) / repetitions
        start = time.perf_counter()
        for _ in range(repetitions):
            paillier.decrypt_slots(paillier_keys, pail_ct)
        paillier_decrypt = (time.perf_counter() - start) / repetitions
        pail_other = paillier.encrypt_slots(paillier_keys.public, sample)
        start = time.perf_counter()
        for _ in range(repetitions):
            paillier.add(pail_ct, pail_other)
        paillier_add = (time.perf_counter() - start) / repetitions

        return cls(
            paillier_encrypt_seconds=paillier_encrypt,
            paillier_decrypt_seconds=paillier_decrypt,
            paillier_add_seconds=paillier_add,
            paillier_ciphertext_bytes=paillier.ciphertext_size_bytes(),
            xpir_encrypt_seconds=xpir_encrypt,
            xpir_decrypt_seconds=xpir_decrypt,
            xpir_add_seconds=xpir_add,
            xpir_shift_add_seconds=xpir_shift_add,
            xpir_ciphertext_bytes=bv.ciphertext_size_bytes(),
            xpir_slots=bv.num_slots,
        )


@dataclass
class WorkloadParameters:
    """The paper's workload axes (Fig. 3 symbols in parentheses)."""

    model_features: int = 5_000_000          # N
    selected_features: int | None = None     # N' (after feature selection, §4.3)
    categories: int = 2                      # B
    candidate_topics: int | None = None      # B' (None means B, i.e. no decomposition)
    email_features: int = 692                # L (average in the authors' Gmail data)
    email_bytes: int = 75 * 1024             # sz_email (average email size)
    value_bits: int = 10                     # bin
    frequency_bits: int = 4                  # fin

    def __post_init__(self) -> None:
        if self.model_features <= 0 or self.categories < 2 or self.email_features <= 0:
            raise ParameterError("workload parameters must be positive (and B >= 2)")
        if self.selected_features is not None and self.selected_features > self.model_features:
            raise ParameterError("N' cannot exceed N")
        if self.candidate_topics is not None and not 1 <= self.candidate_topics <= self.categories:
            raise ParameterError("B' must lie in [1, B]")

    @property
    def effective_features(self) -> int:
        """N' if feature selection is applied, else N."""
        return self.selected_features if self.selected_features is not None else self.model_features

    @property
    def effective_candidates(self) -> int:
        """B' if decomposition is applied, else B."""
        return self.candidate_topics if self.candidate_topics is not None else self.categories

    @property
    def dot_product_bits(self) -> int:
        """Fig. 3's ``b = log L + bin + fin``."""
        return math.ceil(math.log2(self.email_features + 1)) + self.value_bits + self.frequency_bits

    @classmethod
    def spam_default(cls) -> "WorkloadParameters":
        """Spam filtering at the paper's headline scale (N = 5M, B = 2, L = 692)."""
        return cls()

    @classmethod
    def topics_default(cls) -> "WorkloadParameters":
        """Topic extraction at the paper's headline scale (B = 2048, B' = 20)."""
        return cls(
            model_features=100_000,
            categories=2048,
            candidate_topics=20,
            email_features=692,
        )
