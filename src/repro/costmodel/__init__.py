"""Analytic cost model (Fig. 3) and microbenchmark constants (Fig. 6)."""

from repro.costmodel.params import MicrobenchmarkConstants, WorkloadParameters
from repro.costmodel.estimates import CostEstimate, estimate_baseline, estimate_noprv, estimate_pretzel

__all__ = [
    "MicrobenchmarkConstants",
    "WorkloadParameters",
    "CostEstimate",
    "estimate_noprv",
    "estimate_baseline",
    "estimate_pretzel",
]
