"""The analytic cost model of Fig. 3.

For each arm (NoPriv / Baseline / Pretzel) and each cost (provider CPU,
client CPU, network, client storage — setup and per-email), these functions
evaluate the formulas of Fig. 3 with the microbenchmark constants of Fig. 6.
The benchmark harness uses them both to print the Fig. 3 table and to
extrapolate the scaled-down measured runs to the paper's headline parameters
(N = 5M features, B = 2048 topics) in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.costmodel.params import MicrobenchmarkConstants, WorkloadParameters


@dataclass
class CostEstimate:
    """Setup and per-email costs of one arm, in seconds/bytes."""

    arm: str
    setup_provider_seconds: float = 0.0
    setup_network_bytes: int = 0
    client_storage_bytes: int = 0
    email_provider_seconds: float = 0.0
    email_client_seconds: float = 0.0
    email_network_bytes: int = 0

    def as_row(self) -> dict[str, float]:
        return {
            "arm": self.arm,
            "setup_provider_s": self.setup_provider_seconds,
            "setup_network_MB": self.setup_network_bytes / 1e6,
            "client_storage_MB": self.client_storage_bytes / 1e6,
            "email_provider_ms": self.email_provider_seconds * 1e3,
            "email_client_ms": self.email_client_seconds * 1e3,
            "email_network_KB": self.email_network_bytes / 1e3,
        }


def _paillier_slots(constants: MicrobenchmarkConstants, workload: WorkloadParameters) -> int:
    """Fig. 3's ``p_pail``: b-bit fields packable in one Paillier plaintext."""
    plaintext_bits = constants.paillier_ciphertext_bytes * 8 // 2  # |N| = half the ciphertext
    return max(1, plaintext_bits // workload.dot_product_bits)


def estimate_noprv(
    constants: MicrobenchmarkConstants, workload: WorkloadParameters
) -> CostEstimate:
    """Non-private arm: the provider classifies plaintext locally (Fig. 3 col. 1)."""
    per_email = (
        workload.email_features * (constants.feature_extract_seconds + constants.lookup_seconds)
        + workload.email_features * workload.categories * constants.float_add_seconds
    )
    return CostEstimate(
        arm="noprv",
        email_provider_seconds=per_email,
        email_network_bytes=workload.email_bytes,
    )


def estimate_baseline(
    constants: MicrobenchmarkConstants, workload: WorkloadParameters
) -> CostEstimate:
    """Baseline arm (§3.3): Paillier + GLLM within-row packing + Yao over all B."""
    rows = workload.model_features + 1
    p_pail = _paillier_slots(constants, workload)
    beta = math.ceil(workload.categories / p_pail)
    setup_provider = rows * beta * constants.paillier_encrypt_seconds
    storage = rows * beta * constants.paillier_ciphertext_bytes
    yao_inputs = workload.categories
    per_input_seconds = (
        constants.yao_compare_seconds if workload.categories == 2 else constants.yao_argmax_seconds_per_input
    )
    per_input_bytes = (
        constants.yao_compare_bytes if workload.categories == 2 else constants.yao_argmax_bytes_per_input
    )
    email_provider = beta * constants.paillier_decrypt_seconds + yao_inputs * per_input_seconds
    email_client = (
        workload.email_features * beta * constants.paillier_add_seconds
        + beta * constants.paillier_encrypt_seconds
        + yao_inputs * per_input_seconds
    )
    email_network = (
        workload.email_bytes
        + beta * constants.paillier_ciphertext_bytes
        + yao_inputs * per_input_bytes
    )
    return CostEstimate(
        arm="baseline",
        setup_provider_seconds=setup_provider,
        setup_network_bytes=storage,
        client_storage_bytes=storage,
        email_provider_seconds=email_provider,
        email_client_seconds=email_client,
        email_network_bytes=email_network,
    )


def estimate_pretzel(
    constants: MicrobenchmarkConstants, workload: WorkloadParameters
) -> CostEstimate:
    """Pretzel arm (§4.1–§4.3): XPIR-BV + across-row packing + decomposition."""
    rows = workload.effective_features + 1
    p = constants.xpir_slots
    b_categories = workload.categories
    b_prime = workload.effective_candidates
    full_segments = b_categories // p
    leftover = b_categories % p
    # Setup: one ciphertext per row per full segment, plus across-row packed
    # ciphertexts for the leftover columns (Fig. 3's beta'_xpir term).
    leftover_ciphertexts = 0
    if leftover:
        rows_per_ciphertext = max(1, p // leftover)
        leftover_ciphertexts = math.ceil(rows / rows_per_ciphertext)
    total_model_ciphertexts = rows * full_segments + leftover_ciphertexts
    setup_provider = total_model_ciphertexts * constants.xpir_encrypt_seconds
    storage = total_model_ciphertexts * constants.xpir_ciphertext_bytes

    # Per email, client side: one shift-and-add per email feature touching the
    # across-row packed part, plus plain adds for full segments, plus the
    # blinding encryptions and its half of Yao.
    decomposed = workload.candidate_topics is not None and b_prime < b_categories
    result_ciphertexts = full_segments + (1 if leftover else 0)
    blinding_ciphertexts = b_prime if decomposed else result_ciphertexts
    per_input_seconds = (
        constants.yao_compare_seconds if b_categories == 2 else constants.yao_argmax_seconds_per_input
    )
    per_input_bytes = (
        constants.yao_compare_bytes if b_categories == 2 else constants.yao_argmax_bytes_per_input
    )
    yao_inputs = 2 if b_categories == 2 else b_prime
    email_client = (
        workload.email_features * full_segments * constants.xpir_add_seconds
        + (workload.email_features if leftover else 0) * constants.xpir_shift_add_seconds
        + (b_prime if decomposed else 0) * constants.xpir_shift_add_seconds
        + blinding_ciphertexts * constants.xpir_encrypt_seconds
        + yao_inputs * per_input_seconds
    )
    email_provider = blinding_ciphertexts * constants.xpir_decrypt_seconds + yao_inputs * per_input_seconds
    email_network = (
        workload.email_bytes
        + blinding_ciphertexts * constants.xpir_ciphertext_bytes
        + yao_inputs * per_input_bytes
    )
    return CostEstimate(
        arm="pretzel",
        setup_provider_seconds=setup_provider,
        setup_network_bytes=storage,
        client_storage_bytes=storage,
        email_provider_seconds=email_provider,
        email_client_seconds=email_client,
        email_network_bytes=email_network,
    )


def estimate_all(
    constants: MicrobenchmarkConstants, workload: WorkloadParameters
) -> list[CostEstimate]:
    """All three arms for one workload (a full Fig. 3 column set)."""
    return [
        estimate_noprv(constants, workload),
        estimate_baseline(constants, workload),
        estimate_pretzel(constants, workload),
    ]


def format_table(estimates: list[CostEstimate]) -> str:
    """Human-readable Fig. 3-style table (used by benches and examples)."""
    header = (
        f"{'arm':<10} {'setup prov (s)':>15} {'storage (MB)':>13} "
        f"{'email prov (ms)':>16} {'email client (ms)':>18} {'email net (KB)':>15}"
    )
    lines = [header, "-" * len(header)]
    for estimate in estimates:
        row = estimate.as_row()
        lines.append(
            f"{row['arm']:<10} {row['setup_provider_s']:>15.2f} {row['client_storage_MB']:>13.1f} "
            f"{row['email_provider_ms']:>16.3f} {row['email_client_ms']:>18.3f} {row['email_network_KB']:>15.1f}"
        )
    return "\n".join(lines)
