"""Synthetic corpora standing in for the paper's evaluation datasets.

The paper evaluates on Ling-spam, Enron, and a Gmail inbox for spam filtering
and on 20 Newsgroups, Reuters-21578 and RCV1 for topic extraction (§6).
Those corpora cannot be redistributed with this reproduction, so
:mod:`repro.datasets.corpora` generates synthetic corpora with the same
*structure*: a shared Zipfian background vocabulary plus per-category topical
vocabulary, document-length and class-balance parameters modelled on each
original dataset (scaled down so benches run in seconds).  See DESIGN.md for
the substitution rationale.
"""

from repro.datasets.corpora import (
    LabeledCorpus,
    SyntheticCorpusSpec,
    enron_like,
    generate_corpus,
    gmail_like,
    lingspam_like,
    newsgroups20_like,
    rcv1_like,
    reuters_like,
)
from repro.datasets.loader import prepare_classification_data, train_test_split

__all__ = [
    "LabeledCorpus",
    "SyntheticCorpusSpec",
    "generate_corpus",
    "lingspam_like",
    "enron_like",
    "gmail_like",
    "newsgroups20_like",
    "reuters_like",
    "rcv1_like",
    "train_test_split",
    "prepare_classification_data",
]
