"""Synthetic corpus generation.

Each corpus is produced from a :class:`SyntheticCorpusSpec`: a shared
background vocabulary with Zipfian frequencies (as in natural language) plus,
per category, a pool of *topical* words that appear with elevated probability
in that category's documents.  Spam corpora are simply two-category corpora
whose "spam" class has its own topical pool (free/viagra/lottery-style tokens
in a real corpus; synthetic tokens here).

The named factories (``lingspam_like`` etc.) fix parameters — class balance,
document counts, document lengths, vocabulary size — to scaled-down analogues
of the datasets in §6 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DatasetError
from repro.utils.rand import DeterministicRandom


@dataclass
class SyntheticCorpusSpec:
    """Parameters controlling corpus generation."""

    name: str
    category_names: list[str]
    documents_per_category: list[int]
    vocabulary_size: int = 5000
    topical_words_per_category: int = 150
    topical_probability: float = 0.35
    mean_document_length: int = 120
    length_jitter: float = 0.5
    zipf_exponent: float = 1.2
    seed: int = 2017

    def __post_init__(self) -> None:
        if len(self.category_names) != len(self.documents_per_category):
            raise DatasetError("category_names and documents_per_category lengths differ")
        if len(self.category_names) < 2:
            raise DatasetError("a corpus needs at least two categories")
        if self.vocabulary_size < 10 * len(self.category_names):
            raise DatasetError("vocabulary too small for the number of categories")


@dataclass
class LabeledCorpus:
    """Generated documents with integer labels."""

    name: str
    documents: list[str]
    labels: list[int]
    category_names: list[str]

    def __len__(self) -> int:
        return len(self.documents)

    def category_count(self) -> int:
        return len(self.category_names)

    def subset(self, indices: list[int]) -> "LabeledCorpus":
        return LabeledCorpus(
            name=self.name,
            documents=[self.documents[i] for i in indices],
            labels=[self.labels[i] for i in indices],
            category_names=list(self.category_names),
        )


def _word(index: int) -> str:
    return f"w{index:06d}"


def generate_corpus(spec: SyntheticCorpusSpec) -> LabeledCorpus:
    """Generate a labeled corpus from a spec (deterministic for a given seed)."""
    rng = DeterministicRandom(spec.seed, label=f"corpus/{spec.name}")
    num_categories = len(spec.category_names)
    # Partition part of the vocabulary into per-category topical pools; the
    # remainder is the shared background.
    topical_total = spec.topical_words_per_category * num_categories
    if topical_total >= spec.vocabulary_size:
        raise DatasetError("topical pools exceed the vocabulary size")
    topical_pools = []
    for category in range(num_categories):
        start = category * spec.topical_words_per_category
        pool = list(range(start, start + spec.topical_words_per_category))
        topical_pools.append(pool)
    background_start = topical_total
    background_size = spec.vocabulary_size - background_start

    documents: list[str] = []
    labels: list[int] = []
    for category, count in enumerate(spec.documents_per_category):
        pool = topical_pools[category]
        category_rng = rng.fork(f"category-{category}")
        for _ in range(count):
            length = max(
                5,
                int(
                    spec.mean_document_length
                    * (1.0 + spec.length_jitter * (category_rng.random() * 2.0 - 1.0))
                ),
            )
            words = []
            for _ in range(length):
                if category_rng.random() < spec.topical_probability:
                    words.append(_word(category_rng.choice(pool)))
                else:
                    background_index = category_rng.zipf_index(
                        background_size, spec.zipf_exponent
                    )
                    words.append(_word(background_start + background_index))
            documents.append(" ".join(words))
            labels.append(category)
    # Shuffle so train/test splits are class-balanced without stratification.
    order = list(range(len(documents)))
    rng.shuffle(order)
    return LabeledCorpus(
        name=spec.name,
        documents=[documents[i] for i in order],
        labels=[labels[i] for i in order],
        category_names=list(spec.category_names),
    )


# ---------------------------------------------------------------------------
# Named corpora: scaled-down analogues of the paper's datasets (§6)
# ---------------------------------------------------------------------------
def lingspam_like(scale: float = 1.0, seed: int = 2017) -> LabeledCorpus:
    """Ling-spam analogue: 481 spam / 2411 ham in the paper; scaled down here."""
    spam = max(20, int(96 * scale))
    ham = max(60, int(480 * scale))
    return generate_corpus(
        SyntheticCorpusSpec(
            name="lingspam-like",
            category_names=["ham", "spam"],
            documents_per_category=[ham, spam],
            vocabulary_size=4000,
            topical_words_per_category=200,
            topical_probability=0.30,
            mean_document_length=180,
            seed=seed,
        )
    )


def enron_like(scale: float = 1.0, seed: int = 2018) -> LabeledCorpus:
    """Enron analogue: roughly balanced spam/ham (17k/16.5k in the paper)."""
    spam = max(40, int(200 * scale))
    ham = max(40, int(200 * scale))
    return generate_corpus(
        SyntheticCorpusSpec(
            name="enron-like",
            category_names=["ham", "spam"],
            documents_per_category=[ham, spam],
            vocabulary_size=6000,
            topical_words_per_category=250,
            topical_probability=0.28,
            mean_document_length=150,
            seed=seed,
        )
    )


def gmail_like(scale: float = 1.0, seed: int = 2019) -> LabeledCorpus:
    """Gmail-inbox analogue: 355 spam / 600 ham in the paper."""
    spam = max(30, int(71 * scale))
    ham = max(40, int(120 * scale))
    return generate_corpus(
        SyntheticCorpusSpec(
            name="gmail-like",
            category_names=["ham", "spam"],
            documents_per_category=[ham, spam],
            vocabulary_size=5000,
            topical_words_per_category=180,
            topical_probability=0.32,
            mean_document_length=130,
            seed=seed,
        )
    )


def newsgroups20_like(scale: float = 1.0, seed: int = 2020) -> LabeledCorpus:
    """20 Newsgroups analogue: 20 topics (18,846 posts in the paper)."""
    per_topic = max(15, int(47 * scale))
    names = [f"newsgroup-{index:02d}" for index in range(20)]
    return generate_corpus(
        SyntheticCorpusSpec(
            name="20news-like",
            category_names=names,
            documents_per_category=[per_topic] * 20,
            vocabulary_size=8000,
            topical_words_per_category=120,
            topical_probability=0.33,
            mean_document_length=140,
            seed=seed,
        )
    )


def reuters_like(scale: float = 1.0, seed: int = 2021) -> LabeledCorpus:
    """Reuters-21578 analogue: many topics with skewed sizes (90 topics in the paper)."""
    num_topics = 30
    rng = DeterministicRandom(seed, label="reuters-sizes")
    sizes = [max(8, int((60 - index) * scale)) for index in range(num_topics)]
    rng.shuffle(sizes)
    names = [f"reuters-{index:02d}" for index in range(num_topics)]
    return generate_corpus(
        SyntheticCorpusSpec(
            name="reuters-like",
            category_names=names,
            documents_per_category=sizes,
            vocabulary_size=9000,
            topical_words_per_category=100,
            topical_probability=0.34,
            mean_document_length=110,
            seed=seed,
        )
    )


def rcv1_like(scale: float = 1.0, num_topics: int = 40, seed: int = 2022) -> LabeledCorpus:
    """RCV1 analogue: large multi-topic newswire corpus (806k stories, 296 regions).

    The reproduction's Fig. 14 sweep uses this corpus; *num_topics* and
    *scale* keep the run time reasonable while preserving the many-category
    structure the decomposed-classification experiment needs.
    """
    per_topic = max(12, int(40 * scale))
    names = [f"rcv1-{index:03d}" for index in range(num_topics)]
    return generate_corpus(
        SyntheticCorpusSpec(
            name="rcv1-like",
            category_names=names,
            documents_per_category=[per_topic] * num_topics,
            vocabulary_size=12000,
            topical_words_per_category=90,
            topical_probability=0.32,
            mean_document_length=120,
            seed=seed,
        )
    )
