"""Train/test splitting and feature-extraction pipelines for the corpora."""

from __future__ import annotations

from dataclasses import dataclass

from repro.classify.features import FeatureExtractor, SparseVector
from repro.datasets.corpora import LabeledCorpus
from repro.exceptions import DatasetError
from repro.utils.rand import DeterministicRandom


def train_test_split(
    corpus: LabeledCorpus, train_fraction: float = 0.7, seed: int = 13
) -> tuple[LabeledCorpus, LabeledCorpus]:
    """Random split into train and test subsets."""
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError("train_fraction must be strictly between 0 and 1")
    rng = DeterministicRandom(seed, label=f"split/{corpus.name}")
    order = list(range(len(corpus)))
    rng.shuffle(order)
    cut = int(round(train_fraction * len(order)))
    if cut == 0 or cut == len(order):
        raise DatasetError("split produced an empty train or test set")
    return corpus.subset(order[:cut]), corpus.subset(order[cut:])


@dataclass
class ClassificationData:
    """A corpus turned into sparse feature vectors ready for training."""

    extractor: FeatureExtractor
    train_vectors: list[SparseVector]
    train_labels: list[int]
    test_vectors: list[SparseVector]
    test_labels: list[int]
    category_names: list[str]

    @property
    def num_features(self) -> int:
        return self.extractor.num_features

    @property
    def num_categories(self) -> int:
        return len(self.category_names)


def prepare_classification_data(
    corpus: LabeledCorpus,
    train_fraction: float = 0.7,
    max_features: int | None = None,
    boolean: bool = False,
    seed: int = 13,
) -> ClassificationData:
    """Split a corpus, fit a vocabulary on the training half, vectorise both halves."""
    train, test = train_test_split(corpus, train_fraction=train_fraction, seed=seed)
    extractor = FeatureExtractor(max_features=max_features).fit(train.documents)
    return ClassificationData(
        extractor=extractor,
        train_vectors=extractor.transform_many(train.documents, boolean=boolean),
        train_labels=list(train.labels),
        test_vectors=extractor.transform_many(test.documents, boolean=boolean),
        test_labels=list(test.labels),
        category_names=list(corpus.category_names),
    )
