"""Linear support-vector machines (Pegasos-style SGD training).

The paper uses two-class SVM for spam and one-versus-all SVM for topic
extraction (§3.1).  At application time an SVM is just another linear model,
so both trainers export :class:`repro.classify.model.LinearModel` like the
other classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.classify.model import LinearModel
from repro.exceptions import ClassifierError

SparseVector = Mapping[int, int]


@dataclass
class LinearSVM:
    """Two-class linear SVM with hinge loss (label 1 = positive/spam)."""

    num_features: int
    regularization: float = 1e-4
    epochs: int = 10
    seed: int = 3
    category_names: list[str] = field(default_factory=lambda: ["spam", "ham"])
    _weights: np.ndarray | None = None
    _bias: float = 0.0

    def fit(self, documents: Sequence[SparseVector], labels: Sequence[int]) -> "LinearSVM":
        if len(documents) != len(labels):
            raise ClassifierError("documents and labels must have the same length")
        weights = np.zeros(self.num_features, dtype=np.float64)
        bias = 0.0
        order = np.arange(len(documents))
        rng = np.random.default_rng(self.seed)
        step = 0
        for _ in range(self.epochs):
            rng.shuffle(order)
            for position in order:
                step += 1
                # Pegasos step size with a warm-up offset so the first updates
                # do not blow the weights up before the 1/t decay kicks in.
                rate = 1.0 / (self.regularization * (step + 100))
                document = documents[position]
                target = 1.0 if labels[position] == 1 else -1.0
                margin = target * (
                    bias
                    + sum(
                        count * weights[index]
                        for index, count in document.items()
                        if 0 <= index < self.num_features
                    )
                )
                weights *= 1.0 - rate * self.regularization
                if margin < 1.0:
                    for index, count in document.items():
                        if 0 <= index < self.num_features:
                            weights[index] += rate * target * count
                    bias += rate * target
        self._weights = weights
        self._bias = bias
        return self

    def predict_is_spam(self, document: SparseVector) -> bool:
        if self._weights is None:
            raise ClassifierError("classifier must be fitted first")
        score = self._bias + sum(
            count * self._weights[index]
            for index, count in document.items()
            if 0 <= index < self.num_features
        )
        return score > 0.0

    def to_linear_model(self) -> LinearModel:
        if self._weights is None:
            raise ClassifierError("classifier must be fitted first")
        weights = np.stack([self._weights, np.zeros_like(self._weights)], axis=1)
        biases = np.array([self._bias, 0.0])
        return LinearModel(weights=weights, biases=biases, category_names=list(self.category_names))


@dataclass
class OneVsAllSVM:
    """One-versus-all linear SVM for multi-category classification."""

    num_features: int
    num_categories: int
    regularization: float = 1e-2
    epochs: int = 8
    seed: int = 5
    category_names: list[str] = field(default_factory=list)
    _weights: np.ndarray | None = None   # (num_features, num_categories)
    _biases: np.ndarray | None = None

    def fit(self, documents: Sequence[SparseVector], labels: Sequence[int]) -> "OneVsAllSVM":
        if len(documents) != len(labels):
            raise ClassifierError("documents and labels must have the same length")
        if max(labels, default=0) >= self.num_categories:
            raise ClassifierError("a label exceeds num_categories")
        if not self.category_names:
            self.category_names = [f"category-{index}" for index in range(self.num_categories)]
        weights = np.zeros((self.num_features, self.num_categories), dtype=np.float64)
        biases = np.zeros(self.num_categories, dtype=np.float64)
        order = np.arange(len(documents))
        rng = np.random.default_rng(self.seed)
        step = 0
        for _ in range(self.epochs):
            rng.shuffle(order)
            for position in order:
                step += 1
                rate = 1.0 / (self.regularization * (step + 100))
                document = documents[position]
                label = labels[position]
                indices = [index for index in document if 0 <= index < self.num_features]
                counts = np.array([document[index] for index in indices], dtype=np.float64)
                targets = -np.ones(self.num_categories)
                targets[label] = 1.0
                scores = biases.copy()
                if indices:
                    scores += counts @ weights[indices, :]
                margins = targets * scores
                weights *= 1.0 - rate * self.regularization
                violating = margins < 1.0
                if violating.any():
                    update = rate * targets * violating
                    biases += update
                    if indices:
                        weights[indices, :] += np.outer(counts, update)
        self._weights = weights
        self._biases = biases
        return self

    def to_linear_model(self) -> LinearModel:
        if self._weights is None or self._biases is None:
            raise ClassifierError("classifier must be fitted first")
        return LinearModel(
            weights=self._weights.copy(),
            biases=self._biases.copy(),
            category_names=list(self.category_names),
        )

    def predict(self, document: SparseVector) -> int:
        return self.to_linear_model().predict(document)
