"""Evaluation metrics used by the paper's accuracy figures.

Fig. 9 reports accuracy, precision and recall for spam filtering; Fig. 13
reports accuracy under feature selection; Fig. 14 reports the fraction of
test documents whose true topic is contained in the B' candidate topics
("candidate recall" here).
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ClassifierError


def accuracy(predicted: Sequence[int], actual: Sequence[int]) -> float:
    """Fraction of predictions that match the ground truth."""
    if len(predicted) != len(actual):
        raise ClassifierError("prediction and truth lengths differ")
    if not predicted:
        raise ClassifierError("cannot compute accuracy of an empty set")
    correct = sum(1 for p, a in zip(predicted, actual) if p == a)
    return correct / len(predicted)


def precision_recall(
    predicted: Sequence[int], actual: Sequence[int], positive_label: int = 1
) -> tuple[float, float]:
    """Precision and recall for the positive (spam) class.

    Higher precision means fewer ham emails falsely flagged as spam; higher
    recall means fewer spam emails slipping through — the exact reading the
    paper gives under Fig. 9.
    """
    if len(predicted) != len(actual):
        raise ClassifierError("prediction and truth lengths differ")
    true_positive = sum(
        1 for p, a in zip(predicted, actual) if p == positive_label and a == positive_label
    )
    predicted_positive = sum(1 for p in predicted if p == positive_label)
    actual_positive = sum(1 for a in actual if a == positive_label)
    precision = true_positive / predicted_positive if predicted_positive else 1.0
    recall = true_positive / actual_positive if actual_positive else 1.0
    return precision, recall


def confusion_counts(
    predicted: Sequence[int], actual: Sequence[int], positive_label: int = 1
) -> dict[str, int]:
    """Binary confusion-matrix counts (tp / fp / tn / fn)."""
    if len(predicted) != len(actual):
        raise ClassifierError("prediction and truth lengths differ")
    counts = {"tp": 0, "fp": 0, "tn": 0, "fn": 0}
    for p, a in zip(predicted, actual):
        if p == positive_label and a == positive_label:
            counts["tp"] += 1
        elif p == positive_label:
            counts["fp"] += 1
        elif a == positive_label:
            counts["fn"] += 1
        else:
            counts["tn"] += 1
    return counts


def candidate_recall(candidate_lists: Sequence[Sequence[int]], actual: Sequence[int]) -> float:
    """Fraction of documents whose true category appears among the candidates.

    This is the quantity tabulated in Fig. 14: the public (client-side)
    classifier only has to put the true topic *somewhere* in its B'
    candidates for decomposed classification (§4.3) to preserve end-to-end
    accuracy.
    """
    if len(candidate_lists) != len(actual):
        raise ClassifierError("candidate list and truth lengths differ")
    if not actual:
        raise ClassifierError("cannot compute candidate recall of an empty set")
    hits = sum(1 for candidates, label in zip(candidate_lists, actual) if label in candidates)
    return hits / len(actual)
