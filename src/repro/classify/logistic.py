"""Logistic-regression classifiers trained with stochastic gradient descent.

The paper trains binary LR for spam and multinomial LR for topic extraction
with LIBLINEAR (§3.1, §5); here we train with plain SGD over sparse feature
vectors, which is sufficient because only the *shape* of the resulting linear
model matters to the secure protocols (the weights are just another matrix to
encrypt and dot against).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.classify.model import LinearModel
from repro.exceptions import ClassifierError

SparseVector = Mapping[int, int]


def _sigmoid(value: float) -> float:
    if value >= 0:
        z = math.exp(-value)
        return 1.0 / (1.0 + z)
    z = math.exp(value)
    return z / (1.0 + z)


@dataclass
class BinaryLogisticRegression:
    """Two-class logistic regression (label 1 = positive/spam)."""

    num_features: int
    learning_rate: float = 0.1
    l2_penalty: float = 1e-4
    epochs: int = 10
    seed: int = 7
    _weights: np.ndarray | None = None
    _bias: float = 0.0
    category_names: list[str] = field(default_factory=lambda: ["spam", "ham"])

    def fit(self, documents: Sequence[SparseVector], labels: Sequence[int]) -> "BinaryLogisticRegression":
        if len(documents) != len(labels):
            raise ClassifierError("documents and labels must have the same length")
        weights = np.zeros(self.num_features, dtype=np.float64)
        bias = 0.0
        order = np.arange(len(documents))
        rng = np.random.default_rng(self.seed)
        for epoch in range(self.epochs):
            rng.shuffle(order)
            rate = self.learning_rate / (1.0 + epoch)
            for position in order:
                document = documents[position]
                target = 1.0 if labels[position] == 1 else 0.0
                score = bias + sum(
                    count * weights[index]
                    for index, count in document.items()
                    if 0 <= index < self.num_features
                )
                error = _sigmoid(score) - target
                bias -= rate * error
                for index, count in document.items():
                    if 0 <= index < self.num_features:
                        gradient = error * count + self.l2_penalty * weights[index]
                        weights[index] -= rate * gradient
        self._weights = weights
        self._bias = bias
        return self

    def predict_is_spam(self, document: SparseVector) -> bool:
        if self._weights is None:
            raise ClassifierError("classifier must be fitted first")
        score = self._bias + sum(
            count * self._weights[index]
            for index, count in document.items()
            if 0 <= index < self.num_features
        )
        return score > 0.0

    def to_linear_model(self) -> LinearModel:
        """Two-column model: column 0 scores "spam", column 1 scores "ham".

        A single discriminant ``w·x + b`` maps onto the two-column form by
        putting the positive weights in the spam column and zeros in the ham
        column, so "spam wins" iff the discriminant is positive.
        """
        if self._weights is None:
            raise ClassifierError("classifier must be fitted first")
        weights = np.stack([self._weights, np.zeros_like(self._weights)], axis=1)
        biases = np.array([self._bias, 0.0])
        return LinearModel(weights=weights, biases=biases, category_names=list(self.category_names))


@dataclass
class MultinomialLogisticRegression:
    """Softmax regression over many categories (topic extraction)."""

    num_features: int
    num_categories: int
    learning_rate: float = 0.2
    l2_penalty: float = 1e-5
    epochs: int = 8
    seed: int = 11
    category_names: list[str] = field(default_factory=list)
    _weights: np.ndarray | None = None   # (num_features, num_categories)
    _biases: np.ndarray | None = None

    def fit(self, documents: Sequence[SparseVector], labels: Sequence[int]) -> "MultinomialLogisticRegression":
        if len(documents) != len(labels):
            raise ClassifierError("documents and labels must have the same length")
        if max(labels, default=0) >= self.num_categories:
            raise ClassifierError("a label exceeds num_categories")
        if not self.category_names:
            self.category_names = [f"category-{index}" for index in range(self.num_categories)]
        weights = np.zeros((self.num_features, self.num_categories), dtype=np.float64)
        biases = np.zeros(self.num_categories, dtype=np.float64)
        order = np.arange(len(documents))
        rng = np.random.default_rng(self.seed)
        for epoch in range(self.epochs):
            rng.shuffle(order)
            rate = self.learning_rate / (1.0 + epoch)
            for position in order:
                document = documents[position]
                label = labels[position]
                indices = [index for index in document if 0 <= index < self.num_features]
                counts = np.array([document[index] for index in indices], dtype=np.float64)
                scores = biases.copy()
                if indices:
                    scores += counts @ weights[indices, :]
                scores -= scores.max()
                probabilities = np.exp(scores)
                probabilities /= probabilities.sum()
                probabilities[label] -= 1.0  # gradient of cross-entropy wrt scores
                biases -= rate * probabilities
                if indices:
                    weights[indices, :] -= rate * (
                        np.outer(counts, probabilities) + self.l2_penalty * weights[indices, :]
                    )
        self._weights = weights
        self._biases = biases
        return self

    def to_linear_model(self) -> LinearModel:
        if self._weights is None or self._biases is None:
            raise ClassifierError("classifier must be fitted first")
        return LinearModel(
            weights=self._weights.copy(),
            biases=self._biases.copy(),
            category_names=list(self.category_names),
        )

    def predict(self, document: SparseVector) -> int:
        return self.to_linear_model().predict(document)
