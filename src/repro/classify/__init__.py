"""Linear classifiers for spam filtering and topic extraction (§3.1).

Pretzel is geared to linear classifiers: Naive Bayes (the Graham–Robinson
variant for spam and the multinomial variant for topics), logistic regression
and linear SVMs.  When applying a trained model they all reduce to the same
shape — per-category dot product of the email's feature vector with a weight
vector plus a bias, followed by a threshold (spam) or an argmax (topics) —
which is what lets the secure protocols of :mod:`repro.twopc` treat them
uniformly through :class:`repro.classify.model.LinearModel`.
"""

from repro.classify.features import FeatureExtractor, tokenize
from repro.classify.metrics import accuracy, candidate_recall, precision_recall
from repro.classify.model import LinearModel, QuantizedLinearModel
from repro.classify.naive_bayes import GrahamRobinsonNaiveBayes, MultinomialNaiveBayes
from repro.classify.logistic import BinaryLogisticRegression, MultinomialLogisticRegression
from repro.classify.svm import LinearSVM, OneVsAllSVM
from repro.classify.selection import chi_square_scores, select_features

__all__ = [
    "FeatureExtractor",
    "tokenize",
    "accuracy",
    "candidate_recall",
    "precision_recall",
    "LinearModel",
    "QuantizedLinearModel",
    "GrahamRobinsonNaiveBayes",
    "MultinomialNaiveBayes",
    "BinaryLogisticRegression",
    "MultinomialLogisticRegression",
    "LinearSVM",
    "OneVsAllSVM",
    "chi_square_scores",
    "select_features",
]
