"""Linear-model representation and fixed-point quantization.

Every classifier in :mod:`repro.classify` exports a :class:`LinearModel`:
a weight matrix with one row per feature and one column per category, plus a
bias per category.  Applying the model to a sparse feature vector is a
per-category dot product followed by argmax (topics) or a two-way comparison
(spam), matching expressions (1) and (2) of the paper.

The secure protocols compute over *integers*, so :class:`QuantizedLinearModel`
maps the float weights into ``bin``-bit non-negative integers with a single
global affine transform (same scale and offset for every entry).  Because the
transform is shared across categories, per-category scores are all transformed
by the same monotone map, so comparisons and argmaxes are preserved.  The
semantic width of a dot product is ``b = log2(L) + bin + fin`` bits — exactly
the budget the paper's packing analysis uses (Fig. 3, §4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ClassifierError, ParameterError

SparseVector = Mapping[int, int]


@dataclass
class LinearModel:
    """Float linear model: ``score_j(x) = Σ_i x_i · weights[i, j] + bias[j]``."""

    weights: np.ndarray          # shape (num_features, num_categories)
    biases: np.ndarray           # shape (num_categories,)
    category_names: list[str]

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        self.biases = np.asarray(self.biases, dtype=np.float64)
        if self.weights.ndim != 2:
            raise ClassifierError("weights must be a 2-D matrix")
        if self.weights.shape[1] != len(self.biases):
            raise ClassifierError("bias count must equal the number of categories")
        if len(self.category_names) != self.weights.shape[1]:
            raise ClassifierError("category name count must equal the number of categories")

    @property
    def num_features(self) -> int:
        return self.weights.shape[0]

    @property
    def num_categories(self) -> int:
        return self.weights.shape[1]

    def decision_scores(self, features: SparseVector) -> np.ndarray:
        """Per-category scores for a sparse feature vector."""
        scores = self.biases.copy()
        for index, count in features.items():
            if 0 <= index < self.num_features and count:
                scores += count * self.weights[index]
        return scores

    def predict(self, features: SparseVector) -> int:
        """Index of the highest-scoring category."""
        return int(np.argmax(self.decision_scores(features)))

    def predict_name(self, features: SparseVector) -> str:
        return self.category_names[self.predict(features)]

    def top_categories(self, features: SparseVector, count: int) -> list[int]:
        """Indices of the *count* highest-scoring categories (candidate topics, §4.3)."""
        scores = self.decision_scores(features)
        count = min(count, self.num_categories)
        order = np.argsort(scores)[::-1]
        return [int(index) for index in order[:count]]

    def restrict_features(self, keep_indices: Sequence[int]) -> "LinearModel":
        """Model over a reduced feature set (feature selection, §4.3)."""
        keep = list(keep_indices)
        return LinearModel(
            weights=self.weights[keep, :],
            biases=self.biases.copy(),
            category_names=list(self.category_names),
        )

    def plaintext_size_bytes(self, bytes_per_weight: int = 4) -> int:
        """Size of the unencrypted model (the "Non-encrypted" rows of Figs. 8/12)."""
        return int((self.weights.size + self.biases.size) * bytes_per_weight)


@dataclass
class QuantizedLinearModel:
    """Fixed-point integer version of a :class:`LinearModel`.

    ``matrix`` has ``num_features + 1`` rows: the final row holds the biases
    (the "+1 · log p(C_j)" term of expressions (1)/(2)), which the protocols
    always add with frequency 1.
    """

    matrix: np.ndarray            # shape (num_features + 1, num_categories), non-negative ints
    category_names: list[str]
    value_bits: int               # bin
    frequency_bits: int           # fin
    max_features_per_email: int   # L used for the dot-product width budget
    scale: float
    offset: float

    @classmethod
    def from_linear_model(
        cls,
        model: LinearModel,
        value_bits: int = 12,
        frequency_bits: int = 4,
        max_features_per_email: int = 8192,
    ) -> "QuantizedLinearModel":
        if value_bits < 2 or value_bits > 30:
            raise ParameterError("value_bits must be between 2 and 30")
        if frequency_bits < 1 or frequency_bits > 16:
            raise ParameterError("frequency_bits must be between 1 and 16")
        stacked = np.vstack([model.weights, model.biases.reshape(1, -1)])
        low = float(stacked.min())
        high = float(stacked.max())
        spread = high - low
        if spread <= 0:
            spread = 1.0
        scale = ((1 << value_bits) - 1) / spread
        quantized = np.rint((stacked - low) * scale).astype(np.int64)
        quantized = np.clip(quantized, 0, (1 << value_bits) - 1)
        return cls(
            matrix=quantized,
            category_names=list(model.category_names),
            value_bits=value_bits,
            frequency_bits=frequency_bits,
            max_features_per_email=max_features_per_email,
            scale=scale,
            offset=low,
        )

    # -- geometry -------------------------------------------------------------
    @property
    def num_features(self) -> int:
        return self.matrix.shape[0] - 1

    @property
    def num_categories(self) -> int:
        return self.matrix.shape[1]

    @property
    def dot_product_bits(self) -> int:
        """Semantic bits of a dot product: ``log2(L) + bin + fin`` (Fig. 3's ``b``)."""
        log_l = max(1, math.ceil(math.log2(self.max_features_per_email + 1)))
        return log_l + self.value_bits + self.frequency_bits

    def matrix_rows(self) -> list[list[int]]:
        """Rows for :meth:`repro.crypto.packing.PackedLinearModel.encrypt`."""
        return [[int(value) for value in row] for row in self.matrix]

    # -- plaintext reference computation ------------------------------------------
    def clip_frequency(self, count: int) -> int:
        """Clamp a term frequency to ``fin`` bits (the protocol's x_i encoding)."""
        return max(0, min(count, (1 << self.frequency_bits) - 1))

    def sparse_features(self, features: SparseVector) -> list[tuple[int, int]]:
        """Protocol-ready (row, frequency) pairs with out-of-vocabulary indices dropped."""
        pairs = []
        for index, count in features.items():
            if 0 <= index < self.num_features:
                clipped = self.clip_frequency(count)
                if clipped:
                    pairs.append((int(index), clipped))
        return pairs

    def integer_scores(self, features: SparseVector) -> np.ndarray:
        """Reference integer dot products (what the secure protocol must reproduce)."""
        scores = self.matrix[-1].astype(np.int64).copy()
        for index, count in self.sparse_features(features):
            scores += count * self.matrix[index]
        return scores

    def predict(self, features: SparseVector) -> int:
        return int(np.argmax(self.integer_scores(features)))

    def predict_is_spam(self, features: SparseVector, spam_column: int = 0) -> bool:
        """Two-category decision: is the spam column's score strictly larger?"""
        if self.num_categories != 2:
            raise ClassifierError("predict_is_spam requires a two-category model")
        scores = self.integer_scores(features)
        other = 1 - spam_column
        return bool(scores[spam_column] > scores[other])

    def plaintext_size_bytes(self, bytes_per_weight: int = 4) -> int:
        return int(self.matrix.size * bytes_per_weight)
