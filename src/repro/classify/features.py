"""Feature extraction: tokenisation and sparse feature vectors.

Documents (emails) are represented by feature vectors ``x = (x_1 ... x_N)``
(§3.1).  A feature here is a lower-cased word token; the GR-NB spam filter
uses Boolean presence features, while the multinomial classifiers use term
frequencies.  The extractor produces *sparse* vectors (``{feature index:
count}``) because an email only touches ``L ≪ N`` features — the quantity the
paper's cost model calls ``L`` (Fig. 3).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import ClassifierError

_TOKEN_PATTERN = re.compile(r"[a-z0-9']+")


def tokenize(text: str) -> list[str]:
    """Lower-case word tokenisation (letters, digits and apostrophes)."""
    return _TOKEN_PATTERN.findall(text.lower())


SparseVector = dict[int, int]


@dataclass
class FeatureExtractor:
    """Maps token streams to sparse feature vectors over a learned vocabulary."""

    max_features: int | None = None
    vocabulary: dict[str, int] = field(default_factory=dict)
    document_frequency: dict[int, int] = field(default_factory=dict)
    _frozen: bool = False

    # -- vocabulary construction -------------------------------------------
    def fit(self, documents: Iterable[str]) -> "FeatureExtractor":
        """Build the vocabulary from an iterable of raw documents."""
        counts: dict[str, int] = {}
        doc_counts: dict[str, int] = {}
        for document in documents:
            tokens = tokenize(document)
            for token in tokens:
                counts[token] = counts.get(token, 0) + 1
            for token in set(tokens):
                doc_counts[token] = doc_counts.get(token, 0) + 1
        ordered = sorted(counts, key=lambda token: (-counts[token], token))
        if self.max_features is not None:
            ordered = ordered[: self.max_features]
        self.vocabulary = {token: index for index, token in enumerate(ordered)}
        self.document_frequency = {
            self.vocabulary[token]: doc_counts[token]
            for token in ordered
        }
        self._frozen = True
        return self

    @property
    def num_features(self) -> int:
        return len(self.vocabulary)

    # -- transformation -------------------------------------------------------
    def transform(self, document: str, boolean: bool = False) -> SparseVector:
        """Sparse feature vector of a document (term counts or 0/1 presence)."""
        if not self._frozen:
            raise ClassifierError("FeatureExtractor.transform called before fit")
        vector: SparseVector = {}
        for token in tokenize(document):
            index = self.vocabulary.get(token)
            if index is None:
                continue
            if boolean:
                vector[index] = 1
            else:
                vector[index] = vector.get(index, 0) + 1
        return vector

    def transform_many(self, documents: Iterable[str], boolean: bool = False) -> list[SparseVector]:
        return [self.transform(document, boolean=boolean) for document in documents]

    # -- vocabulary surgery (feature selection, §4.3) ----------------------------
    def restrict(self, keep_indices: Iterable[int]) -> tuple["FeatureExtractor", dict[int, int]]:
        """Return a new extractor keeping only *keep_indices*; also the old->new map."""
        keep = sorted(set(keep_indices))
        remap = {old: new for new, old in enumerate(keep)}
        index_to_token = {index: token for token, index in self.vocabulary.items()}
        new_vocab = {
            index_to_token[old]: new for old, new in remap.items() if old in index_to_token
        }
        restricted = FeatureExtractor(max_features=len(new_vocab))
        restricted.vocabulary = new_vocab
        restricted.document_frequency = {
            remap[old]: freq for old, freq in self.document_frequency.items() if old in remap
        }
        restricted._frozen = True
        return restricted, remap


def remap_sparse(vector: Mapping[int, int], remap: Mapping[int, int]) -> SparseVector:
    """Project a sparse vector onto a restricted feature set."""
    return {remap[index]: count for index, count in vector.items() if index in remap}


def num_features_in_email(vector: Mapping[int, int]) -> int:
    """The paper's ``L``: number of distinct features present in one email."""
    return len(vector)
