"""Naive Bayes classifiers: multinomial NB and the Graham–Robinson spam variant.

§3.1 and Appendix A of the paper derive the linear forms these classifiers
reduce to:

* multinomial NB for topic extraction selects the category maximising
  ``Σ_i x_i · log p(t_i | C_j) + log p(C_j)`` (expression (2));
* the GR-NB spam classifier compares
  ``Σ_i x_i · log p(t_i | C_spam) + log p(C_spam)`` against the same quantity
  for non-spam (expression (1)), with Boolean ``x_i``.

Both are exported as a :class:`repro.classify.model.LinearModel` whose columns
are the per-category log-probability vectors, which is exactly what the
secure dot-product protocols consume.  The original (non-linear) combining
rule of Graham and Robinson is also provided for the "GR" accuracy row of
Fig. 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.classify.model import LinearModel
from repro.exceptions import ClassifierError

SparseVector = Mapping[int, int]


@dataclass
class MultinomialNaiveBayes:
    """Multinomial Naive Bayes with Laplace (add-alpha) smoothing."""

    num_features: int
    alpha: float = 1.0
    category_names: list[str] = field(default_factory=list)
    _log_likelihoods: np.ndarray | None = None   # (num_features, num_categories)
    _log_priors: np.ndarray | None = None        # (num_categories,)

    def fit(self, documents: Sequence[SparseVector], labels: Sequence[int]) -> "MultinomialNaiveBayes":
        if len(documents) != len(labels):
            raise ClassifierError("documents and labels must have the same length")
        if not documents:
            raise ClassifierError("cannot fit on an empty training set")
        num_categories = max(labels) + 1
        if not self.category_names:
            self.category_names = [f"category-{index}" for index in range(num_categories)]
        counts = np.zeros((self.num_features, num_categories), dtype=np.float64)
        doc_counts = np.zeros(num_categories, dtype=np.float64)
        for document, label in zip(documents, labels):
            doc_counts[label] += 1
            for feature, value in document.items():
                if 0 <= feature < self.num_features:
                    counts[feature, label] += value
        totals = counts.sum(axis=0)
        self._log_likelihoods = np.log(
            (counts + self.alpha) / (totals + self.alpha * self.num_features)
        )
        self._log_priors = np.log(doc_counts / doc_counts.sum())
        return self

    def to_linear_model(self) -> LinearModel:
        if self._log_likelihoods is None or self._log_priors is None:
            raise ClassifierError("classifier must be fitted before exporting a model")
        return LinearModel(
            weights=self._log_likelihoods.copy(),
            biases=self._log_priors.copy(),
            category_names=list(self.category_names),
        )

    def predict(self, document: SparseVector) -> int:
        return self.to_linear_model().predict(document)


@dataclass
class GrahamRobinsonNaiveBayes:
    """GR-NB spam classifier over Boolean presence features (§3.1, Apdx A.1).

    Per-feature spamminess ``p(t_i | spam)`` is estimated with Robinson's
    strength-``s`` smoothing toward a neutral prior ``x = 0.5``, then the
    decision reduces to the linear comparison of expression (1).  Category 0
    is spam, category 1 is non-spam ("ham").
    """

    num_features: int
    robinson_s: float = 1.0
    neutral_prior: float = 0.5
    epsilon: float = 1e-6
    _spam_given_token: np.ndarray | None = None
    _ham_given_token: np.ndarray | None = None
    _log_prior_spam: float = math.log(0.5)
    _log_prior_ham: float = math.log(0.5)

    category_names = ["spam", "ham"]

    def fit(self, documents: Sequence[SparseVector], labels: Sequence[int]) -> "GrahamRobinsonNaiveBayes":
        """Fit from Boolean feature vectors; label 1 means spam, 0 means ham."""
        if len(documents) != len(labels):
            raise ClassifierError("documents and labels must have the same length")
        spam_docs = sum(1 for label in labels if label == 1)
        ham_docs = len(labels) - spam_docs
        if spam_docs == 0 or ham_docs == 0:
            raise ClassifierError("training data must contain both spam and ham")
        spam_with_token = np.zeros(self.num_features, dtype=np.float64)
        ham_with_token = np.zeros(self.num_features, dtype=np.float64)
        for document, label in zip(documents, labels):
            target = spam_with_token if label == 1 else ham_with_token
            for feature, value in document.items():
                if value and 0 <= feature < self.num_features:
                    target[feature] += 1
        # Conditional presence probabilities with Robinson smoothing.
        raw_spam = spam_with_token / spam_docs
        raw_ham = ham_with_token / ham_docs
        occurrences = spam_with_token + ham_with_token
        s = self.robinson_s
        x = self.neutral_prior
        self._spam_given_token = (s * x + occurrences * raw_spam) / (s + occurrences)
        self._ham_given_token = (s * x + occurrences * raw_ham) / (s + occurrences)
        self._log_prior_spam = math.log(spam_docs / len(labels))
        self._log_prior_ham = math.log(ham_docs / len(labels))
        return self

    def to_linear_model(self) -> LinearModel:
        """Columns: [spam, ham] log conditional probabilities; biases: log priors."""
        if self._spam_given_token is None or self._ham_given_token is None:
            raise ClassifierError("classifier must be fitted before exporting a model")
        spam_column = np.log(np.clip(self._spam_given_token, self.epsilon, 1.0))
        ham_column = np.log(np.clip(self._ham_given_token, self.epsilon, 1.0))
        weights = np.stack([spam_column, ham_column], axis=1)
        biases = np.array([self._log_prior_spam, self._log_prior_ham])
        return LinearModel(weights=weights, biases=biases, category_names=list(self.category_names))

    def predict_is_spam(self, document: SparseVector) -> bool:
        """Linear-form decision: spam iff the spam column's score wins."""
        scores = self.to_linear_model().decision_scores(
            {index: 1 for index, value in document.items() if value}
        )
        return bool(scores[0] > scores[1])

    # -- original Graham combining rule (the "GR" row of Fig. 9) ----------------
    def spamminess(self, feature: int) -> float:
        """Robinson's per-token spam probability ``p(spam | t_i)`` (uniform priors)."""
        if self._spam_given_token is None or self._ham_given_token is None:
            raise ClassifierError("classifier must be fitted first")
        spam = self._spam_given_token[feature]
        ham = self._ham_given_token[feature]
        denominator = spam + ham
        if denominator <= 0:
            return 0.5
        return float(spam / denominator)

    def predict_is_spam_original(self, document: SparseVector, top_tokens: int = 15, threshold: float = 0.5) -> bool:
        """Graham's original combining rule over the most "interesting" tokens.

        The most extreme per-token probabilities (farthest from 0.5) are
        combined with Graham's formula; this is the non-linear variant the
        paper reports as "GR" in Fig. 9 and notes has nearly identical
        accuracy to the linear GR-NB form.
        """
        present = [index for index, value in document.items() if value and 0 <= index < self.num_features]
        if not present:
            return False
        probabilities = [self.spamminess(index) for index in present]
        probabilities.sort(key=lambda p: abs(p - 0.5), reverse=True)
        chosen = probabilities[:top_tokens]
        product_spam = 1.0
        product_ham = 1.0
        for p in chosen:
            clipped = min(max(p, self.epsilon), 1.0 - self.epsilon)
            product_spam *= clipped
            product_ham *= 1.0 - clipped
        combined = product_spam / (product_spam + product_ham)
        return combined > threshold
