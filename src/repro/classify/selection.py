"""Chi-square feature selection (§4.3, Fig. 13).

Pretzel reduces client-side storage by selecting only the ``N'`` most
discriminative features before encrypting the model ("the standard technique
of feature selection ... using the Chi-square selection technique [111]").
Fig. 13 plots classification accuracy as a function of ``N'/N``; the bench
harness reproduces that sweep with this module.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ClassifierError

SparseVector = Mapping[int, int]


def chi_square_scores(
    documents: Sequence[SparseVector],
    labels: Sequence[int],
    num_features: int,
    num_categories: int | None = None,
) -> np.ndarray:
    """Per-feature chi-square statistic of feature presence vs. category.

    Uses the presence/absence contingency table per (feature, category) pair
    and sums the statistic over categories — the standard formulation for
    text feature selection.
    """
    if len(documents) != len(labels):
        raise ClassifierError("documents and labels must have the same length")
    if not documents:
        raise ClassifierError("cannot score features on an empty dataset")
    if num_categories is None:
        num_categories = max(labels) + 1
    total_docs = len(documents)
    docs_per_category = np.zeros(num_categories, dtype=np.float64)
    presence = np.zeros((num_features, num_categories), dtype=np.float64)
    feature_docs = np.zeros(num_features, dtype=np.float64)
    for document, label in zip(documents, labels):
        docs_per_category[label] += 1
        for feature, value in document.items():
            if value and 0 <= feature < num_features:
                presence[feature, label] += 1
                feature_docs[feature] += 1
    scores = np.zeros(num_features, dtype=np.float64)
    for category in range(num_categories):
        observed_present = presence[:, category]
        observed_absent = docs_per_category[category] - observed_present
        expected_present = feature_docs * docs_per_category[category] / total_docs
        expected_absent = (total_docs - feature_docs) * docs_per_category[category] / total_docs
        with np.errstate(divide="ignore", invalid="ignore"):
            term_present = np.where(
                expected_present > 0,
                (observed_present - expected_present) ** 2 / expected_present,
                0.0,
            )
            term_absent = np.where(
                expected_absent > 0,
                (observed_absent - expected_absent) ** 2 / expected_absent,
                0.0,
            )
        scores += term_present + term_absent
    return scores


def select_features(
    documents: Sequence[SparseVector],
    labels: Sequence[int],
    num_features: int,
    keep_fraction: float,
    num_categories: int | None = None,
) -> list[int]:
    """Indices of the top ``keep_fraction`` of features by chi-square score."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ClassifierError("keep_fraction must be in (0, 1]")
    scores = chi_square_scores(documents, labels, num_features, num_categories)
    keep_count = max(1, int(round(keep_fraction * num_features)))
    order = np.argsort(scores)[::-1]
    return sorted(int(index) for index in order[:keep_count])


def project_documents(
    documents: Sequence[SparseVector], keep_indices: Sequence[int]
) -> list[dict[int, int]]:
    """Re-index documents onto the selected feature subset."""
    remap = {old: new for new, old in enumerate(keep_indices)}
    projected = []
    for document in documents:
        projected.append(
            {remap[index]: count for index, count in document.items() if index in remap}
        )
    return projected
