"""Simulated email substrate: messages, end-to-end encryption, delivery.

Pretzel is "backwards compatible with existing email delivery infrastructure"
(§2.1): senders encrypt and sign, providers store and forward opaque
ciphertexts, recipients decrypt and then run the function-module protocols.
This package implements that substrate — a message format, a GPG-equivalent
e2e module, an in-process transport with byte accounting, provider mailboxes,
and the sender-side replay/duplicate defence of §4.4.
"""

from repro.mail.message import EmailMessage, EncryptedEmail
from repro.mail.e2e import E2EIdentity, E2EModule
from repro.mail.provider import MailProvider
from repro.mail.client import MailClient
from repro.mail.replay import ReplayGuard
from repro.mail.traces import TraceEvent, TraceReport, TraceSpec, VirtualClock, generate_trace, serve_trace

__all__ = [
    "EmailMessage",
    "EncryptedEmail",
    "E2EIdentity",
    "E2EModule",
    "MailProvider",
    "MailClient",
    "ReplayGuard",
    "TraceEvent",
    "TraceReport",
    "TraceSpec",
    "VirtualClock",
    "generate_trace",
    "serve_trace",
]
