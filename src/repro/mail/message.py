"""Email message representation and wire encoding.

A minimal, self-contained stand-in for RFC 5322 + MIME: enough structure
(headers, body, canonical byte encoding, stable message ids, size accounting)
for the mail substrate and the benchmarks, without pulling in a real mail
stack.  The paper's cost model charges ``sz_email`` for the email body itself
(Fig. 3); :meth:`EmailMessage.size_bytes` is that quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashes import sha256
from repro.exceptions import MailError
from repro.utils.serialization import canonical_dumps, canonical_loads


@dataclass
class EmailMessage:
    """A plaintext email."""

    sender: str
    recipient: str
    subject: str
    body: str
    headers: dict[str, str] = field(default_factory=dict)
    sequence_number: int = 0   # per-sender counter used by the replay defence (§4.4)

    def __post_init__(self) -> None:
        if not self.sender or not self.recipient:
            raise MailError("emails need both a sender and a recipient address")

    def to_bytes(self) -> bytes:
        """Canonical byte encoding (what gets encrypted and signed)."""
        return canonical_dumps(
            {
                "sender": self.sender,
                "recipient": self.recipient,
                "subject": self.subject,
                "body": self.body,
                "headers": dict(self.headers),
                "sequence_number": self.sequence_number,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EmailMessage":
        decoded = canonical_loads(data)
        if not isinstance(decoded, dict):
            raise MailError("malformed email encoding")
        try:
            return cls(
                sender=decoded["sender"],
                recipient=decoded["recipient"],
                subject=decoded["subject"],
                body=decoded["body"],
                headers=dict(decoded.get("headers", {})),
                sequence_number=int(decoded.get("sequence_number", 0)),
            )
        except KeyError as missing:
            raise MailError(f"email encoding missing field {missing}") from missing

    def size_bytes(self) -> int:
        """The paper's ``sz_email``."""
        return len(self.to_bytes())

    def message_id(self) -> str:
        """Stable content-derived identifier (used for mailbox indexing)."""
        return sha256(b"message-id", self.to_bytes()).hex()[:32]

    def text_content(self) -> str:
        """The text the function modules classify: subject plus body."""
        return f"{self.subject}\n{self.body}"


@dataclass
class EncryptedEmail:
    """An end-to-end encrypted, signed email as handled by the provider.

    The provider sees only routing metadata (sender, recipient), the KEM
    encapsulation, the ciphertext, the MAC tag and the signature — never the
    subject or body.
    """

    sender: str
    recipient: str
    kem_ephemeral: int
    nonce: bytes
    ciphertext: bytes
    mac_tag: bytes
    signature_challenge: int
    signature_response: int

    def size_bytes(self) -> int:
        """Wire size of the encrypted email (``sz_email`` plus e2e overhead)."""
        return len(self.to_bytes())

    def to_bytes(self) -> bytes:
        return canonical_dumps(
            {
                "sender": self.sender,
                "recipient": self.recipient,
                "kem": self.kem_ephemeral,
                "nonce": self.nonce,
                "ciphertext": self.ciphertext,
                "mac": self.mac_tag,
                "sig_c": self.signature_challenge,
                "sig_s": self.signature_response,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EncryptedEmail":
        decoded = canonical_loads(data)
        if not isinstance(decoded, dict):
            raise MailError("malformed encrypted email encoding")
        try:
            return cls(
                sender=decoded["sender"],
                recipient=decoded["recipient"],
                kem_ephemeral=decoded["kem"],
                nonce=decoded["nonce"],
                ciphertext=decoded["ciphertext"],
                mac_tag=decoded["mac"],
                signature_challenge=decoded["sig_c"],
                signature_response=decoded["sig_s"],
            )
        except KeyError as missing:
            raise MailError(f"encrypted email missing field {missing}") from missing
