"""The e2e module: end-to-end encryption and signing of emails (§2.2, step 1–2).

The paper's prototype uses GPG; this reproduction builds the equivalent
hybrid construction from its own primitives (see DESIGN.md):

* ElGamal KEM wraps a fresh 32-byte content key for the recipient;
* ChaCha20 encrypts the canonical email bytes under that key;
* HMAC-SHA256 (encrypt-then-MAC) authenticates the ciphertext;
* a Schnorr signature by the *sender* covers the whole encrypted payload, so
  recipients can verify authorship — which §4.4 notes is required for the
  replay/duplicate defence to be meaningful.

An :class:`E2EIdentity` bundles a user's long-term KEM and signing keys; the
:class:`E2EModule` exposes ``encrypt_and_sign`` / ``verify_and_decrypt``, the
two operations whose costs appear in the Fig. 6 microbenchmarks as the GPG
rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.chacha import chacha20_xor
from repro.crypto.dh import DHGroup
from repro.crypto.elgamal import (
    ElGamalKeyPair,
    ElGamalPublicKey,
    KemCiphertext,
    decapsulate,
    encapsulate,
)
from repro.crypto.hashes import constant_time_equal, hkdf, hmac_sha256
from repro.crypto.schnorr import (
    SchnorrKeyPair,
    SchnorrPublicKey,
    SchnorrSignature,
    sign,
    verify,
)
from repro.exceptions import IntegrityError, SignatureError
from repro.mail.message import EmailMessage, EncryptedEmail
from repro.utils.rand import secure_bytes


@dataclass
class E2EIdentity:
    """A user's long-term end-to-end keys (encryption + signing)."""

    address: str
    kem_keys: ElGamalKeyPair
    signing_keys: SchnorrKeyPair

    @classmethod
    def generate(cls, address: str, group: DHGroup) -> "E2EIdentity":
        return cls(
            address=address,
            kem_keys=ElGamalKeyPair.generate(group),
            signing_keys=SchnorrKeyPair.generate(group),
        )

    def public_bundle(self) -> "E2EPublicIdentity":
        return E2EPublicIdentity(
            address=self.address,
            kem_public=self.kem_keys.public,
            signing_public=self.signing_keys.public,
        )


@dataclass
class E2EPublicIdentity:
    """The publicly shareable half of an identity (what a key server would hold)."""

    address: str
    kem_public: ElGamalPublicKey
    signing_public: SchnorrPublicKey


class E2EModule:
    """Encrypt-and-sign / verify-and-decrypt over :class:`EmailMessage`."""

    def __init__(self, group: DHGroup) -> None:
        self.group = group

    def encrypt_and_sign(
        self,
        message: EmailMessage,
        sender_identity: E2EIdentity,
        recipient_public: E2EPublicIdentity,
    ) -> EncryptedEmail:
        """Produce the encrypted, signed wire form of *message* (step 1 in Fig. 1)."""
        plaintext = message.to_bytes()
        kem_ciphertext, content_key = encapsulate(recipient_public.kem_public)
        encryption_key = hkdf(content_key, b"pretzel-e2e-enc", 32)
        mac_key = hkdf(content_key, b"pretzel-e2e-mac", 32)
        nonce = secure_bytes(12)
        ciphertext = chacha20_xor(encryption_key, nonce, plaintext)
        mac_tag = hmac_sha256(mac_key, nonce, ciphertext)
        signed_payload = self._signature_payload(
            message.sender, message.recipient, kem_ciphertext, nonce, ciphertext, mac_tag
        )
        signature = sign(sender_identity.signing_keys.private, signed_payload)
        return EncryptedEmail(
            sender=message.sender,
            recipient=message.recipient,
            kem_ephemeral=kem_ciphertext.ephemeral,
            nonce=nonce,
            ciphertext=ciphertext,
            mac_tag=mac_tag,
            signature_challenge=signature.challenge,
            signature_response=signature.response,
        )

    def verify_and_decrypt(
        self,
        encrypted: EncryptedEmail,
        recipient_identity: E2EIdentity,
        sender_public: E2EPublicIdentity,
    ) -> EmailMessage:
        """Authenticate and decrypt an incoming email (step 2 in Fig. 1)."""
        kem_ciphertext = KemCiphertext(ephemeral=encrypted.kem_ephemeral)
        signed_payload = self._signature_payload(
            encrypted.sender,
            encrypted.recipient,
            kem_ciphertext,
            encrypted.nonce,
            encrypted.ciphertext,
            encrypted.mac_tag,
        )
        signature = SchnorrSignature(
            challenge=encrypted.signature_challenge,
            response=encrypted.signature_response,
        )
        if not verify(sender_public.signing_public, signed_payload, signature):
            raise SignatureError(f"signature check failed for email from {encrypted.sender}")
        content_key = decapsulate(recipient_identity.kem_keys.private, kem_ciphertext)
        encryption_key = hkdf(content_key, b"pretzel-e2e-enc", 32)
        mac_key = hkdf(content_key, b"pretzel-e2e-mac", 32)
        expected_tag = hmac_sha256(mac_key, encrypted.nonce, encrypted.ciphertext)
        if not constant_time_equal(expected_tag, encrypted.mac_tag):
            raise IntegrityError("email failed its integrity check (wrong key or tampering)")
        plaintext = chacha20_xor(encryption_key, encrypted.nonce, encrypted.ciphertext)
        return EmailMessage.from_bytes(plaintext)

    @staticmethod
    def _signature_payload(
        sender: str,
        recipient: str,
        kem_ciphertext: KemCiphertext,
        nonce: bytes,
        ciphertext: bytes,
        mac_tag: bytes,
    ) -> bytes:
        return b"|".join(
            [
                b"pretzel-e2e-v1",
                sender.encode("utf-8"),
                recipient.encode("utf-8"),
                str(kem_ciphertext.ephemeral).encode("ascii"),
                nonce,
                ciphertext,
                mac_tag,
            ]
        )
