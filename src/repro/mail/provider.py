"""The mail provider: stores and forwards encrypted emails, hosts function modules.

In Pretzel's architecture (Fig. 1) the recipient's provider receives the
encrypted email over SMTP, places it in the recipient's mailbox and later
participates — as Party A — in the function-module protocols.  The provider
never holds email plaintext; its mailbox stores only :class:`EncryptedEmail`
objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import MailError
from repro.mail.message import EncryptedEmail


@dataclass
class Mailbox:
    """One user's mailbox of encrypted emails, in arrival order."""

    address: str
    emails: list[EncryptedEmail] = field(default_factory=list)

    def deliver(self, email: EncryptedEmail) -> None:
        if email.recipient != self.address:
            raise MailError(
                f"email addressed to {email.recipient} cannot be delivered to {self.address}"
            )
        self.emails.append(email)

    def fetch_all(self) -> list[EncryptedEmail]:
        return list(self.emails)

    def fetch_since(self, index: int) -> list[EncryptedEmail]:
        """IMAP-style incremental fetch: everything at or after *index*."""
        if index < 0:
            raise MailError("fetch index must be non-negative")
        return list(self.emails[index:])

    def __len__(self) -> int:
        return len(self.emails)

    def storage_bytes(self) -> int:
        return sum(email.size_bytes() for email in self.emails)


class MailProvider:
    """An email provider with per-user mailboxes and delivery accounting."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._mailboxes: dict[str, Mailbox] = {}
        self.delivered_count = 0
        self.delivered_bytes = 0

    def register_user(self, address: str) -> Mailbox:
        """Create (or return) the mailbox for *address*."""
        mailbox = self._mailboxes.get(address)
        if mailbox is None:
            mailbox = Mailbox(address=address)
            self._mailboxes[address] = mailbox
        return mailbox

    def has_user(self, address: str) -> bool:
        return address in self._mailboxes

    def accept_delivery(self, email: EncryptedEmail) -> None:
        """SMTP-equivalent: accept an inbound encrypted email for a local user."""
        mailbox = self._mailboxes.get(email.recipient)
        if mailbox is None:
            raise MailError(f"{self.name} has no user {email.recipient}")
        mailbox.deliver(email)
        self.delivered_count += 1
        self.delivered_bytes += email.size_bytes()

    def mailbox(self, address: str) -> Mailbox:
        mailbox = self._mailboxes.get(address)
        if mailbox is None:
            raise MailError(f"{self.name} has no user {address}")
        return mailbox

    def fetch(self, address: str, since_index: int = 0) -> list[EncryptedEmail]:
        """IMAP-equivalent: fetch a user's encrypted emails."""
        return self.mailbox(address).fetch_since(since_index)

    def pending_count(self, address: str, since_index: int = 0) -> int:
        """How many emails a user has beyond its fetch cursor (burst size)."""
        if since_index < 0:
            raise MailError("fetch index must be non-negative")
        return max(0, len(self.mailbox(address)) - since_index)

    def mailboxes_with_mail(self) -> list[str]:
        """Addresses with at least one stored email, in registration order.

        The multi-user serving loop (:mod:`repro.core.runtime`) uses this to
        decide which mailboxes participate in a drain pass.
        """
        return [address for address, mailbox in self._mailboxes.items() if len(mailbox)]

    def user_count(self) -> int:
        return len(self._mailboxes)
