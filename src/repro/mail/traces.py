"""Trace-driven workloads for the serving stack (§6.3 latency evaluation).

The paper evaluates the provider stack under realistic email arrivals, not
uniform bursts: volume is heavy-tailed across mailboxes, rate swings with the
time of day, and traffic clumps into bursts.  :func:`generate_trace` produces
such a workload from one seed — a thinned inhomogeneous Poisson process whose
rate is a diurnal sinusoid times a burst multiplier, with mailboxes drawn
from a Zipf distribution and per-sender sequence numbers (plus a configurable
sprinkle of injected duplicates, so the §4.4 :class:`~repro.mail.replay.ReplayGuard`
finally has live traffic to police).

:func:`serve_trace` replays a trace against a windowed serving runtime under
a :class:`VirtualClock`: the clock jumps to each arrival, provider *compute*
is charged to it (measured CPU, or a calibrated deterministic batch cost
model), and between arrivals the clock advances to the scheduler's next age
deadline and ticks ``poll()`` — which is exactly the idle-window flush this
trace harness exists to exercise (before the poll tick, a lull in arrivals
left parked decrypts waiting for the next burst).  The result couples
batching efficiency to queueing delay, so end-to-end email latency
percentiles are meaningful: a wide window really does hold the tail email
longer, and a too-narrow window really does pay per-batch decrypt overhead
that backs up the queue.

The trace itself is deterministic given the :class:`TraceSpec` seed, and a
replay under a ``cost_model`` is deterministic end to end; the latency
regression gate depends on both.
"""

from __future__ import annotations

import math
import random
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Any, Callable, Sequence

from repro.exceptions import ReplayError
from repro.mail.replay import ReplayGuard
from repro.obs import get_registry
from repro.utils.timing import percentile, summarize_latencies


@dataclass(frozen=True)
class TraceEvent:
    """One email arrival: who, when, and its replay-protocol identity."""

    arrival_seconds: float
    mailbox: str
    sender: str
    sequence_number: int
    duplicate: bool = False  # an injected replay of an earlier (sender, seq)


@dataclass(frozen=True)
class TraceSpec:
    """Knobs for :func:`generate_trace`; one seed fixes the whole schedule.

    The arrival rate at time ``t`` is::

        rate(t) = mean_rate_per_second
                  · (1 + diurnal_amplitude · sin(2π t / diurnal_period_seconds))
                  · (burst_rate_multiplier if t is inside a burst else 1)

    with burst intervals themselves drawn from the seed (exponential burst
    and gap lengths, tuned so bursts cover ``burst_fraction`` of the trace).
    Mailbox volume is Zipf-distributed: mailbox ``i`` receives traffic
    proportional to ``1 / (i + 1) ** zipf_exponent``, so a few inboxes are
    hot and most are nearly idle — the shape that makes idle-window
    starvation visible.
    """

    mailboxes: int = 200
    senders_per_mailbox: int = 4
    mean_rate_per_second: float = 50.0
    duration_seconds: float = 10.0
    diurnal_amplitude: float = 0.5
    diurnal_period_seconds: float = 10.0
    burst_rate_multiplier: float = 6.0
    burst_fraction: float = 0.15
    mean_burst_seconds: float = 0.4
    zipf_exponent: float = 1.1
    duplicate_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mailboxes < 1 or self.senders_per_mailbox < 1:
            raise ValueError("need at least one mailbox and one sender per mailbox")
        if self.mean_rate_per_second <= 0 or self.duration_seconds <= 0:
            raise ValueError("rate and duration must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.burst_rate_multiplier < 1.0:
            raise ValueError("burst_rate_multiplier must be at least 1")
        if not 0.0 <= self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in [0, 1)")
        if not 0.0 <= self.duplicate_fraction < 1.0:
            raise ValueError("duplicate_fraction must be in [0, 1)")


def _burst_intervals(spec: TraceSpec, rng: random.Random) -> list[tuple[float, float]]:
    """Seeded alternation of quiet gaps and bursts covering the trace."""
    if spec.burst_fraction == 0.0:
        return []
    mean_gap = spec.mean_burst_seconds * (1.0 - spec.burst_fraction) / spec.burst_fraction
    intervals: list[tuple[float, float]] = []
    t = rng.expovariate(1.0 / mean_gap)
    while t < spec.duration_seconds:
        end = t + rng.expovariate(1.0 / spec.mean_burst_seconds)
        intervals.append((t, min(end, spec.duration_seconds)))
        t = end + rng.expovariate(1.0 / mean_gap)
    return intervals


def generate_trace(spec: TraceSpec) -> list[TraceEvent]:
    """Seeded bursty/diurnal arrivals over heavy-tailed mailboxes.

    Thinned (rejection-sampled) inhomogeneous Poisson process: candidates are
    drawn at the peak rate and accepted with probability ``rate(t) / peak``,
    which is exact for any bounded rate function.  The same
    :class:`TraceSpec` always yields the identical event list.
    """
    rng = random.Random(spec.seed)
    bursts = _burst_intervals(spec, rng)
    burst_starts = [start for start, _ in bursts]

    def in_burst(t: float) -> bool:
        index = bisect_right(burst_starts, t) - 1
        return index >= 0 and t < bursts[index][1]

    def rate(t: float) -> float:
        diurnal = 1.0 + spec.diurnal_amplitude * math.sin(
            2.0 * math.pi * t / spec.diurnal_period_seconds
        )
        multiplier = spec.burst_rate_multiplier if in_burst(t) else 1.0
        return spec.mean_rate_per_second * diurnal * multiplier

    peak = (
        spec.mean_rate_per_second
        * (1.0 + spec.diurnal_amplitude)
        * spec.burst_rate_multiplier
    )
    weights = [1.0 / (i + 1) ** spec.zipf_exponent for i in range(spec.mailboxes)]
    cumulative = list(accumulate(weights))
    total_weight = cumulative[-1]

    events: list[TraceEvent] = []
    next_sequence: dict[str, int] = {}
    history: list[tuple[str, int]] = []  # accepted (sender, seq), for duplicates
    t = 0.0
    while True:
        t += rng.expovariate(peak)
        if t >= spec.duration_seconds:
            break
        if rng.random() * peak > rate(t):
            continue  # thinned: this candidate is outside the local rate
        mailbox_index = bisect_right(cumulative, rng.random() * total_weight)
        mailbox = f"user{mailbox_index}@trace.example"
        if history and rng.random() < spec.duplicate_fraction:
            sender, sequence = history[rng.randrange(len(history))]
            events.append(TraceEvent(t, mailbox, sender, sequence, duplicate=True))
            continue
        sender = f"sender{rng.randrange(spec.senders_per_mailbox)}.for.{mailbox}"
        sequence = next_sequence.get(sender, 0)
        next_sequence[sender] = sequence + 1
        events.append(TraceEvent(t, mailbox, sender, sequence))
        history.append((sender, sequence))
    return events


class VirtualClock:
    """A monotonic clock the replay harness advances by hand.

    Inject it as the scheduler's ``clock`` and as :func:`serve_trace`'s
    clock: arrivals jump it forward, measured provider CPU is charged to it,
    and it never goes backwards (so a CPU charge overlapping the next
    arrival is modelled as the queue backing up, not as time travel).

    Inside a :meth:`charge` block virtual time *flows* at real wall-clock
    rate, so code running under the charge (a serving call parking decrypt
    windows, a scheduler reading ``clock()`` mid-batch) sees truthful
    timestamps: a window opened halfway through an expensive call really is
    younger than one opened at its start.  Charging only at the end of the
    call would stamp every mid-call event with the stale pre-call time —
    and make any batching delay shorter than the call invisible.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self._charge_base: tuple[float, float] | None = None  # (virtual, real) at entry

    def __call__(self) -> float:
        if self._charge_base is not None:
            virtual, real = self._charge_base
            return virtual + (time.perf_counter() - real)
        return self.now

    def advance_to(self, when: float) -> None:
        if self._charge_base is not None:
            raise ValueError("cannot jump a clock while real time is being charged")
        self.now = max(self.now, float(when))

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a virtual clock cannot go backwards")
        if self._charge_base is not None:
            raise ValueError("cannot jump a clock while real time is being charged")
        self.now += seconds

    def charge(self, call: Callable[[], Any]) -> tuple[Any, float]:
        """Run *call* with virtual time flowing; returns (result, seconds charged)."""
        start = time.perf_counter()
        self._charge_base = (self.now, start)
        try:
            result = call()
        finally:
            elapsed = time.perf_counter() - start
            self._charge_base = None
            self.now += elapsed
        return result, elapsed


@dataclass
class TraceReport:
    """What one :func:`serve_trace` replay measured."""

    latencies: list[float] = field(default_factory=list)  # arrival → result, virtual s
    served: int = 0
    rejected_duplicates: int = 0
    provider_cpu_seconds: float = 0.0
    decrypt_batch_sizes: list[float] = field(default_factory=list)

    def summary(self) -> dict[str, float]:
        """Flat row: latency percentiles plus throughput, for the bench JSON."""
        row = {
            f"latency_{key}": value for key, value in summarize_latencies(self.latencies).items()
        }
        row["served"] = float(self.served)
        row["rejected_duplicates"] = float(self.rejected_duplicates)
        row["provider_cpu_seconds"] = self.provider_cpu_seconds
        row["throughput_per_cpu_second"] = (
            self.served / self.provider_cpu_seconds if self.provider_cpu_seconds > 0 else 0.0
        )
        row["mean_decrypt_batch"] = (
            sum(self.decrypt_batch_sizes) / len(self.decrypt_batch_sizes)
            if self.decrypt_batch_sizes
            else 0.0
        )
        # The batch-size *distribution*, not just its mean: a policy can buy
        # a good mean with a few giant flushes while most windows release
        # nearly empty — p95 is what tells those stories apart.
        row["p95_decrypt_batch"] = (
            percentile(self.decrypt_batch_sizes, 95.0) if self.decrypt_batch_sizes else 0.0
        )
        return row


def serve_trace(
    runtime: Any,
    events: Sequence[TraceEvent],
    make_job: Callable[[TraceEvent], Any],
    clock: VirtualClock,
    replay_guard: ReplayGuard | None = None,
    batch_seconds: float = 0.0,
    cost_model: Callable[[float], float] | None = None,
) -> TraceReport:
    """Replay *events* against *runtime* under *clock*; measure email latency.

    *runtime* is a :class:`~repro.core.runtime.ProviderRuntime` whose
    scheduler was built with ``clock=clock`` — the harness owns time.  For
    each arrival the clock first advances through every scheduler age
    deadline that falls before it, ticking ``runtime.poll()`` at each (this
    is how aged windows fire during a lull — the idle-starvation fix made
    this loop possible; without ``poll`` the only flush points were later
    bursts).  Then the email is checked against *replay_guard* (duplicates
    are rejected and never reach the runtime), turned into a job by
    *make_job*, and served.

    Service time can be charged to the virtual clock two ways.  Without
    *cost_model*, real CPU spent inside each runtime call flows into the
    clock as measured — realistic, but every latency sample inherits the
    machine's scheduling jitter, which a hard-fail regression gate cannot
    sit on.  With *cost_model* — a callable mapping a flushed decrypt
    batch's ciphertext count to virtual service seconds — the clock is
    instead advanced by ``cost_model(size)`` for each batch the call
    flushed: the replay becomes **deterministic** given the trace and the
    scheduler policy, while real CPU is still measured separately for the
    throughput figures.  Calibrate the model from the live protocol (a
    fixed per-batch cost plus a per-ciphertext cost captures the
    decrypt-many amortization) so the virtual economics match the real
    ones.

    *batch_seconds* coalesces arrivals closer together than the given gap
    into one ``serve_burst`` call, modelling a front-end that picks up every
    connection ready in the same accept round.

    A job's latency is ``finish − arrival`` in virtual seconds, recorded when
    the runtime reports the job finished.
    """
    report = TraceReport()
    arrivals: dict[int, float] = {}  # id(job) → arrival time
    metric_latency = get_registry().histogram("trace_email_latency_seconds")

    def note_finished(finished: Sequence[Any]) -> None:
        now = clock()
        for job in finished:
            latency = now - arrivals.pop(id(job))
            report.latencies.append(latency)
            metric_latency.observe(latency)
            report.served += 1

    def timed(call: Callable[[], Any]) -> Any:
        if cost_model is None:
            result, elapsed = clock.charge(call)
            report.provider_cpu_seconds += elapsed
            return result
        # Deterministic charging: the clock holds still during the call
        # (windows opened by an arrival are stamped with the arrival time),
        # then advances by the modelled cost of each batch that flushed.
        before = len(runtime.decrypt_batch_sizes)
        start = time.perf_counter()
        result = call()
        report.provider_cpu_seconds += time.perf_counter() - start
        for size in runtime.decrypt_batch_sizes[before:]:
            clock.advance(cost_model(size))
        return result

    def poll_until(horizon: float | None) -> None:
        while True:
            deadline = runtime.scheduler.next_deadline()
            if deadline is None or (horizon is not None and deadline >= horizon):
                return
            clock.advance_to(deadline)
            note_finished(timed(runtime.poll))

    pending_batch: list[Any] = []
    batch_started: float | None = None
    for event in sorted(events, key=lambda item: item.arrival_seconds):
        flush_now = pending_batch and (
            batch_started is None or event.arrival_seconds - batch_started > batch_seconds
        )
        if flush_now:
            batch, pending_batch, batch_started = pending_batch, [], None
            note_finished(timed(lambda: runtime.serve_burst(batch)))
        poll_until(event.arrival_seconds)
        clock.advance_to(event.arrival_seconds)
        if replay_guard is not None:
            try:
                replay_guard.check_and_record(event.sender, event.sequence_number)
            except ReplayError:
                report.rejected_duplicates += 1
                continue
        job = make_job(event)
        # Latency counts from the *arrival*, not from when the (possibly
        # backlogged) clock got around to admitting it — the queue wait is
        # part of what the percentiles must see.
        arrivals[id(job)] = event.arrival_seconds
        if batch_seconds > 0.0:
            if not pending_batch:
                batch_started = event.arrival_seconds
            pending_batch.append(job)
        else:
            note_finished(timed(lambda: runtime.serve_burst([job])))
    if pending_batch:
        batch = pending_batch
        note_finished(timed(lambda: runtime.serve_burst(batch)))
    poll_until(None)  # serve out every remaining age deadline
    note_finished(timed(runtime.drain))  # windows with no age trigger
    report.decrypt_batch_sizes = [float(size) for size in runtime.decrypt_batch_sizes]
    return report
