"""The mail client: composes, encrypts, sends, fetches and decrypts email.

The client side of Fig. 1: it owns an :class:`~repro.mail.e2e.E2EIdentity`,
keeps a per-sender outgoing sequence counter (consumed by the recipient's
replay guard, §4.4), and a tiny "key directory" of peers' public identities —
the piece of the key-management problem the paper explicitly scopes out
(§2.2) but which the substrate still needs in order to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import MailError
from repro.mail.e2e import E2EIdentity, E2EModule, E2EPublicIdentity
from repro.mail.message import EmailMessage, EncryptedEmail
from repro.mail.provider import MailProvider
from repro.mail.replay import ReplayGuard


@dataclass
class MailClient:
    """A user's mail client."""

    identity: E2EIdentity
    provider: MailProvider
    e2e: E2EModule
    key_directory: dict[str, E2EPublicIdentity] = field(default_factory=dict)
    replay_guard: ReplayGuard = field(default_factory=ReplayGuard)
    _outgoing_sequence: dict[str, int] = field(default_factory=dict)
    _fetch_cursor: int = 0

    def __post_init__(self) -> None:
        self.provider.register_user(self.identity.address)

    @property
    def address(self) -> str:
        return self.identity.address

    # -- key directory ---------------------------------------------------------
    def learn_identity(self, public_identity: E2EPublicIdentity) -> None:
        """Record a peer's public keys (stand-in for key management, §7)."""
        self.key_directory[public_identity.address] = public_identity

    def lookup_identity(self, address: str) -> E2EPublicIdentity:
        identity = self.key_directory.get(address)
        if identity is None:
            raise MailError(f"no public keys known for {address}")
        return identity

    # -- sending ----------------------------------------------------------------
    def compose(self, recipient: str, subject: str, body: str) -> EmailMessage:
        """Build a message with the next per-recipient sequence number."""
        sequence = self._outgoing_sequence.get(recipient, 0)
        self._outgoing_sequence[recipient] = sequence + 1
        return EmailMessage(
            sender=self.address,
            recipient=recipient,
            subject=subject,
            body=body,
            sequence_number=sequence,
        )

    def send(self, message: EmailMessage, recipient_provider: MailProvider) -> EncryptedEmail:
        """Encrypt, sign and hand the email to the recipient's provider."""
        if message.sender != self.address:
            raise MailError("clients may only send email from their own address")
        recipient_public = self.lookup_identity(message.recipient)
        encrypted = self.e2e.encrypt_and_sign(message, self.identity, recipient_public)
        recipient_provider.accept_delivery(encrypted)
        return encrypted

    def send_new(
        self, recipient: str, subject: str, body: str, recipient_provider: MailProvider
    ) -> EncryptedEmail:
        """Compose-and-send convenience."""
        return self.send(self.compose(recipient, subject, body), recipient_provider)

    # -- receiving ------------------------------------------------------------------
    def pending_email_count(self) -> int:
        """Emails waiting at the provider beyond this client's fetch cursor."""
        return self.provider.pending_count(self.address, self._fetch_cursor)

    def fetch_and_decrypt(self, enforce_replay_guard: bool = True) -> list[EmailMessage]:
        """Fetch new encrypted emails from the provider, verify and decrypt them.

        Emails failing signature or integrity checks raise; emails flagged by
        the replay guard are silently dropped (they are duplicates by
        definition), matching the counters-and-windows defence of §4.4.
        """
        encrypted_emails = self.provider.fetch(self.address, self._fetch_cursor)
        self._fetch_cursor += len(encrypted_emails)
        decrypted = []
        for encrypted in encrypted_emails:
            sender_public = self.lookup_identity(encrypted.sender)
            message = self.e2e.verify_and_decrypt(encrypted, self.identity, sender_public)
            if enforce_replay_guard:
                if not self.replay_guard.would_accept(message.sender, message.sequence_number):
                    continue
                self.replay_guard.check_and_record(message.sender, message.sequence_number)
            decrypted.append(message)
        return decrypted
