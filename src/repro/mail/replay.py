"""Replay and duplicate suppression (§4.4, "Repetition and replay").

An adversarial provider could replay the same email to a client k times and
harvest ``k · log B`` output bits instead of ``log B``.  The paper's defence is
for the client to treat each sender as a lossy, duplicating channel and apply
standard duplicate detection — counters and windows — which is exactly what
:class:`ReplayGuard` implements.  Because sequence numbers only bind to a
sender once emails are signed, the guard is consulted *after* signature
verification (see :class:`repro.mail.client.MailClient`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ReplayError


@dataclass
class _SenderWindow:
    highest_seen: int = -1
    recent: set[int] = field(default_factory=set)


@dataclass
class ReplayGuard:
    """Per-sender sliding-window duplicate detector.

    Accepts each (sender, sequence number) pair at most once.  Sequence
    numbers may arrive out of order within ``window_size`` of the highest seen
    value; anything older than the window is rejected as a (possible) replay.
    """

    window_size: int = 1024
    _senders: dict[str, _SenderWindow] = field(default_factory=dict)

    def check_and_record(self, sender: str, sequence_number: int) -> None:
        """Record a fresh (sender, sequence) pair or raise :class:`ReplayError`."""
        if sequence_number < 0:
            raise ReplayError(f"negative sequence number from {sender}")
        window = self._senders.setdefault(sender, _SenderWindow())
        lower_bound = window.highest_seen - self.window_size
        if sequence_number <= lower_bound:
            raise ReplayError(
                f"sequence {sequence_number} from {sender} is older than the replay window"
            )
        if sequence_number in window.recent:
            raise ReplayError(f"duplicate email {sequence_number} from {sender}")
        window.recent.add(sequence_number)
        if sequence_number > window.highest_seen:
            window.highest_seen = sequence_number
            # Drop entries that fell out of the window.
            cutoff = window.highest_seen - self.window_size
            window.recent = {value for value in window.recent if value > cutoff}

    def would_accept(self, sender: str, sequence_number: int) -> bool:
        """Non-mutating variant of :meth:`check_and_record`."""
        window = self._senders.get(sender)
        if window is None:
            return sequence_number >= 0
        if sequence_number <= window.highest_seen - self.window_size:
            return False
        return sequence_number not in window.recent

    def seen_count(self, sender: str) -> int:
        window = self._senders.get(sender)
        return len(window.recent) if window else 0
