"""The spam-filtering function module's two-party protocol (§3.3, §4.1–§4.2).

Parties and phases follow Fig. 2 with the spam specialisation of §6.1:

*Setup phase* (once, amortised over many emails): the provider generates the
AHE key pair — optionally from a jointly derived seed (§3.3 footnote 3) —
quantizes and encrypts its two-column spam model, and ships the encrypted
model to the client, who stores it (the "client storage" cost of Fig. 8).

*Per email*: the client computes the two encrypted dot products (spam and
ham scores) over the decrypted email's features, blinds them, and sends one
packed ciphertext back.  The provider decrypts.  The two parties then run a
Yao comparison that removes the blinding and outputs a single bit — learned
by the client only (guarantee 2 of §4.4): is this email spam?

The same class implements the paper's Baseline (Paillier + legacy packing)
and Pretzel (XPIR-BV + across-row packing) arms; the benchmark harness just
instantiates it with different schemes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from repro.classify.model import QuantizedLinearModel
from repro.crypto.ahe import AHEKeyPair, AHEScheme
from repro.crypto.circuits import SpamCircuit
from repro.crypto.dh import DHGroup
from repro.crypto.packing import PackedLinearModel
from repro.crypto.yao import run_yao
from repro.exceptions import ProtocolError
from repro.twopc.blinding import blind_dot_products
from repro.twopc.channel import TwoPartyChannel

SparseVector = Mapping[int, int]

SPAM_COLUMN = 0
HAM_COLUMN = 1


@dataclass
class SpamSetup:
    """State produced by the setup phase."""

    keypair: AHEKeyPair                 # held by the provider
    encrypted_model: PackedLinearModel  # held by the client
    quantized_model: QuantizedLinearModel
    setup_network_bytes: int
    provider_setup_seconds: float

    def client_storage_bytes(self) -> int:
        """Client-side storage for the encrypted model (Fig. 8)."""
        return self.encrypted_model.storage_bytes()


@dataclass
class SpamProtocolResult:
    """Outcome and per-email costs of one protocol run."""

    is_spam: bool
    provider_seconds: float
    client_seconds: float
    network_bytes: int
    yao_and_gates: int


class SpamFilterProtocol:
    """Runs the spam-filtering 2PC between an in-process provider and client."""

    def __init__(
        self,
        scheme: AHEScheme,
        group: DHGroup,
        across_row_packing: bool = True,
        ot_mode: str = "iknp",
    ) -> None:
        self.scheme = scheme
        self.group = group
        self.across_row_packing = across_row_packing
        self.ot_mode = ot_mode
        self._circuit_cache: dict[int, SpamCircuit] = {}

    # -- setup phase -----------------------------------------------------------
    def setup(
        self,
        quantized_model: QuantizedLinearModel,
        joint_seed: bytes | None = None,
    ) -> SpamSetup:
        """Provider-side setup: key generation and model encryption."""
        if quantized_model.num_categories != 2:
            raise ProtocolError("the spam protocol needs a two-category model")
        if quantized_model.dot_product_bits >= self.scheme.slot_bits:
            raise ProtocolError(
                "dot products would overflow a slot; reduce bin/fin or raise slot_bits"
            )
        start = time.perf_counter()
        keypair = self.scheme.generate_keypair(seed=joint_seed)
        encrypted_model = PackedLinearModel.encrypt(
            self.scheme,
            keypair.public,
            quantized_model.matrix_rows(),
            across_rows=self.across_row_packing,
        )
        provider_seconds = time.perf_counter() - start
        setup_bytes = encrypted_model.storage_bytes() + keypair.public.size_bytes
        return SpamSetup(
            keypair=keypair,
            encrypted_model=encrypted_model,
            quantized_model=quantized_model,
            setup_network_bytes=setup_bytes,
            provider_setup_seconds=provider_seconds,
        )

    # -- per-email computation phase ------------------------------------------------
    def classify_email(
        self,
        setup: SpamSetup,
        features: SparseVector,
        channel: TwoPartyChannel | None = None,
    ) -> SpamProtocolResult:
        """Run the full per-email protocol and return the client's verdict."""
        channel = channel or TwoPartyChannel("spam")
        bytes_before = channel.total_bytes()
        model = setup.quantized_model
        dot_bits = model.dot_product_bits

        # --- client: encrypted dot products + blinding (Fig. 2 step 2) ----------
        client_start = time.perf_counter()
        sparse = model.sparse_features(features)
        dot_result = setup.encrypted_model.dot_products(sparse)
        blinded = blind_dot_products(
            self.scheme,
            setup.keypair.public,
            setup.encrypted_model,
            dot_result,
            output_columns=[SPAM_COLUMN, HAM_COLUMN],
            dot_bits=dot_bits,
        )
        client_seconds = time.perf_counter() - client_start
        channel.send("client", blinded.ciphertexts)

        # --- provider: decrypt the blinded dot products (Fig. 2 step 3) -----------
        received = channel.receive("provider")
        provider_start = time.perf_counter()
        decrypted = self.scheme.decrypt_slots_many(setup.keypair, received)
        spam_ct, spam_slot, spam_noise = blinded.output_noise[SPAM_COLUMN]
        ham_ct, ham_slot, ham_noise = blinded.output_noise[HAM_COLUMN]
        blinded_spam = decrypted[spam_ct][spam_slot]
        blinded_ham = decrypted[ham_ct][ham_slot]
        provider_seconds = time.perf_counter() - provider_start

        # --- Yao: unblind and compare; the client learns the bit (Fig. 2 step 4) ----
        circuit = self._spam_circuit(self.scheme.slot_bits)
        yao = run_yao(
            channel,
            circuit.circuit,
            garbler_bits=circuit.garbler_bits(blinded_spam, blinded_ham),
            evaluator_bits=circuit.evaluator_bits(spam_noise, ham_noise),
            group=self.group,
            output_to="evaluator",
            garbler_name="provider",
            evaluator_name="client",
            ot_mode=self.ot_mode,
        )
        is_spam = SpamCircuit.decode_output(yao.output_bits)
        return SpamProtocolResult(
            is_spam=is_spam,
            provider_seconds=provider_seconds + yao.garbler_seconds,
            client_seconds=client_seconds + yao.evaluator_seconds,
            network_bytes=channel.total_bytes() - bytes_before,
            yao_and_gates=yao.and_gates,
        )

    def _spam_circuit(self, width: int) -> SpamCircuit:
        cached = self._circuit_cache.get(width)
        if cached is None:
            cached = SpamCircuit.build(width)
            self._circuit_cache[width] = cached
        return cached
