"""The spam-filtering function module's two-party protocol (§3.3, §4.1–§4.2).

Parties and phases follow Fig. 2 with the spam specialisation of §6.1:

*Setup phase* (once, amortised over many emails): the provider generates the
AHE key pair — optionally from a jointly derived seed (§3.3 footnote 3) —
quantizes and encrypts its two-column spam model, and ships the encrypted
model to the client, who stores it (the "client storage" cost of Fig. 8).

*Per email*: the client computes the two encrypted dot products (spam and
ham scores) over the decrypted email's features, blinds them, and sends one
:class:`~repro.twopc.wire.BlindedScoresFrame`.  The provider decrypts.  The
two parties then run a Yao comparison that removes the blinding and outputs a
single bit — learned by the client only (guarantee 2 of §4.4): is this email
spam?

Both halves are reentrant :class:`~repro.twopc.session.ProtocolSession` state
machines.  :class:`SpamProviderSession` is purely reactive — it responds to
frames keyed by type, and its decrypt step is separable so the multi-user
serving loop (:mod:`repro.core.runtime`) can batch decrypts across many
concurrent email sessions.  :class:`SpamFilterProtocol` keeps the one-email
in-process driver interface: it pumps a client/provider session pair over a
framed loopback channel and reports exact byte, message and round counts.

The same classes implement the paper's Baseline (Paillier + legacy packing)
and Pretzel (XPIR-BV + across-row packing) arms; the benchmark harness just
instantiates them with different schemes.

The client's blinding step runs on the batched fabrication path: every noise
ciphertext for an email is produced by one
:meth:`~repro.crypto.ahe.AHEScheme.encrypt_slots_many` call and added in one
stacked pass (``spam_blinding_ms`` in the hotpath bench), so this module only
orchestrates frames — no per-ciphertext crypto loops live here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from repro.classify.model import QuantizedLinearModel
from repro.crypto.ahe import AHEKeyPair, AHEScheme
from repro.crypto.circuits import SpamCircuit
from repro.crypto.dh import DHGroup
from repro.crypto.ot import OtExtensionPool, initialize_ot_pool
from repro.crypto.packing import PackedLinearModel
from repro.crypto.yao import YaoEvaluatorSession, YaoGarblerSession
from repro.exceptions import ProtocolError
from repro.twopc.blinding import blind_dot_products
from repro.twopc.session import (
    BufferedProviderSession,
    DecryptionRequest,
    ProtocolSession,
    _restore_base_fields,
    decode_state_payload,
    encode_state_payload,
    run_session_pair,
)
from repro.twopc.transport import FramedChannel
from repro.twopc.wire import (
    BlindedScoresFrame,
    Frame,
    SessionState,
    SessionStateKind,
    WireCodec,
)

SESSION_STATE_VERSION = 1

SparseVector = Mapping[int, int]

SPAM_COLUMN = 0
HAM_COLUMN = 1


@dataclass
class SpamSetup:
    """State produced by the setup phase."""

    keypair: AHEKeyPair                 # held by the provider
    encrypted_model: PackedLinearModel  # held by the client
    quantized_model: QuantizedLinearModel
    setup_network_bytes: int
    provider_setup_seconds: float

    def client_storage_bytes(self) -> int:
        """Client-side storage for the encrypted model (Fig. 8)."""
        return self.encrypted_model.storage_bytes()


@dataclass
class SpamProtocolResult:
    """Outcome and per-email costs of one protocol run."""

    is_spam: bool
    provider_seconds: float
    client_seconds: float
    network_bytes: int
    yao_and_gates: int
    network_messages: int = 0
    network_rounds: int = 0


class SpamClientSession(ProtocolSession):
    """The client half: dot products + blinding, then the Yao evaluator role."""

    def __init__(
        self,
        protocol: "SpamFilterProtocol",
        setup: SpamSetup,
        features: SparseVector,
        ot_pool: OtExtensionPool | None = None,
    ) -> None:
        super().__init__()
        self.protocol = protocol
        self.setup = setup
        self.features = features
        self.ot_pool = ot_pool
        self.is_spam: bool | None = None
        self.yao_and_gates = 0
        self._yao: YaoEvaluatorSession | None = None

    def _start(self) -> list[Frame]:
        setup = self.setup
        protocol = self.protocol
        model = setup.quantized_model
        sparse = model.sparse_features(self.features)
        dot_result = setup.encrypted_model.dot_products(sparse)
        blinded = blind_dot_products(
            protocol.scheme,
            setup.keypair.public,
            setup.encrypted_model,
            dot_result,
            output_columns=[SPAM_COLUMN, HAM_COLUMN],
            dot_bits=model.dot_product_bits,
        )
        _, _, spam_noise = blinded.output_noise[SPAM_COLUMN]
        _, _, ham_noise = blinded.output_noise[HAM_COLUMN]
        circuit = protocol._spam_circuit(protocol.scheme.slot_bits)
        self.yao_and_gates = circuit.circuit.and_count
        self._yao = YaoEvaluatorSession(
            circuit.circuit,
            circuit.evaluator_bits(spam_noise, ham_noise),
            protocol.group,
            output_to="evaluator",
            ot_mode=protocol.ot_mode,
            ot_pool=self.ot_pool,
        )
        return [BlindedScoresFrame(tuple(blinded.ciphertexts))] + self._yao.start()

    def _handle(self, frame: Frame) -> list[Frame]:
        assert self._yao is not None
        frames = self._yao.handle(frame)
        if self._yao.finished:
            assert self._yao.output_bits is not None
            self.is_spam = SpamCircuit.decode_output(self._yao.output_bits)
            self.finished = True
        return frames

    # -- session persistence --------------------------------------------------
    def snapshot(self) -> SessionState:
        return SessionState(
            kind=SessionStateKind.SPAM_CLIENT,
            version=SESSION_STATE_VERSION,
            payload=encode_state_payload(
                started=self.started,
                finished=self.finished,
                seconds=self.seconds,
                features=[
                    [int(index), int(count)] for index, count in sorted(self.features.items())
                ],
                is_spam=self.is_spam,
                yao_and_gates=self.yao_and_gates,
                yao=None if self._yao is None else self._yao.snapshot().to_bytes(),
            ),
        )

    @classmethod
    def restore(
        cls,
        protocol: "SpamFilterProtocol",
        setup: SpamSetup,
        state: SessionState,
        ot_pool: OtExtensionPool | None = None,
    ) -> "SpamClientSession":
        payload = decode_state_payload(
            state, SessionStateKind.SPAM_CLIENT, SESSION_STATE_VERSION
        )
        session = cls(
            protocol,
            setup,
            {int(index): int(count) for index, count in payload["features"]},
            ot_pool=ot_pool,
        )
        _restore_base_fields(session, payload)
        session.is_spam = payload["is_spam"]
        session.yao_and_gates = int(payload["yao_and_gates"])
        if payload["yao"] is not None:
            circuit = protocol._spam_circuit(protocol.scheme.slot_bits)
            session._yao = YaoEvaluatorSession.restore(
                SessionState.from_bytes(payload["yao"]),
                circuit.circuit,
                protocol.group,
                ot_pool=ot_pool,
            )
        return session


class SpamProviderSession(BufferedProviderSession):
    """The provider half: a reactive, reentrant request/response handler.

    State machine: AWAIT_SCORES --(BlindedScoresFrame)--> DECRYPTING
    --(supplied slots)--> YAO (garbler) --> finished.  The park/buffer/replay
    mechanics live in :class:`BufferedProviderSession`.
    """

    def __init__(
        self,
        protocol: "SpamFilterProtocol",
        setup: SpamSetup,
        ot_pool: OtExtensionPool | None = None,
    ) -> None:
        super().__init__()
        self.protocol = protocol
        self.setup = setup
        self.ot_pool = ot_pool

    def _is_request(self, frame: Frame) -> bool:
        return isinstance(frame, BlindedScoresFrame)

    def _handle_request(self, frame: BlindedScoresFrame) -> list[Frame]:
        expected = self.setup.encrypted_model.result_ciphertext_count()
        if len(frame.ciphertexts) != expected:
            raise ProtocolError(
                f"expected {expected} blinded score ciphertexts, got {len(frame.ciphertexts)}"
            )
        self._decryption_request = DecryptionRequest(
            scheme=self.protocol.scheme,
            keypair=self.setup.keypair,
            ciphertexts=list(frame.ciphertexts),
        )
        return []

    def _build_inner_session(self, slot_lists: list[list[int]]) -> YaoGarblerSession:
        setup = self.setup
        protocol = self.protocol
        slot_map = setup.encrypted_model.column_slot_map()
        spam_ct, spam_slot = slot_map[SPAM_COLUMN]
        ham_ct, ham_slot = slot_map[HAM_COLUMN]
        blinded_spam = slot_lists[spam_ct][spam_slot]
        blinded_ham = slot_lists[ham_ct][ham_slot]
        circuit = protocol._spam_circuit(protocol.scheme.slot_bits)
        return YaoGarblerSession(
            circuit.circuit,
            circuit.garbler_bits(blinded_spam, blinded_ham),
            protocol.group,
            output_to="evaluator",
            ot_mode=protocol.ot_mode,
            ot_pool=self.ot_pool,
        )

    # -- session persistence (hooks for the shared provider snapshot) ---------
    _state_kind = SessionStateKind.SPAM_PROVIDER

    def _state_codec(self) -> WireCodec:
        return WireCodec(self.protocol.scheme, self.setup.keypair.public)

    def _pending_scheme(self):
        return self.protocol.scheme

    def _pending_keypair(self):
        return self.setup.keypair

    def _restore_inner(self, state: SessionState) -> YaoGarblerSession:
        circuit = self.protocol._spam_circuit(self.protocol.scheme.slot_bits)
        return YaoGarblerSession.restore(
            state, circuit.circuit, self.protocol.group, ot_pool=self.ot_pool
        )

    @classmethod
    def restore(
        cls,
        protocol: "SpamFilterProtocol",
        setup: SpamSetup,
        state: SessionState,
        ot_pool: OtExtensionPool | None = None,
    ) -> "SpamProviderSession":
        session = cls(protocol, setup, ot_pool=ot_pool)
        session._restore_common(state)
        return session


class SpamFilterProtocol:
    """Builds and drives the spam-filtering 2PC between a provider and a client."""

    def __init__(
        self,
        scheme: AHEScheme,
        group: DHGroup,
        across_row_packing: bool = True,
        ot_mode: str = "iknp",
    ) -> None:
        self.scheme = scheme
        self.group = group
        self.across_row_packing = across_row_packing
        self.ot_mode = ot_mode
        self._circuit_cache: dict[int, SpamCircuit] = {}

    # -- setup phase -----------------------------------------------------------
    def setup(
        self,
        quantized_model: QuantizedLinearModel,
        joint_seed: bytes | None = None,
    ) -> SpamSetup:
        """Provider-side setup: key generation and model encryption."""
        if quantized_model.num_categories != 2:
            raise ProtocolError("the spam protocol needs a two-category model")
        if quantized_model.dot_product_bits >= self.scheme.slot_bits:
            raise ProtocolError(
                "dot products would overflow a slot; reduce bin/fin or raise slot_bits"
            )
        start = time.perf_counter()
        keypair = self.scheme.generate_keypair(seed=joint_seed)
        encrypted_model = PackedLinearModel.encrypt(
            self.scheme,
            keypair.public,
            quantized_model.matrix_rows(),
            across_rows=self.across_row_packing,
        )
        provider_seconds = time.perf_counter() - start
        setup_bytes = encrypted_model.storage_bytes() + keypair.public.size_bytes
        return SpamSetup(
            keypair=keypair,
            encrypted_model=encrypted_model,
            quantized_model=quantized_model,
            setup_network_bytes=setup_bytes,
            provider_setup_seconds=provider_seconds,
        )

    # -- session construction -----------------------------------------------------
    def make_channel(self, setup: SpamSetup, name: str = "spam") -> FramedChannel:
        """A loopback channel whose codec can carry this setup's ciphertexts."""
        return FramedChannel.loopback(
            name, scheme=self.scheme, public_key=setup.keypair.public
        )

    def make_ot_pool(
        self, setup: SpamSetup, channel: FramedChannel | None = None
    ) -> OtExtensionPool:
        """Run the one-time per-pair OT-extension handshake (base OTs).

        In the spam arrangement the provider garbles, so the provider is the
        extension sender.  The pool is pair-level state like the encrypted
        model: pay the base OTs once, then every email's Yao step needs only
        symmetric work (the amortisation IKNP exists for).
        """
        channel = channel or self.make_channel(setup, name="spam-ot-setup")
        return initialize_ot_pool(
            self.group, channel, sender_name="provider", receiver_name="client"
        )

    def client_session(
        self,
        setup: SpamSetup,
        features: SparseVector,
        ot_pool: OtExtensionPool | None = None,
    ) -> SpamClientSession:
        return SpamClientSession(self, setup, features, ot_pool=ot_pool)

    def provider_session(
        self, setup: SpamSetup, ot_pool: OtExtensionPool | None = None
    ) -> SpamProviderSession:
        return SpamProviderSession(self, setup, ot_pool=ot_pool)

    # -- per-email computation phase ------------------------------------------------
    def classify_email(
        self,
        setup: SpamSetup,
        features: SparseVector,
        channel: FramedChannel | None = None,
        ot_pool: OtExtensionPool | None = None,
    ) -> SpamProtocolResult:
        """Run the full per-email protocol in-process; returns the client's verdict.

        The *channel*'s parties must be ``("client", "provider")`` and its
        codec must know the protocol's scheme (see :meth:`make_channel`).
        Without an *ot_pool* every email pays fresh base OTs (the one-shot
        baseline); a pool from :meth:`make_ot_pool` amortises them away.
        """
        channel = channel or self.make_channel(setup)
        bytes_before = channel.total_bytes()
        messages_before = channel.total_messages()
        rounds_before = channel.rounds()
        client = self.client_session(setup, features, ot_pool=ot_pool)
        provider = self.provider_session(setup, ot_pool=ot_pool)
        run_session_pair(channel, {"client": client, "provider": provider})
        assert client.is_spam is not None
        return SpamProtocolResult(
            is_spam=client.is_spam,
            provider_seconds=provider.seconds,
            client_seconds=client.seconds,
            network_bytes=channel.total_bytes() - bytes_before,
            yao_and_gates=client.yao_and_gates,
            network_messages=channel.total_messages() - messages_before,
            network_rounds=channel.rounds() - rounds_before,
        )

    def _spam_circuit(self, width: int) -> SpamCircuit:
        cached = self._circuit_cache.get(width)
        if cached is None:
            cached = SpamCircuit.build(width)
            self._circuit_cache[width] = cached
        return cached
