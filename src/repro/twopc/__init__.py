"""Two-party protocols: the baseline Yao+GLLM hybrid and Pretzel's refinements.

* :mod:`repro.twopc.channel` — in-process two-party channel with exact byte
  accounting (the evaluation's "network transfers" columns).
* :mod:`repro.twopc.gllm` — secure dot products over packed AHE ciphertexts
  (GLLM [55], Fig. 2 steps 1–3).
* :mod:`repro.twopc.spam` — spam-filtering protocol: dot products + blinding +
  a Yao threshold comparison; client learns the 1-bit verdict (§3.3, §4.1–4.2).
* :mod:`repro.twopc.topics` — decomposed topic extraction: the client prunes
  to B' candidate topics, extracts and blinds those dot products, and a Yao
  argmax reveals only the winning topic index to the provider (§4.3, Fig. 5).
* :mod:`repro.twopc.noprv` — the NoPriv baseline: the provider classifies
  plaintext directly (the status quo the paper compares against).
"""

from repro.twopc.channel import TwoPartyChannel
from repro.twopc.noprv import NoPrivClassifier
from repro.twopc.spam import SpamFilterProtocol, SpamProtocolResult
from repro.twopc.topics import TopicExtractionProtocol, TopicProtocolResult

__all__ = [
    "TwoPartyChannel",
    "NoPrivClassifier",
    "SpamFilterProtocol",
    "SpamProtocolResult",
    "TopicExtractionProtocol",
    "TopicProtocolResult",
]
