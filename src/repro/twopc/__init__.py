"""Two-party protocols: the baseline Yao+GLLM hybrid and Pretzel's refinements.

The protocol stack is message-driven: typed wire frames
(:mod:`repro.twopc.wire`) travel over a transport abstraction
(:mod:`repro.twopc.transport`), and each protocol party is a reentrant state
machine (:mod:`repro.twopc.session`), so byte accounting is exact and the
provider halves multiplex across many concurrent email sessions.

* :mod:`repro.twopc.wire` — typed, versioned protocol frames with real
  ``to_bytes``/``from_bytes`` codecs for everything that crosses parties.
* :mod:`repro.twopc.transport` — :class:`Transport` (loopback and socket
  implementations) plus :class:`FramedChannel`, the typed-frame channel with
  per-party byte/message/round ledgers (the evaluation's "network transfers"
  columns).
* :mod:`repro.twopc.session` — the :class:`ProtocolSession` state-machine
  contract and the in-process session-pair driver.
* :mod:`repro.twopc.spam` — spam-filtering protocol: dot products + blinding +
  a Yao threshold comparison; client learns the 1-bit verdict (§3.3, §4.1–4.2).
* :mod:`repro.twopc.topics` — decomposed topic extraction: the client prunes
  to B' candidate topics, extracts and blinds those dot products, and a Yao
  argmax reveals only the winning topic index to the provider (§4.3, Fig. 5).
* :mod:`repro.twopc.noprv` — the NoPriv baseline: the provider classifies
  plaintext directly (the status quo the paper compares against).
* :mod:`repro.twopc.reliable` — the ack/retransmit layer: exactly-once
  in-order frames over lossy transports (sequence numbers, CRC32, cumulative
  acks), plus :class:`FaultyTransport` in :mod:`repro.twopc.transport`, the
  seeded fault injector the chaos suite drives it with.
* :mod:`repro.twopc.channel` — a legacy untyped in-process channel kept for
  tests and ad-hoc size estimates.
"""

# The protocol modules import crypto modules that in turn build on the wire /
# transport / session layers of this package, so the package initialiser must
# not import the protocol modules eagerly (that would close an import cycle
# through a half-initialised repro.crypto.ot).  Names resolve lazily instead
# (PEP 562): `from repro.twopc import SpamFilterProtocol` works as before.
from importlib import import_module

_EXPORTS = {
    "TwoPartyChannel": "repro.twopc.channel",
    "NoPrivClassifier": "repro.twopc.noprv",
    "SpamFilterProtocol": "repro.twopc.spam",
    "SpamProtocolResult": "repro.twopc.spam",
    "TopicExtractionProtocol": "repro.twopc.topics",
    "TopicProtocolResult": "repro.twopc.topics",
    "ProtocolSession": "repro.twopc.session",
    "DecryptingSession": "repro.twopc.session",
    "BufferedProviderSession": "repro.twopc.session",
    "DecryptionRequest": "repro.twopc.session",
    "SessionJob": "repro.twopc.session",
    "SessionLoop": "repro.twopc.session",
    "AsyncSessionPump": "repro.twopc.session",
    "run_session_pair": "repro.twopc.session",
    "SessionState": "repro.twopc.wire",
    "SessionStateFrame": "repro.twopc.wire",
    "SessionStateKind": "repro.twopc.wire",
    "Transport": "repro.twopc.transport",
    "LoopbackTransport": "repro.twopc.transport",
    "SocketTransport": "repro.twopc.transport",
    "FramedChannel": "repro.twopc.transport",
    "FaultSpec": "repro.twopc.transport",
    "FaultEvent": "repro.twopc.transport",
    "FaultKind": "repro.twopc.transport",
    "FaultyTransport": "repro.twopc.transport",
    "AsyncFaultyTransport": "repro.twopc.transport",
    "ReliableChannel": "repro.twopc.reliable",
    "AsyncReliableTransport": "repro.twopc.reliable",
    "WireCodec": "repro.twopc.wire",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value
