"""Blinding of homomorphic dot-product results (Fig. 2 step 2, Fig. 5 step 3).

Before the client returns any ciphertext to the provider it adds noise so the
decrypted values reveal nothing beyond what the subsequent Yao step is meant
to output:

* *output slots* (the ones carrying real dot products the protocol will
  unblind inside Yao) get additive noise the client remembers;
* every *other* slot — including the garbage slots produced by the across-row
  shift-and-add — gets full-range noise the client forgets, so decryption of
  those slots is statistically meaningless.

If the scheme's slot arithmetic is modular (XPIR-BV: slots are coefficients
mod ``t = 2^slot_bits``), the output-slot noise is drawn uniformly over the
whole slot, giving perfect hiding; the Yao circuit removes it with a
subtraction mod ``2^slot_bits``.  For Paillier the slots are bit fields in one
big integer and a full-range addition could carry into the neighbouring slot,
so the noise is limited to ``slot_bits - 1`` bits (value + noise still fits in
the slot), giving statistical hiding with the guard bits of Fig. 3's ``δ``.

Performance model (the client hot path behind ``topic_candidate_blinding_ms``):
both entry points are *vectorised fabrication* — candidate extraction is one
stacked gather plus a batched cached-monomial multiply
(:meth:`~repro.crypto.ahe.AHEScheme.extract_shift_many`), all noise ciphertexts
for a call are fabricated by one
:meth:`~repro.crypto.ahe.AHEScheme.encrypt_slots_many` (for XPIR-BV: a single
``(3B', primes, n)`` forward-NTT pass and one bulk randomness read), and the final
blinding additions are one stacked
:meth:`~repro.crypto.ahe.AHEScheme.add_many`.  Schemes without array
ciphertexts (Paillier) run the same code through the base-class loop
fallbacks.

Randomness draw order is canonical and shared with the ``*_reference``
per-candidate loops below, so the batched paths are pinned bit-identical to
the loops under a seeded PRG:

1. every full-range slot-noise vector, in one ``secure_uniform_array`` call,
   ordered by blinded-ciphertext position;
2. every recorded output-slot noise, in one ``secure_uniform_array`` call, in
   output order (this replaces the former per-output-slot ``secure_randbelow``
   loop);
3. the noise-ciphertext encryption randomness, consumed by the scheme in
   per-ciphertext chunks (see :meth:`repro.crypto.bv.BVScheme.encrypt_slots`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.ahe import AHECiphertext, AHEPublicKey, AHEScheme
from repro.crypto.packing import DotProductCiphertexts, PackedLinearModel
from repro.exceptions import ProtocolError
from repro.utils.rand import secure_uniform_array


def _noise_bound(scheme: AHEScheme, dot_bits: int) -> int:
    """Exclusive upper bound for output-slot blinding noise."""
    if getattr(scheme, "supports_slot_shift", False):
        # Modular slot arithmetic (XPIR-BV): uniform over the whole slot.
        return scheme.slot_modulus
    guard_bound = 1 << (scheme.slot_bits - 1)
    if dot_bits >= scheme.slot_bits - 1:
        raise ProtocolError(
            "dot products leave no guard bits for blinding under this scheme"
        )
    return guard_bound


@dataclass
class BlindedResult:
    """Blinded ciphertexts plus the client-side record of the output noises."""

    ciphertexts: list[AHECiphertext]
    # column index -> (ciphertext position in `ciphertexts`, slot, noise value)
    output_noise: dict[int, tuple[int, int, int]]

    def network_bytes(self) -> int:
        return sum(ct.size_bytes for ct in self.ciphertexts)


def _encrypt_noise_vectors(
    scheme: AHEScheme,
    public_key: AHEPublicKey,
    noise_matrix: np.ndarray,
    prg,
) -> list[AHECiphertext]:
    """Fabricate all noise ciphertexts for one blinding call in one batch."""
    if prg is None:
        return scheme.encrypt_slots_many(public_key, noise_matrix)
    # Deterministic mode (bit-identity tests): only schemes whose batched
    # encryption accepts a shared stream (XPIR-BV) can honour it.
    return scheme.encrypt_slots_many(public_key, noise_matrix, prg=prg)


def _dot_product_noise_plan(
    scheme: AHEScheme,
    model: PackedLinearModel,
    num_ciphertexts: int,
    output_columns: list[int],
    dot_bits: int,
    prg,
) -> tuple[np.ndarray, dict[int, tuple[int, int, int]]]:
    """Draw every noise value for :func:`blind_dot_products` (canonical order)."""
    slot_map = model.column_slot_map()
    for column in set(output_columns):
        if column not in slot_map:
            raise ProtocolError(f"column {column} is not part of the model")
    bound = _noise_bound(scheme, dot_bits)
    full_range = scheme.slot_modulus
    num_slots = scheme.num_slots
    # Group requested columns by the ciphertext that carries them.
    per_ciphertext: dict[int, dict[int, int]] = {}
    for column in output_columns:
        ct_index, slot = slot_map[column]
        per_ciphertext.setdefault(ct_index, {})[slot] = column
    # Draw order 1: full-range noise for every slot of every ciphertext.
    noise_matrix = secure_uniform_array(
        full_range, num_ciphertexts * num_slots, prg
    ).reshape(num_ciphertexts, num_slots)
    # Draw order 2: all recorded output-slot noises in one vectorised call,
    # ordered by ciphertext position then slot insertion order.
    outputs = [
        (ct_index, slot, column)
        for ct_index in range(num_ciphertexts)
        for slot, column in per_ciphertext.get(ct_index, {}).items()
    ]
    recorded = secure_uniform_array(bound, len(outputs), prg)
    output_noise: dict[int, tuple[int, int, int]] = {}
    for (ct_index, slot, column), noise in zip(outputs, recorded):
        noise_matrix[ct_index, slot] = noise
        output_noise[column] = (ct_index, slot, int(noise))
    return noise_matrix, output_noise


def blind_dot_products(
    scheme: AHEScheme,
    public_key: AHEPublicKey,
    model: PackedLinearModel,
    result: DotProductCiphertexts,
    output_columns: list[int],
    dot_bits: int,
    prg=None,
) -> BlindedResult:
    """Blind all result ciphertexts (spam filtering and B' = B topics).

    Every slot of every result ciphertext receives noise; the noise added to
    the slots carrying *output_columns* is recorded so the client can cancel
    it inside Yao.  All noise ciphertexts are fabricated in one batched
    encryption and added in one stacked pass.  *prg* (tests only) makes every
    draw deterministic; see the module docstring for the draw order.
    """
    ciphertexts = result.all_ciphertexts()
    noise_matrix, output_noise = _dot_product_noise_plan(
        scheme, model, len(ciphertexts), output_columns, dot_bits, prg
    )
    noise_ciphertexts = _encrypt_noise_vectors(scheme, public_key, noise_matrix, prg)
    blinded = scheme.add_many(ciphertexts, noise_ciphertexts)
    return BlindedResult(ciphertexts=blinded, output_noise=output_noise)


def blind_dot_products_reference(
    scheme: AHEScheme,
    public_key: AHEPublicKey,
    model: PackedLinearModel,
    result: DotProductCiphertexts,
    output_columns: list[int],
    dot_bits: int,
    prg=None,
) -> BlindedResult:
    """Per-ciphertext loop reference for :func:`blind_dot_products`.

    Same noise plan (identical draw order), but each noise ciphertext is
    encrypted on its own and added with a scalar :meth:`add` — the correctness
    pin the bit-identity tests compare the batched path against.
    """
    ciphertexts = result.all_ciphertexts()
    noise_matrix, output_noise = _dot_product_noise_plan(
        scheme, model, len(ciphertexts), output_columns, dot_bits, prg
    )
    blinded = []
    for ciphertext, noise_row in zip(ciphertexts, noise_matrix):
        noise_vector = [int(value) for value in noise_row]
        if prg is None:
            noise_ciphertext = scheme.encrypt_slots(public_key, noise_vector)
        else:
            noise_ciphertext = scheme.encrypt_slots(public_key, noise_vector, prg=prg)
        blinded.append(scheme.add(ciphertext, noise_ciphertext))
    return BlindedResult(ciphertexts=blinded, output_noise=output_noise)


def _candidate_noise_plan(
    scheme: AHEScheme,
    model: PackedLinearModel,
    candidate_columns: list[int],
    dot_bits: int,
    prg,
) -> tuple[list[int], list[int], np.ndarray, dict[int, tuple[int, int, int]]]:
    """Resolve candidate locations and draw every noise value (canonical order)."""
    if not scheme.supports_slot_shift:
        raise ProtocolError("candidate extraction requires a slot-shifting AHE scheme")
    slot_map = model.column_slot_map()
    extraction_slot = scheme.num_slots - 1
    indices: list[int] = []
    shifts: list[int] = []
    for column in candidate_columns:
        if column not in slot_map:
            raise ProtocolError(f"candidate column {column} is not part of the model")
        ct_index, slot = slot_map[column]
        indices.append(ct_index)
        shifts.append(extraction_slot - slot)
    bound = _noise_bound(scheme, dot_bits)
    full_range = scheme.slot_modulus
    num_slots = scheme.num_slots
    count = len(candidate_columns)
    # Draw order 1: full-range noise for every slot of every candidate copy.
    noise_matrix = secure_uniform_array(full_range, count * num_slots, prg).reshape(
        count, num_slots
    )
    # Draw order 2: all recorded extraction-slot noises in one call.
    recorded = secure_uniform_array(bound, count, prg)
    output_noise: dict[int, tuple[int, int, int]] = {}
    for position, column in enumerate(candidate_columns):
        noise_matrix[position, extraction_slot] = recorded[position]
        output_noise[column] = (position, extraction_slot, int(recorded[position]))
    return indices, shifts, noise_matrix, output_noise


def blind_extracted_candidates(
    scheme: AHEScheme,
    public_key: AHEPublicKey,
    model: PackedLinearModel,
    result: DotProductCiphertexts,
    candidate_columns: list[int],
    dot_bits: int,
    prg=None,
) -> BlindedResult:
    """Pretzel's candidate extraction + blinding (Fig. 5 step 3, §4.3).

    For each candidate topic the client copies the packed ciphertext holding
    that topic's dot product, homomorphically shifts the value to the *top*
    slot (the fixed extraction slot), and blinds: the extraction slot with
    recorded noise, everything else with full-range noise.  The provider
    therefore learns exactly B' blinded values and nothing about which
    columns they came from.

    The whole batch is three vectorised scheme calls: one stacked
    gather-and-shift over the source ciphertexts, one batched fabrication of
    all B' noise ciphertexts, and one stacked addition.
    """
    ciphertexts = result.all_ciphertexts()
    indices, shifts, noise_matrix, output_noise = _candidate_noise_plan(
        scheme, model, candidate_columns, dot_bits, prg
    )
    extracted = scheme.extract_shift_many(ciphertexts, indices, shifts)
    noise_ciphertexts = _encrypt_noise_vectors(scheme, public_key, noise_matrix, prg)
    blinded = scheme.add_many(extracted, noise_ciphertexts)
    return BlindedResult(ciphertexts=blinded, output_noise=output_noise)


def blind_extracted_candidates_reference(
    scheme: AHEScheme,
    public_key: AHEPublicKey,
    model: PackedLinearModel,
    result: DotProductCiphertexts,
    candidate_columns: list[int],
    dot_bits: int,
    prg=None,
) -> BlindedResult:
    """Per-candidate loop reference for :func:`blind_extracted_candidates`.

    Same noise plan (identical draw order), but every candidate runs the
    scalar :meth:`shift_up` → :meth:`encrypt_slots` → :meth:`add` chain — the
    correctness pin for the vectorised path.
    """
    ciphertexts = result.all_ciphertexts()
    indices, shifts, noise_matrix, output_noise = _candidate_noise_plan(
        scheme, model, candidate_columns, dot_bits, prg
    )
    blinded = []
    for ct_index, shift, noise_row in zip(indices, shifts, noise_matrix):
        extracted = ciphertexts[ct_index]
        if shift:
            extracted = scheme.shift_up(extracted, shift)
        noise_vector = [int(value) for value in noise_row]
        if prg is None:
            noise_ciphertext = scheme.encrypt_slots(public_key, noise_vector)
        else:
            noise_ciphertext = scheme.encrypt_slots(public_key, noise_vector, prg=prg)
        blinded.append(scheme.add(extracted, noise_ciphertext))
    return BlindedResult(ciphertexts=blinded, output_noise=output_noise)


def unblind_reference(blinded_value: int, noise: int, scheme: AHEScheme) -> int:
    """Plaintext unblinding used by tests: ``(blinded - noise) mod 2^slot_bits``."""
    return (blinded_value - noise) % scheme.slot_modulus
