"""Blinding of homomorphic dot-product results (Fig. 2 step 2, Fig. 5 step 3).

Before the client returns any ciphertext to the provider it adds noise so the
decrypted values reveal nothing beyond what the subsequent Yao step is meant
to output:

* *output slots* (the ones carrying real dot products the protocol will
  unblind inside Yao) get additive noise the client remembers;
* every *other* slot — including the garbage slots produced by the across-row
  shift-and-add — gets full-range noise the client forgets, so decryption of
  those slots is statistically meaningless.

If the scheme's slot arithmetic is modular (XPIR-BV: slots are coefficients
mod ``t = 2^slot_bits``), the output-slot noise is drawn uniformly over the
whole slot, giving perfect hiding; the Yao circuit removes it with a
subtraction mod ``2^slot_bits``.  For Paillier the slots are bit fields in one
big integer and a full-range addition could carry into the neighbouring slot,
so the noise is limited to ``slot_bits - 1`` bits (value + noise still fits in
the slot), giving statistical hiding with the guard bits of Fig. 3's ``δ``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ahe import AHECiphertext, AHEPublicKey, AHEScheme
from repro.crypto.packing import DotProductCiphertexts, PackedLinearModel
from repro.exceptions import ProtocolError
from repro.utils.rand import secure_randbelow, secure_uniform_ints


def _noise_bound(scheme: AHEScheme, dot_bits: int) -> int:
    """Exclusive upper bound for output-slot blinding noise."""
    if getattr(scheme, "supports_slot_shift", False):
        # Modular slot arithmetic (XPIR-BV): uniform over the whole slot.
        return scheme.slot_modulus
    guard_bound = 1 << (scheme.slot_bits - 1)
    if dot_bits >= scheme.slot_bits - 1:
        raise ProtocolError(
            "dot products leave no guard bits for blinding under this scheme"
        )
    return guard_bound


@dataclass
class BlindedResult:
    """Blinded ciphertexts plus the client-side record of the output noises."""

    ciphertexts: list[AHECiphertext]
    # column index -> (ciphertext position in `ciphertexts`, slot, noise value)
    output_noise: dict[int, tuple[int, int, int]]

    def network_bytes(self) -> int:
        return sum(ct.size_bytes for ct in self.ciphertexts)


def blind_dot_products(
    scheme: AHEScheme,
    public_key: AHEPublicKey,
    model: PackedLinearModel,
    result: DotProductCiphertexts,
    output_columns: list[int],
    dot_bits: int,
) -> BlindedResult:
    """Blind all result ciphertexts in place (spam filtering and B' = B topics).

    Every slot of every result ciphertext receives noise; the noise added to
    the slots carrying *output_columns* is recorded so the client can cancel
    it inside Yao.
    """
    slot_map = model.column_slot_map()
    wanted = set(output_columns)
    for column in wanted:
        if column not in slot_map:
            raise ProtocolError(f"column {column} is not part of the model")
    ciphertexts = result.all_ciphertexts()
    bound = _noise_bound(scheme, dot_bits)
    full_range = scheme.slot_modulus
    output_noise: dict[int, tuple[int, int, int]] = {}
    # Group requested columns by the ciphertext that carries them.
    per_ciphertext: dict[int, dict[int, int]] = {}
    for column in output_columns:
        ct_index, slot = slot_map[column]
        per_ciphertext.setdefault(ct_index, {})[slot] = column
    blinded = []
    for ct_index, ciphertext in enumerate(ciphertexts):
        slots_here = per_ciphertext.get(ct_index, {})
        # Full-range noise for every slot in one vectorised draw; the few
        # output slots are re-drawn from [0, bound) and recorded.
        noise_vector = secure_uniform_ints(full_range, scheme.num_slots)
        for slot, column in slots_here.items():
            noise = secure_randbelow(bound)
            noise_vector[slot] = noise
            output_noise[column] = (ct_index, slot, noise)
        noise_ciphertext = scheme.encrypt_slots(public_key, noise_vector)
        blinded.append(scheme.add(ciphertext, noise_ciphertext))
    return BlindedResult(ciphertexts=blinded, output_noise=output_noise)


def blind_extracted_candidates(
    scheme: AHEScheme,
    public_key: AHEPublicKey,
    model: PackedLinearModel,
    result: DotProductCiphertexts,
    candidate_columns: list[int],
    dot_bits: int,
) -> BlindedResult:
    """Pretzel's candidate extraction + blinding (Fig. 5 step 3, §4.3).

    For each candidate topic the client copies the packed ciphertext holding
    that topic's dot product, homomorphically shifts the value to the *top*
    slot (the fixed extraction slot), and blinds: the extraction slot with
    recorded noise, everything else with full-range noise.  The provider
    therefore learns exactly B' blinded values and nothing about which
    columns they came from.
    """
    if not scheme.supports_slot_shift:
        raise ProtocolError("candidate extraction requires a slot-shifting AHE scheme")
    slot_map = model.column_slot_map()
    ciphertexts = result.all_ciphertexts()
    extraction_slot = scheme.num_slots - 1
    bound = _noise_bound(scheme, dot_bits)
    full_range = scheme.slot_modulus
    blinded = []
    output_noise: dict[int, tuple[int, int, int]] = {}
    for position, column in enumerate(candidate_columns):
        if column not in slot_map:
            raise ProtocolError(f"candidate column {column} is not part of the model")
        ct_index, slot = slot_map[column]
        extracted = ciphertexts[ct_index]
        shift = extraction_slot - slot
        if shift:
            extracted = scheme.shift_up(extracted, shift)
        noise_vector = secure_uniform_ints(full_range, scheme.num_slots)
        recorded = secure_randbelow(bound)
        noise_vector[extraction_slot] = recorded
        noise_ciphertext = scheme.encrypt_slots(public_key, noise_vector)
        blinded.append(scheme.add(extracted, noise_ciphertext))
        output_noise[column] = (position, extraction_slot, recorded)
    return BlindedResult(ciphertexts=blinded, output_noise=output_noise)


def unblind_reference(blinded_value: int, noise: int, scheme: AHEScheme) -> int:
    """Plaintext unblinding used by tests: ``(blinded - noise) mod 2^slot_bits``."""
    return (blinded_value - noise) % scheme.slot_modulus
