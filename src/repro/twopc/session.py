"""Protocol sessions: reentrant, message-driven party state machines.

Every party of every two-party protocol in this repository is a
:class:`ProtocolSession`: it emits zero or more frames when the session
starts, and thereafter reacts to each incoming frame with zero or more
response frames.  Nothing inside a session blocks — all waiting lives in
whatever drives the session — so a provider can interleave thousands of
sessions (one per in-flight email) over one process, which is what the
multi-user serving loop of :mod:`repro.core.runtime` does.

Provider halves that decrypt AHE ciphertexts additionally split the decrypt
step out of :meth:`ProtocolSession.handle` (see :class:`DecryptingSession`):
the session *requests* a decryption and is later *supplied* with the slot
values, so the loop can fold requests across sessions into one
``decrypt_slots_many`` call — the provider-side amortisation of Figs. 7/10.

:class:`SessionLoop` is the single frame pump every in-process driver shares;
a one-email run (:func:`run_session_pair`) and the multi-user serving loop
(:class:`repro.core.runtime.ProviderRuntime`) are the same loop over one job
or many.  :class:`AsyncSessionPump` is the cross-process counterpart: it
drives *one party's* sessions over asyncio TCP channels
(:class:`repro.twopc.transport.AsyncTcpTransport`), with the same
windowed cross-session decrypt batching on the provider side.
"""

from __future__ import annotations

import asyncio
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.crypto.ahe import AHECiphertext, AHEKeyPair, AHEScheme
from repro.exceptions import ProtocolError, SnapshotError
from repro.obs import get_registry
from repro.twopc.transport import FramedChannel
from repro.twopc.wire import Frame, SessionState, WireCodec
from repro.utils.serialization import canonical_dumps, canonical_loads
from repro.utils.timing import AdaptiveWindowController


class ProtocolSession(ABC):
    """One party of a message-driven protocol.

    Subclasses implement :meth:`_start` and :meth:`_handle`; the public
    wrappers accumulate the party's CPU time in :attr:`seconds` (the paper's
    per-party CPU columns) and enforce that finished sessions go quiet.
    """

    def __init__(self) -> None:
        self.finished = False
        self.started = False
        self.seconds = 0.0

    # -- driver-facing API --------------------------------------------------
    def start(self) -> list[Frame]:
        """Frames this party sends before having received anything.

        Runs at most once: a session restored from a snapshot comes back with
        ``started`` already set, and every driver gates on it, so restoring
        never re-executes the (possibly expensive) opening step.
        """
        if self.started:
            raise ProtocolError(f"{type(self).__name__} was started twice")
        self.started = True
        begin = time.perf_counter()
        frames = self._start()
        self.seconds += time.perf_counter() - begin
        return frames

    def handle(self, frame: Frame) -> list[Frame]:
        """React to one incoming frame with zero or more response frames."""
        if self.finished:
            raise ProtocolError(f"{type(self).__name__} received a frame after finishing")
        begin = time.perf_counter()
        frames = self._handle(frame)
        self.seconds += time.perf_counter() - begin
        return frames

    # -- protocol logic (subclasses) ----------------------------------------
    def _start(self) -> list[Frame]:
        return []

    @abstractmethod
    def _handle(self, frame: Frame) -> list[Frame]:
        """Protocol logic; runs inside the timing wrapper."""

    def _unexpected(self, frame: Frame) -> list[Frame]:
        raise ProtocolError(
            f"{type(self).__name__} cannot handle a {type(frame).__name__} in its current state"
        )

    # -- session persistence (the SessionState contract) ---------------------
    def snapshot(self) -> SessionState:
        """Capture this party's resumable state as a :class:`SessionState`.

        Subclasses that support persistence override this (and provide a
        ``restore(...)`` classmethod taking the state plus the shared context
        — protocol, setup, circuit, pool — that is never serialized).  The
        default refuses: a session that cannot be snapshotted is recovered by
        re-running it from its inputs, never by silently dropping state.
        """
        raise SnapshotError(f"{type(self).__name__} does not support snapshots")


def encode_state_payload(**fields: Any) -> bytes:
    """Canonically encode a session-state payload (sorted keys, stable bytes)."""
    return canonical_dumps(dict(fields))


def decode_state_payload(state: SessionState, kind: int, version: int) -> dict:
    """Validate *state*'s kind/version and decode its canonical payload."""
    if state.kind != kind:
        raise SnapshotError(
            f"session state of kind 0x{state.kind:02x} given to a 0x{kind:02x} restore"
        )
    if state.version != version:
        raise SnapshotError(
            f"unsupported session-state version {state.version} "
            f"(this build reads version {version})"
        )
    try:
        payload = canonical_loads(state.payload)
    except Exception as error:
        raise SnapshotError(f"malformed session-state payload: {error}") from error
    if not isinstance(payload, dict):
        raise SnapshotError("session-state payload must decode to a mapping")
    return payload


def _restore_base_fields(session: ProtocolSession, payload: dict) -> None:
    """Apply the progress fields every session payload carries."""
    session.started = bool(payload["started"])
    session.finished = bool(payload["finished"])
    session.seconds = float(payload["seconds"])


@dataclass
class DecryptionRequest:
    """A provider session's parked decryption work, ready for batching."""

    scheme: AHEScheme
    keypair: AHEKeyPair
    ciphertexts: list[AHECiphertext]


class DecryptingSession(ProtocolSession):
    """A session whose decrypt step is separable for cross-session batching.

    After a :meth:`handle` call, the driver checks :meth:`decryption_request`;
    if non-``None`` the session is parked until :meth:`supply_decrypted` is
    called with one slot list per requested ciphertext, which resumes the
    protocol and returns the next outgoing frames.  The time spent inside the
    batch decrypt itself is attributed by the driver (see
    :meth:`add_seconds`), since the session does not run it.
    """

    def __init__(self) -> None:
        super().__init__()
        self._decryption_request: DecryptionRequest | None = None

    def decryption_request(self) -> DecryptionRequest | None:
        """The pending request, or ``None``; the driver takes ownership of it."""
        request = self._decryption_request
        self._decryption_request = None
        return request

    def supply_decrypted(self, slot_lists: list[list[int]]) -> list[Frame]:
        """Resume the protocol with the decrypted slots of the requested ciphertexts."""
        begin = time.perf_counter()
        frames = self._resume_with_decryption(slot_lists)
        self.seconds += time.perf_counter() - begin
        return frames

    def add_seconds(self, seconds: float) -> None:
        """Attribute externally measured work (this session's share of a batch decrypt)."""
        self.seconds += seconds

    @abstractmethod
    def _resume_with_decryption(self, slot_lists: list[list[int]]) -> list[Frame]:
        """Protocol logic continuing after the decrypt; runs inside the timing wrapper."""


class BufferedProviderSession(DecryptingSession):
    """A provider half of shape *request → decrypt → inner session*.

    Both the spam and topic providers follow the same skeleton: the first
    frame is the protocol request (blinded scores), whose handling parks a
    decryption; the decrypted slots then build an inner (Yao) session that
    every later frame is delegated to.  Because the peer's OT opener can
    outrun the decrypt, frames that arrive before the inner session exists
    are buffered and replayed in order — that logic lives here exactly once.

    Subclasses implement :meth:`_handle_request` (validate the request frame
    and set ``self._decryption_request``), :meth:`_build_inner_session`
    (construct the inner session from the decrypted slots), and optionally
    :meth:`_inner_finished` (harvest the inner session's output).
    """

    def __init__(self) -> None:
        super().__init__()
        self._inner: ProtocolSession | None = None
        self._awaiting_request = True
        self._buffered: list[Frame] = []

    def _handle(self, frame: Frame) -> list[Frame]:
        if self._is_request(frame):
            if not self._awaiting_request:
                return self._unexpected(frame)
            self._awaiting_request = False
            return self._handle_request(frame)
        if self._inner is None:
            self._buffered.append(frame)
            return []
        return self._delegate(frame)

    def _resume_with_decryption(self, slot_lists: list[list[int]]) -> list[Frame]:
        self._inner = self._build_inner_session(slot_lists)
        frames = self._inner.start()
        while self._buffered:
            frames += self._delegate(self._buffered.pop(0))
        return frames

    def _delegate(self, frame: Frame) -> list[Frame]:
        assert self._inner is not None
        frames = self._inner.handle(frame)
        if self._inner.finished:
            self._inner_finished(self._inner)
            self.finished = True
        return frames

    # -- subclass hooks ------------------------------------------------------
    @abstractmethod
    def _is_request(self, frame: Frame) -> bool:
        """Whether *frame* is this protocol's opening request."""

    @abstractmethod
    def _handle_request(self, frame: Frame) -> list[Frame]:
        """Validate the request and park the decryption (set ``_decryption_request``)."""

    @abstractmethod
    def _build_inner_session(self, slot_lists: list[list[int]]) -> ProtocolSession:
        """Build the post-decrypt inner session (the provider's Yao half)."""

    def _inner_finished(self, inner: ProtocolSession) -> None:
        """Harvest the inner session's output (default: nothing to harvest)."""

    # -- session persistence --------------------------------------------------
    # The whole park/buffer/replay skeleton snapshots here exactly once;
    # subclasses contribute their kind byte, the ciphertext-capable codec,
    # protocol-specific extras, and the inner-session rebuild.
    STATE_VERSION = 1

    _state_kind: int | None = None  # subclasses set a SessionStateKind value

    def snapshot(self, pending: DecryptionRequest | None = None) -> SessionState:
        """Snapshot the provider half, optionally folding back *pending*.

        A parked session's :class:`DecryptionRequest` is owned by the driver
        (the scheduler window), not the session — the checkpointing driver
        passes it back in so the snapshot captures the complete cross-party
        state.
        """
        if self._state_kind is None:
            return super().snapshot()
        codec = self._state_codec()
        if pending is None:
            pending = self._decryption_request
        scheme = self._pending_scheme()
        return SessionState(
            kind=self._state_kind,
            version=self.STATE_VERSION,
            payload=encode_state_payload(
                started=self.started,
                finished=self.finished,
                seconds=self.seconds,
                awaiting_request=self._awaiting_request,
                buffered=[codec.encode(frame) for frame in self._buffered],
                pending=(
                    None
                    if pending is None
                    else [
                        scheme.serialize_ciphertext(ciphertext)
                        for ciphertext in pending.ciphertexts
                    ]
                ),
                inner=None if self._inner is None else self._inner.snapshot().to_bytes(),
                extra=self._snapshot_extra(),
            ),
        )

    def _restore_common(self, state: SessionState) -> None:
        """Apply a snapshot produced by :meth:`snapshot` to this fresh session."""
        payload = decode_state_payload(state, self._state_kind, self.STATE_VERSION)
        _restore_base_fields(self, payload)
        self._awaiting_request = bool(payload["awaiting_request"])
        codec = self._state_codec()
        self._buffered = [codec.decode(encoded) for encoded in payload["buffered"]]
        if payload["pending"] is not None:
            scheme = self._pending_scheme()
            self._decryption_request = DecryptionRequest(
                scheme=scheme,
                keypair=self._pending_keypair(),
                ciphertexts=[
                    scheme.deserialize_ciphertext(
                        encoded, public_key=self._pending_keypair().public
                    )
                    for encoded in payload["pending"]
                ],
            )
        # Extras first: rebuilding the inner session may depend on them
        # (e.g. the topic provider's candidate count selects the circuit).
        self._apply_extra(payload["extra"])
        if payload["inner"] is not None:
            self._inner = self._restore_inner(SessionState.from_bytes(payload["inner"]))

    def _snapshot_extra(self) -> dict:
        """Protocol-specific extra payload fields (default: none)."""
        return {}

    def _apply_extra(self, extra: dict) -> None:
        """Restore counterpart of :meth:`_snapshot_extra`."""

    def _state_codec(self) -> WireCodec:
        """The codec that can carry this protocol's buffered frames."""
        raise SnapshotError(f"{type(self).__name__} does not support snapshots")

    def _pending_scheme(self):
        """The AHE scheme of this provider's parked ciphertexts."""
        raise SnapshotError(f"{type(self).__name__} does not support snapshots")

    def _pending_keypair(self):
        """The key pair of this provider's parked ciphertexts."""
        raise SnapshotError(f"{type(self).__name__} does not support snapshots")

    def _restore_inner(self, state: SessionState) -> ProtocolSession:
        """Rebuild the inner (Yao) session from its nested snapshot."""
        raise SnapshotError(f"{type(self).__name__} does not support snapshots")


# ---------------------------------------------------------------------------
# The session loop: the one frame pump every driver uses
# ---------------------------------------------------------------------------
@dataclass
class SessionJob:
    """One in-flight protocol run: two state machines over one channel."""

    channel: FramedChannel
    client: ProtocolSession
    provider: ProtocolSession
    label: Any = None
    client_name: str = "client"
    provider_name: str = "provider"
    #: In-process correlation id for span tracing (never serialized; the wire
    #: format and golden frame bytes are untouched).  Minted by the runtime at
    #: admission; None for jobs driven outside the serving loop.
    trace_id: str | None = None
    _inbound: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._inbound = {self.client_name: 0, self.provider_name: 0}

    @property
    def finished(self) -> bool:
        return self.client.finished and self.provider.finished

    def session(self, name: str) -> ProtocolSession:
        return self.client if name == self.client_name else self.provider

    def dispatch(self, sender: str, frames: list[Frame]) -> None:
        for frame in frames:
            self.channel.send(sender, frame)
            self._inbound[self.channel.transport.peer_of(sender)] += 1


@dataclass
class _ParkedDecryption:
    job: SessionJob
    party: str
    session: DecryptingSession
    request: DecryptionRequest


class SessionLoop:
    """Drive any number of session jobs to completion over their channels.

    This is the *only* frame pump in the repository — the single-session
    drivers (``run_session_pair``, and through it the protocol ``classify``
    methods, ``run_yao`` and ``ObliviousTransfer.run``) and the multi-user
    serving loop (:class:`repro.core.runtime.ProviderRuntime`) all run this
    same loop, so delivery order, decrypt servicing and deadlock detection
    cannot diverge between arrangements.

    The loop alternates two phases until every job finishes: (1) deliver all
    deliverable frames of every job, collecting the decryption requests of
    sessions that parked; (2) fold the parked requests into one
    ``decrypt_slots_many`` call per distinct key pair and resume the parked
    sessions.  Phase 2 is where concurrency pays: eight emails for one
    mailbox decrypt in one vectorised pass instead of eight.  Batch CPU time
    is attributed back to sessions proportionally to their ciphertext counts.

    ``decrypt_batch_sizes`` records the size of every batched call — tests
    and benchmarks use it to verify that batching actually happened.
    """

    def __init__(self) -> None:
        self.decrypt_batch_sizes: list[int] = []
        registry = get_registry()
        self._metric_batches = registry.counter("decrypt_batches_total")
        self._metric_batch_sizes = registry.histogram("decrypt_batch_ciphertexts")

    def run(self, jobs: Sequence[SessionJob]) -> None:
        """Drive every job to completion; raises on protocol deadlock."""
        parked: list[_ParkedDecryption] = []
        for job in jobs:
            for name in (job.client_name, job.provider_name):
                session = job.session(name)
                if not session.started:
                    job.dispatch(name, session.start())
                self._collect_parked(job, name, session, parked)
        while True:
            progressed = self._deliver_all(jobs, parked)
            if parked:
                self._service_batched_decryption(parked)
                parked = []
                progressed = True
            if all(job.finished for job in jobs):
                return
            if not progressed:
                stuck = [job.label for job in jobs if not job.finished]
                raise ProtocolError(f"session loop deadlock; unfinished jobs: {stuck}")

    # -- phase 1: frame delivery -------------------------------------------------
    def _deliver_all(
        self, jobs: Sequence[SessionJob], parked: list[_ParkedDecryption]
    ) -> bool:
        progressed = False
        for job in jobs:
            for name in (job.provider_name, job.client_name):
                session = job.session(name)
                while job._inbound[name]:
                    frame = job.channel.receive(name)
                    job._inbound[name] -= 1
                    job.dispatch(name, session.handle(frame))
                    self._collect_parked(job, name, session, parked)
                    progressed = True
        return progressed

    @staticmethod
    def _collect_parked(
        job: SessionJob, party: str, session: ProtocolSession, parked: list[_ParkedDecryption]
    ) -> None:
        if isinstance(session, DecryptingSession):
            request = session.decryption_request()
            if request is not None:
                parked.append(
                    _ParkedDecryption(job=job, party=party, session=session, request=request)
                )

    # -- phase 2: cross-session batched decryption ---------------------------------
    def _service_batched_decryption(self, parked: list[_ParkedDecryption]) -> None:
        for entries in group_by_keypair(parked).values():
            self._service_group(entries)

    def _service_group(self, entries: list[_ParkedDecryption]) -> None:
        """One ``decrypt_slots_many`` call covering *entries* (same key pair)."""
        ciphertexts = [
            ciphertext for entry in entries for ciphertext in entry.request.ciphertexts
        ]
        self.decrypt_batch_sizes.append(len(ciphertexts))
        self._metric_batches.inc()
        self._metric_batch_sizes.observe(len(ciphertexts))
        slot_lists, per_ciphertext_seconds = batch_decrypt(
            entries[0].request.scheme, entries[0].request.keypair, ciphertexts
        )
        offset = 0
        for entry in entries:
            count = len(entry.request.ciphertexts)
            entry.session.add_seconds(per_ciphertext_seconds * count)
            frames = entry.session.supply_decrypted(slot_lists[offset : offset + count])
            offset += count
            entry.job.dispatch(entry.party, frames)


def decrypt_group_key(request: DecryptionRequest) -> tuple[int, int]:
    """The batching identity of a decryption request: its (scheme, keypair).

    Every place that folds decrypts — the in-process loop, the windowed
    scheduler, the async pump — must group by the *same* identity, so the
    key expression lives here exactly once.
    """
    return (id(request.scheme), id(request.keypair))


def group_by_keypair(parked: Sequence[_ParkedDecryption]) -> dict[tuple[int, int], list]:
    """Group parked decrypts by :func:`decrypt_group_key`, insertion-ordered."""
    groups: dict[tuple[int, int], list[_ParkedDecryption]] = {}
    for entry in parked:
        groups.setdefault(decrypt_group_key(entry.request), []).append(entry)
    return groups


def batch_decrypt(
    scheme: AHEScheme, keypair: AHEKeyPair, ciphertexts: list[AHECiphertext]
) -> tuple[list[list[int]], float]:
    """One vectorised decrypt; returns (slot lists, seconds per ciphertext)."""
    begin = time.perf_counter()
    slot_lists = scheme.decrypt_slots_many(keypair, ciphertexts)
    elapsed = time.perf_counter() - begin
    return slot_lists, elapsed / max(1, len(ciphertexts))


def run_session_pair(
    channel: FramedChannel,
    sessions: dict[str, ProtocolSession],
) -> None:
    """Drive two sessions over *channel* until both finish.

    *sessions* maps the channel's two party names to their sessions.  A thin
    wrapper over :class:`SessionLoop` with a single job; the session whose
    decrypt step is separable (if any) is placed in the job's provider slot
    so resumed frames are attributed to the right party.
    """
    if set(sessions) != set(channel.parties):
        raise ProtocolError(
            f"sessions {sorted(sessions)} do not match channel parties {channel.parties}"
        )
    first, second = channel.parties
    if isinstance(sessions[first], DecryptingSession) and not isinstance(
        sessions[second], DecryptingSession
    ):
        provider_name, client_name = first, second
    else:
        client_name, provider_name = first, second
    job = SessionJob(
        channel=channel,
        client=sessions[client_name],
        provider=sessions[provider_name],
        client_name=client_name,
        provider_name=provider_name,
    )
    SessionLoop().run([job])


# ---------------------------------------------------------------------------
# The asyncio pump: one party's sessions over real TCP connections
# ---------------------------------------------------------------------------
class AsyncSessionPump:
    """Drive one party's protocol sessions over async framed channels.

    The cross-process twin of :class:`SessionLoop`.  A provider process runs
    one pump for all of its live TCP connections; each connection's session is
    a coroutine (:meth:`run_session`), so thousands of sessions share one
    event loop.  Provider sessions that park a decryption await a shared
    windowed flusher that folds requests *across connections* into one
    ``decrypt_slots_many`` call per key pair — the same amortisation the
    in-process serving loop gets, now across sockets.

    ``window_seconds`` is the latency/throughput knob: ``0`` batches whatever
    parked within the same event-loop tick; a positive window accumulates
    decrypts across arrivals at the cost of that much added latency.
    ``max_pending_ciphertexts`` (if set) flushes early once enough work has
    piled up, bounding the latency a deep queue can add.

    Passing a *controller*
    (:class:`~repro.utils.timing.AdaptiveWindowController`) makes the window
    adaptive: every parked arrival retunes ``window_seconds`` from the
    observed arrival rate, and an already-armed timer is pulled *earlier*
    when the stream goes quiet (never pushed later — an armed deadline is a
    promise to the sessions already waiting on it).  With a controller and
    no explicit ``max_pending_ciphertexts``, the controller's
    ``target_batch_items`` doubles as the size trigger.
    """

    def __init__(
        self,
        window_seconds: float = 0.0,
        max_pending_ciphertexts: int | None = None,
        controller: "AdaptiveWindowController | None" = None,
    ) -> None:
        if window_seconds < 0:
            raise ProtocolError("window_seconds must be non-negative")
        if max_pending_ciphertexts is not None and max_pending_ciphertexts < 1:
            raise ProtocolError("max_pending_ciphertexts must be at least 1")
        self.controller = controller
        if controller is not None and max_pending_ciphertexts is None:
            max_pending_ciphertexts = controller.target_batch_items
        self.window_seconds = window_seconds
        self.max_pending_ciphertexts = max_pending_ciphertexts
        self.decrypt_batch_sizes: list[int] = []
        self._pending: list[tuple[DecryptionRequest, "asyncio.Future"]] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        registry = get_registry()
        self._metric_batches = registry.counter("decrypt_batches_total")
        self._metric_batch_sizes = registry.histogram("decrypt_batch_ciphertexts")

    async def run_session(self, channel, party: str, session: ProtocolSession) -> None:
        """Pump one session over *channel* until it finishes.

        *channel* is an :class:`~repro.twopc.transport.AsyncFramedChannel`
        whose local party is *party*.  Frames the session emits are sent;
        frames from the peer are received and handled; parked decryptions
        await the pump's shared windowed flusher.
        """
        if not session.started:
            for frame in session.start():
                await channel.send(party, frame)
        await self._service_parked(channel, party, session)
        while not session.finished:
            frame = await channel.receive(party)
            for response in session.handle(frame):
                await channel.send(party, response)
            await self._service_parked(channel, party, session)

    async def _service_parked(self, channel, party: str, session: ProtocolSession) -> None:
        if not isinstance(session, DecryptingSession):
            return
        while True:
            request = session.decryption_request()
            if request is None:
                return
            future = asyncio.get_running_loop().create_future()
            self._pending.append((request, future))
            self._arm_flush(new_ciphertexts=len(request.ciphertexts))
            slot_lists, attributed_seconds = await future
            session.add_seconds(attributed_seconds)
            for frame in session.supply_decrypted(slot_lists):
                await channel.send(party, frame)

    # -- the windowed flusher ------------------------------------------------
    def _arm_flush(self, new_ciphertexts: int = 0) -> None:
        loop = asyncio.get_running_loop()
        if self.controller is not None and new_ciphertexts:
            self.window_seconds = self.controller.observe(new_ciphertexts, loop.time())
        if self.max_pending_ciphertexts is not None:
            pending = sum(len(request.ciphertexts) for request, _ in self._pending)
            if pending >= self.max_pending_ciphertexts:
                if self._flush_handle is not None:
                    self._flush_handle.cancel()
                    self._flush_handle = None
                self._flush()
                return
        deadline = loop.time() + self.window_seconds
        if self._flush_handle is not None and self._flush_handle.when() > deadline:
            # The retuned window is tighter than the armed one: pull the
            # timer in.  (The converse never delays an armed flush.)
            self._flush_handle.cancel()
            self._flush_handle = None
        if self._flush_handle is None:
            self._flush_handle = loop.call_at(deadline, self._timer_fired)

    def _timer_fired(self) -> None:
        self._flush_handle = None
        self._flush()

    def _flush(self) -> None:
        pending, self._pending = self._pending, []
        groups: dict[tuple[int, int], list[tuple[DecryptionRequest, "asyncio.Future"]]] = {}
        for request, future in pending:
            groups.setdefault(decrypt_group_key(request), []).append((request, future))
        for entries in groups.values():
            ciphertexts = [
                ciphertext for request, _ in entries for ciphertext in request.ciphertexts
            ]
            self.decrypt_batch_sizes.append(len(ciphertexts))
            self._metric_batches.inc()
            self._metric_batch_sizes.observe(len(ciphertexts))
            try:
                slot_lists, per_ciphertext_seconds = batch_decrypt(
                    entries[0][0].scheme, entries[0][0].keypair, ciphertexts
                )
            except Exception as error:  # noqa: BLE001 — must reach the sessions
                # A failed batch (e.g. a hostile ciphertext) fails the parked
                # sessions, never the flusher: when this runs from the timer
                # callback an unhandled exception would leave every awaiting
                # coroutine hung forever.
                for _, future in entries:
                    if not future.cancelled():
                        future.set_exception(error)
                continue
            offset = 0
            for request, future in entries:
                count = len(request.ciphertexts)
                if not future.cancelled():
                    future.set_result(
                        (slot_lists[offset : offset + count], per_ciphertext_seconds * count)
                    )
                offset += count
