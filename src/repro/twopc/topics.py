"""The topic-extraction function module's two-party protocol (§4.3, Fig. 5).

Topic extraction inverts the spam arrangement: the *provider* learns the
output (one topic index out of B, e.g. for ad targeting), and the client's
email is what needs protecting.  Costs are dominated by B, which can be in
the thousands, so Pretzel decomposes the classification:

1. The client locally maps the email to B' candidate topics using a public,
   non-proprietary classifier (step (i) of §4.3; implemented by
   :mod:`repro.core.topic_module`).  This protocol takes the resulting
   candidate list ``S'`` as an input.
2. The client computes the encrypted dot products against the provider's full
   proprietary model, *extracts* the B' candidate scores by homomorphically
   shifting each one to a fixed slot, blinds them, and sends B' ciphertexts.
3. The provider decrypts the B' blinded scores; a Yao argmax removes the
   blinding and hands the provider only ``S'[argmax_j d_j]`` — it never learns
   which candidates were considered nor any other score (Fig. 5 step 5).

Setting ``candidate_count = None`` (i.e. B' = B) disables decomposition and
yields the paper's Baseline / "Pretzel (B'=B)" arms of Figs. 10 and 11.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.classify.model import QuantizedLinearModel
from repro.crypto.ahe import AHEKeyPair, AHEScheme
from repro.crypto.circuits import TopicCircuit
from repro.crypto.dh import DHGroup
from repro.crypto.packing import PackedLinearModel
from repro.crypto.yao import run_yao
from repro.exceptions import ProtocolError
from repro.twopc.blinding import blind_dot_products, blind_extracted_candidates
from repro.twopc.channel import TwoPartyChannel

SparseVector = Mapping[int, int]


@dataclass
class TopicSetup:
    """State produced by the setup phase (provider keys + encrypted model at client)."""

    keypair: AHEKeyPair
    encrypted_model: PackedLinearModel
    quantized_model: QuantizedLinearModel
    setup_network_bytes: int
    provider_setup_seconds: float

    def client_storage_bytes(self) -> int:
        """Client-side storage for the encrypted model (Fig. 12)."""
        return self.encrypted_model.storage_bytes()


@dataclass
class TopicProtocolResult:
    """Outcome and per-email costs of one topic-extraction run."""

    extracted_topic: int          # column index in the provider's model
    provider_seconds: float
    client_seconds: float
    network_bytes: int
    yao_and_gates: int
    candidates_used: int


class TopicExtractionProtocol:
    """Runs the topic-extraction 2PC between an in-process provider and client."""

    def __init__(self, scheme: AHEScheme, group: DHGroup, ot_mode: str = "iknp") -> None:
        self.scheme = scheme
        self.group = group
        self.ot_mode = ot_mode
        self._circuit_cache: dict[tuple[int, int, int], TopicCircuit] = {}

    # -- setup phase ----------------------------------------------------------------
    def setup(
        self,
        quantized_model: QuantizedLinearModel,
        joint_seed: bytes | None = None,
        across_row_packing: bool = True,
    ) -> TopicSetup:
        """Provider-side setup: key generation and encryption of the topic model."""
        if quantized_model.num_categories < 2:
            raise ProtocolError("the topic model needs at least two categories")
        if quantized_model.dot_product_bits >= self.scheme.slot_bits:
            raise ProtocolError(
                "dot products would overflow a slot; reduce bin/fin or raise slot_bits"
            )
        start = time.perf_counter()
        keypair = self.scheme.generate_keypair(seed=joint_seed)
        encrypted_model = PackedLinearModel.encrypt(
            self.scheme,
            keypair.public,
            quantized_model.matrix_rows(),
            across_rows=across_row_packing,
        )
        provider_seconds = time.perf_counter() - start
        setup_bytes = encrypted_model.storage_bytes() + keypair.public.size_bytes
        return TopicSetup(
            keypair=keypair,
            encrypted_model=encrypted_model,
            quantized_model=quantized_model,
            setup_network_bytes=setup_bytes,
            provider_setup_seconds=provider_seconds,
        )

    # -- per-email computation phase ----------------------------------------------------
    def extract_topic(
        self,
        setup: TopicSetup,
        features: SparseVector,
        candidate_topics: Sequence[int] | None = None,
        channel: TwoPartyChannel | None = None,
    ) -> TopicProtocolResult:
        """Run the per-email protocol; the provider learns only the winning topic.

        *candidate_topics* is the client's candidate set ``S'`` (step (i) of
        §4.3).  ``None`` means "no decomposition": every one of the B topics
        is a candidate, which reproduces the Baseline / B' = B arms.
        """
        channel = channel or TwoPartyChannel("topics")
        bytes_before = channel.total_bytes()
        model = setup.quantized_model
        dot_bits = model.dot_product_bits
        num_topics = model.num_categories
        if candidate_topics is None:
            candidates = list(range(num_topics))
            decomposed = False
        else:
            candidates = list(dict.fromkeys(int(c) for c in candidate_topics))
            if not candidates:
                raise ProtocolError("candidate topic list is empty")
            for candidate in candidates:
                if not 0 <= candidate < num_topics:
                    raise ProtocolError(f"candidate topic {candidate} out of range")
            decomposed = True
        if decomposed and not self.scheme.supports_slot_shift:
            raise ProtocolError(
                "decomposed candidate extraction needs a slot-shifting scheme (XPIR-BV)"
            )

        # --- client: dot products, candidate extraction, blinding ------------------
        client_start = time.perf_counter()
        sparse = model.sparse_features(features)
        dot_result = setup.encrypted_model.dot_products(sparse)
        if decomposed:
            blinded = blind_extracted_candidates(
                self.scheme,
                setup.keypair.public,
                setup.encrypted_model,
                dot_result,
                candidate_columns=candidates,
                dot_bits=dot_bits,
            )
        else:
            blinded = blind_dot_products(
                self.scheme,
                setup.keypair.public,
                setup.encrypted_model,
                dot_result,
                output_columns=candidates,
                dot_bits=dot_bits,
            )
        client_seconds = time.perf_counter() - client_start
        channel.send("client", blinded.ciphertexts)

        # --- provider: decrypt the blinded candidate scores ------------------------------
        received = channel.receive("provider")
        provider_start = time.perf_counter()
        decrypted = self.scheme.decrypt_slots_many(setup.keypair, received)
        blinded_scores = []
        noises = []
        for column in candidates:
            ct_index, slot, noise = blinded.output_noise[column]
            blinded_scores.append(decrypted[ct_index][slot])
            noises.append(noise)
        provider_seconds = time.perf_counter() - provider_start

        # --- Yao argmax: provider learns S'[argmax] (Fig. 5 step 5) -----------------------
        index_bits = max(1, math.ceil(math.log2(max(2, num_topics))))
        circuit = self._topic_circuit(self.scheme.slot_bits, len(candidates), index_bits)
        yao = run_yao(
            channel,
            circuit.circuit,
            garbler_bits=circuit.garbler_bits(noises, candidates),
            evaluator_bits=circuit.evaluator_bits(blinded_scores),
            group=self.group,
            output_to="evaluator",
            garbler_name="client",
            evaluator_name="provider",
            ot_mode=self.ot_mode,
        )
        winner = TopicCircuit.decode_output(yao.output_bits)
        return TopicProtocolResult(
            extracted_topic=winner,
            provider_seconds=provider_seconds + yao.evaluator_seconds,
            client_seconds=client_seconds + yao.garbler_seconds,
            network_bytes=channel.total_bytes() - bytes_before,
            yao_and_gates=yao.and_gates,
            candidates_used=len(candidates),
        )

    def _topic_circuit(self, width: int, candidates: int, index_bits: int) -> TopicCircuit:
        key = (width, candidates, index_bits)
        cached = self._circuit_cache.get(key)
        if cached is None:
            cached = TopicCircuit.build(width, candidates, index_bits)
            self._circuit_cache[key] = cached
        return cached
