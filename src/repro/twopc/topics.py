"""The topic-extraction function module's two-party protocol (§4.3, Fig. 5).

Topic extraction inverts the spam arrangement: the *provider* learns the
output (one topic index out of B, e.g. for ad targeting), and the client's
email is what needs protecting.  Costs are dominated by B, which can be in
the thousands, so Pretzel decomposes the classification:

1. The client locally maps the email to B' candidate topics using a public,
   non-proprietary classifier (step (i) of §4.3; implemented by
   :mod:`repro.core.topic_module`).  This protocol takes the resulting
   candidate list ``S'`` as an input.
2. The client computes the encrypted dot products against the provider's full
   proprietary model, *extracts* the B' candidate scores by homomorphically
   shifting each one to a fixed slot, blinds them, and sends one
   :class:`~repro.twopc.wire.ExtractedCandidatesFrame` of B' ciphertexts.
3. The provider decrypts the B' blinded scores; a Yao argmax removes the
   blinding and hands the provider only ``S'[argmax_j d_j]`` — it never learns
   which candidates were considered nor any other score (Fig. 5 step 5).

Setting ``candidate_topics = None`` (i.e. B' = B) disables decomposition and
yields the paper's Baseline / "Pretzel (B'=B)" arms of Figs. 10 and 11; the
scores then travel in a :class:`~repro.twopc.wire.BlindedScoresFrame` and the
provider reads every column via the packing layout.

Both halves are reentrant state machines; the provider half
(:class:`TopicProviderSession`) is a request/response handler keyed by frame
type whose decrypt step is separable for cross-session batching, mirroring
:mod:`repro.twopc.spam`.  The provider learns how many candidates there are
from the frame itself (one ciphertext per candidate), never *which* ones.

Step 2 is the client hot path (``topic_candidate_blinding_ms``): candidate
extraction and blinding run entirely on the batched fabrication primitives —
one stacked gather-and-shift (:meth:`~repro.crypto.ahe.AHEScheme.extract_shift_many`),
one batched noise encryption (:meth:`~repro.crypto.ahe.AHEScheme.encrypt_slots_many`)
and one stacked addition for all B' candidates, instead of a per-candidate
shift/encrypt/add chain.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.classify.model import QuantizedLinearModel
from repro.crypto.ahe import AHEKeyPair, AHEScheme
from repro.crypto.circuits import TopicCircuit
from repro.crypto.dh import DHGroup
from repro.crypto.ot import OtExtensionPool, initialize_ot_pool
from repro.crypto.packing import PackedLinearModel
from repro.crypto.yao import YaoEvaluatorSession, YaoGarblerSession
from repro.exceptions import ProtocolError, SnapshotError
from repro.twopc.blinding import blind_dot_products, blind_extracted_candidates
from repro.twopc.session import (
    BufferedProviderSession,
    DecryptionRequest,
    ProtocolSession,
    _restore_base_fields,
    decode_state_payload,
    encode_state_payload,
    run_session_pair,
)
from repro.twopc.transport import FramedChannel
from repro.twopc.wire import (
    BlindedScoresFrame,
    ExtractedCandidatesFrame,
    Frame,
    SessionState,
    SessionStateKind,
    WireCodec,
)

SESSION_STATE_VERSION = 1

SparseVector = Mapping[int, int]


@dataclass
class TopicSetup:
    """State produced by the setup phase (provider keys + encrypted model at client)."""

    keypair: AHEKeyPair
    encrypted_model: PackedLinearModel
    quantized_model: QuantizedLinearModel
    setup_network_bytes: int
    provider_setup_seconds: float

    def client_storage_bytes(self) -> int:
        """Client-side storage for the encrypted model (Fig. 12)."""
        return self.encrypted_model.storage_bytes()


@dataclass
class TopicProtocolResult:
    """Outcome and per-email costs of one topic-extraction run."""

    extracted_topic: int          # column index in the provider's model
    provider_seconds: float
    client_seconds: float
    network_bytes: int
    yao_and_gates: int
    candidates_used: int
    network_messages: int = 0
    network_rounds: int = 0


def _topic_index_bits(num_topics: int) -> int:
    return max(1, math.ceil(math.log2(max(2, num_topics))))


class TopicClientSession(ProtocolSession):
    """The client half: dot products, candidate extraction + blinding, Yao garbler."""

    def __init__(
        self,
        protocol: "TopicExtractionProtocol",
        setup: TopicSetup,
        features: SparseVector,
        candidates: list[int],
        decomposed: bool,
        ot_pool: OtExtensionPool | None = None,
    ) -> None:
        super().__init__()
        self.protocol = protocol
        self.setup = setup
        self.features = features
        self.candidates = candidates
        self.decomposed = decomposed
        self.ot_pool = ot_pool
        self.yao_and_gates = 0
        self._yao: YaoGarblerSession | None = None

    def _start(self) -> list[Frame]:
        setup = self.setup
        protocol = self.protocol
        model = setup.quantized_model
        dot_bits = model.dot_product_bits
        sparse = model.sparse_features(self.features)
        dot_result = setup.encrypted_model.dot_products(sparse)
        if self.decomposed:
            blinded = blind_extracted_candidates(
                protocol.scheme,
                setup.keypair.public,
                setup.encrypted_model,
                dot_result,
                candidate_columns=self.candidates,
                dot_bits=dot_bits,
            )
            scores_frame: Frame = ExtractedCandidatesFrame(tuple(blinded.ciphertexts))
        else:
            blinded = blind_dot_products(
                protocol.scheme,
                setup.keypair.public,
                setup.encrypted_model,
                dot_result,
                output_columns=self.candidates,
                dot_bits=dot_bits,
            )
            scores_frame = BlindedScoresFrame(tuple(blinded.ciphertexts))
        noises = [blinded.output_noise[column][2] for column in self.candidates]
        circuit = protocol._topic_circuit(
            protocol.scheme.slot_bits,
            len(self.candidates),
            _topic_index_bits(model.num_categories),
        )
        self.yao_and_gates = circuit.circuit.and_count
        self._yao = YaoGarblerSession(
            circuit.circuit,
            circuit.garbler_bits(noises, self.candidates),
            protocol.group,
            output_to="evaluator",   # the evaluator here is the *provider*
            ot_mode=protocol.ot_mode,
            ot_pool=self.ot_pool,
        )
        return [scores_frame] + self._yao.start()

    def _handle(self, frame: Frame) -> list[Frame]:
        assert self._yao is not None
        frames = self._yao.handle(frame)
        if self._yao.finished:
            self.finished = True
        return frames

    # -- session persistence --------------------------------------------------
    def snapshot(self) -> SessionState:
        return SessionState(
            kind=SessionStateKind.TOPIC_CLIENT,
            version=SESSION_STATE_VERSION,
            payload=encode_state_payload(
                started=self.started,
                finished=self.finished,
                seconds=self.seconds,
                features=[
                    [int(index), int(count)] for index, count in sorted(self.features.items())
                ],
                candidates=[int(candidate) for candidate in self.candidates],
                decomposed=self.decomposed,
                yao_and_gates=self.yao_and_gates,
                yao=None if self._yao is None else self._yao.snapshot().to_bytes(),
            ),
        )

    @classmethod
    def restore(
        cls,
        protocol: "TopicExtractionProtocol",
        setup: TopicSetup,
        state: SessionState,
        ot_pool: OtExtensionPool | None = None,
    ) -> "TopicClientSession":
        payload = decode_state_payload(
            state, SessionStateKind.TOPIC_CLIENT, SESSION_STATE_VERSION
        )
        candidates = [int(candidate) for candidate in payload["candidates"]]
        session = cls(
            protocol,
            setup,
            {int(index): int(count) for index, count in payload["features"]},
            candidates,
            bool(payload["decomposed"]),
            ot_pool=ot_pool,
        )
        _restore_base_fields(session, payload)
        session.yao_and_gates = int(payload["yao_and_gates"])
        if payload["yao"] is not None:
            circuit = protocol._topic_circuit(
                protocol.scheme.slot_bits,
                len(candidates),
                _topic_index_bits(setup.quantized_model.num_categories),
            )
            session._yao = YaoGarblerSession.restore(
                SessionState.from_bytes(payload["yao"]),
                circuit.circuit,
                protocol.group,
                ot_pool=ot_pool,
            )
        return session


class TopicProviderSession(BufferedProviderSession):
    """The provider half: reactive handler, separable decrypt, Yao evaluator.

    State machine: AWAIT_SCORES --(Blinded/Extracted frame)--> DECRYPTING
    --(supplied slots)--> YAO (evaluator, learns the argmax) --> finished;
    the park/buffer/replay mechanics live in :class:`BufferedProviderSession`.
    The number of candidates B' is read off the frame (one ciphertext per
    candidate when decomposed); which columns they correspond to stays with
    the client, as §4.4 guarantee 3 requires.
    """

    def __init__(
        self,
        protocol: "TopicExtractionProtocol",
        setup: TopicSetup,
        ot_pool: OtExtensionPool | None = None,
    ) -> None:
        super().__init__()
        self.protocol = protocol
        self.setup = setup
        self.ot_pool = ot_pool
        self.extracted_topic: int | None = None
        self._decomposed = False
        self._inner_candidates: int | None = None

    def _is_request(self, frame: Frame) -> bool:
        return isinstance(frame, (BlindedScoresFrame, ExtractedCandidatesFrame))

    def _handle_request(self, frame: Frame) -> list[Frame]:
        self._decomposed = isinstance(frame, ExtractedCandidatesFrame)
        if self._decomposed:
            if not frame.ciphertexts:
                raise ProtocolError("candidate extraction frame carries no ciphertexts")
            if not self.protocol.scheme.supports_slot_shift:
                raise ProtocolError(
                    "decomposed candidate extraction needs a slot-shifting scheme (XPIR-BV)"
                )
        else:
            expected = self.setup.encrypted_model.result_ciphertext_count()
            if len(frame.ciphertexts) != expected:
                raise ProtocolError(
                    f"expected {expected} blinded score ciphertexts, got "
                    f"{len(frame.ciphertexts)}"
                )
        self._decryption_request = DecryptionRequest(
            scheme=self.protocol.scheme,
            keypair=self.setup.keypair,
            ciphertexts=list(frame.ciphertexts),
        )
        return []

    def _build_inner_session(self, slot_lists: list[list[int]]) -> YaoEvaluatorSession:
        protocol = self.protocol
        num_topics = self.setup.quantized_model.num_categories
        if self._decomposed:
            # One ciphertext per candidate; every score sits in the fixed
            # extraction slot (the top slot), so B' = the frame's length.
            extraction_slot = protocol.scheme.num_slots - 1
            blinded_scores = [slots[extraction_slot] for slots in slot_lists]
        else:
            # B' = B: scores for all columns, located via the packing layout.
            slot_map = self.setup.encrypted_model.column_slot_map()
            blinded_scores = []
            for column in range(num_topics):
                ct_index, slot = slot_map[column]
                blinded_scores.append(slot_lists[ct_index][slot])
        circuit = protocol._topic_circuit(
            protocol.scheme.slot_bits, len(blinded_scores), _topic_index_bits(num_topics)
        )
        self._inner_candidates = len(blinded_scores)
        return YaoEvaluatorSession(
            circuit.circuit,
            circuit.evaluator_bits(blinded_scores),
            protocol.group,
            output_to="evaluator",
            ot_mode=protocol.ot_mode,
            ot_pool=self.ot_pool,
        )

    def _inner_finished(self, inner: ProtocolSession) -> None:
        assert inner.output_bits is not None
        self.extracted_topic = TopicCircuit.decode_output(inner.output_bits)

    # -- session persistence (hooks for the shared provider snapshot) ---------
    _state_kind = SessionStateKind.TOPIC_PROVIDER

    def _state_codec(self) -> WireCodec:
        return WireCodec(self.protocol.scheme, self.setup.keypair.public)

    def _pending_scheme(self):
        return self.protocol.scheme

    def _pending_keypair(self):
        return self.setup.keypair

    def _snapshot_extra(self) -> dict:
        return {
            "decomposed": self._decomposed,
            "extracted_topic": self.extracted_topic,
            "inner_candidates": self._inner_candidates,
        }

    def _apply_extra(self, extra: dict) -> None:
        self._decomposed = bool(extra["decomposed"])
        self.extracted_topic = extra["extracted_topic"]
        self._inner_candidates = extra["inner_candidates"]

    def _restore_inner(self, state: SessionState) -> YaoEvaluatorSession:
        if self._inner_candidates is None:
            raise SnapshotError("topic provider snapshot carries an inner session but no candidate count")
        circuit = self.protocol._topic_circuit(
            self.protocol.scheme.slot_bits,
            self._inner_candidates,
            _topic_index_bits(self.setup.quantized_model.num_categories),
        )
        return YaoEvaluatorSession.restore(
            state, circuit.circuit, self.protocol.group, ot_pool=self.ot_pool
        )

    @classmethod
    def restore(
        cls,
        protocol: "TopicExtractionProtocol",
        setup: TopicSetup,
        state: SessionState,
        ot_pool: OtExtensionPool | None = None,
    ) -> "TopicProviderSession":
        session = cls(protocol, setup, ot_pool=ot_pool)
        session._restore_common(state)
        return session


class TopicExtractionProtocol:
    """Builds and drives the topic-extraction 2PC between a provider and a client."""

    def __init__(self, scheme: AHEScheme, group: DHGroup, ot_mode: str = "iknp") -> None:
        self.scheme = scheme
        self.group = group
        self.ot_mode = ot_mode
        self._circuit_cache: dict[tuple[int, int, int], TopicCircuit] = {}

    # -- setup phase ----------------------------------------------------------------
    def setup(
        self,
        quantized_model: QuantizedLinearModel,
        joint_seed: bytes | None = None,
        across_row_packing: bool = True,
    ) -> TopicSetup:
        """Provider-side setup: key generation and encryption of the topic model."""
        if quantized_model.num_categories < 2:
            raise ProtocolError("the topic model needs at least two categories")
        if quantized_model.dot_product_bits >= self.scheme.slot_bits:
            raise ProtocolError(
                "dot products would overflow a slot; reduce bin/fin or raise slot_bits"
            )
        start = time.perf_counter()
        keypair = self.scheme.generate_keypair(seed=joint_seed)
        encrypted_model = PackedLinearModel.encrypt(
            self.scheme,
            keypair.public,
            quantized_model.matrix_rows(),
            across_rows=across_row_packing,
        )
        provider_seconds = time.perf_counter() - start
        setup_bytes = encrypted_model.storage_bytes() + keypair.public.size_bytes
        return TopicSetup(
            keypair=keypair,
            encrypted_model=encrypted_model,
            quantized_model=quantized_model,
            setup_network_bytes=setup_bytes,
            provider_setup_seconds=provider_seconds,
        )

    # -- session construction -----------------------------------------------------
    def make_channel(self, setup: TopicSetup, name: str = "topics") -> FramedChannel:
        """A loopback channel whose codec can carry this setup's ciphertexts."""
        return FramedChannel.loopback(
            name, scheme=self.scheme, public_key=setup.keypair.public
        )

    def resolve_candidates(
        self, setup: TopicSetup, candidate_topics: Sequence[int] | None
    ) -> tuple[list[int], bool]:
        """Validate and normalise the client's candidate set ``S'``.

        Returns ``(candidates, decomposed)``; ``None`` means "no
        decomposition" (every topic is a candidate, the B' = B arms).
        """
        num_topics = setup.quantized_model.num_categories
        if candidate_topics is None:
            return list(range(num_topics)), False
        candidates = list(dict.fromkeys(int(c) for c in candidate_topics))
        if not candidates:
            raise ProtocolError("candidate topic list is empty")
        for candidate in candidates:
            if not 0 <= candidate < num_topics:
                raise ProtocolError(f"candidate topic {candidate} out of range")
        if not self.scheme.supports_slot_shift:
            raise ProtocolError(
                "decomposed candidate extraction needs a slot-shifting scheme (XPIR-BV)"
            )
        return candidates, True

    def make_ot_pool(
        self, setup: TopicSetup, channel: FramedChannel | None = None
    ) -> OtExtensionPool:
        """Run the one-time per-pair OT-extension handshake (base OTs).

        In the topic arrangement the *client* garbles (the provider evaluates
        and learns the argmax), so the client is the extension sender.
        """
        channel = channel or self.make_channel(setup, name="topics-ot-setup")
        return initialize_ot_pool(
            self.group, channel, sender_name="client", receiver_name="provider"
        )

    def client_session(
        self,
        setup: TopicSetup,
        features: SparseVector,
        candidate_topics: Sequence[int] | None = None,
        ot_pool: OtExtensionPool | None = None,
    ) -> TopicClientSession:
        candidates, decomposed = self.resolve_candidates(setup, candidate_topics)
        return TopicClientSession(self, setup, features, candidates, decomposed, ot_pool=ot_pool)

    def provider_session(
        self, setup: TopicSetup, ot_pool: OtExtensionPool | None = None
    ) -> TopicProviderSession:
        return TopicProviderSession(self, setup, ot_pool=ot_pool)

    # -- per-email computation phase ----------------------------------------------------
    def extract_topic(
        self,
        setup: TopicSetup,
        features: SparseVector,
        candidate_topics: Sequence[int] | None = None,
        channel: FramedChannel | None = None,
        ot_pool: OtExtensionPool | None = None,
    ) -> TopicProtocolResult:
        """Run the per-email protocol in-process; the provider learns the winning topic.

        *candidate_topics* is the client's candidate set ``S'`` (step (i) of
        §4.3).  ``None`` means "no decomposition": every one of the B topics
        is a candidate, which reproduces the Baseline / B' = B arms.  Without
        an *ot_pool* every email pays fresh base OTs; a pool from
        :meth:`make_ot_pool` amortises them away.
        """
        channel = channel or self.make_channel(setup)
        bytes_before = channel.total_bytes()
        messages_before = channel.total_messages()
        rounds_before = channel.rounds()
        client = self.client_session(setup, features, candidate_topics, ot_pool=ot_pool)
        provider = self.provider_session(setup, ot_pool=ot_pool)
        run_session_pair(channel, {"client": client, "provider": provider})
        assert provider.extracted_topic is not None
        return TopicProtocolResult(
            extracted_topic=provider.extracted_topic,
            provider_seconds=provider.seconds,
            client_seconds=client.seconds,
            network_bytes=channel.total_bytes() - bytes_before,
            yao_and_gates=client.yao_and_gates,
            candidates_used=len(client.candidates),
            network_messages=channel.total_messages() - messages_before,
            network_rounds=channel.rounds() - rounds_before,
        )

    def _topic_circuit(self, width: int, candidates: int, index_bits: int) -> TopicCircuit:
        key = (width, candidates, index_bits)
        cached = self._circuit_cache.get(key)
        if cached is None:
            cached = TopicCircuit.build(width, candidates, index_bits)
            self._circuit_cache[key] = cached
        return cached
