"""Typed, versioned wire frames for every message that crosses parties.

The paper's evaluation treats the wire as the system boundary: network
transfers (Figs. 3, 6, 11 and the absolute costs of §6.3) are counted in
serialized bytes, and a deployed provider speaks to millions of clients whose
messages arrive as frames, not Python objects.  This module defines that
boundary once:

* each protocol message — blinded AHE scores, candidate extractions, the four
  OT message kinds, garbled tables, output labels, and the NoPriv plaintext
  exchange — is a small frozen dataclass (*frame*);
* session persistence rides the same boundary: a snapshotted party machine is
  a :class:`SessionState` record (kind + version + canonical payload) carried
  by a :class:`SessionStateFrame`, so checkpoints, shard handoffs and wire
  transfers of live sessions all share one golden-pinned format;
* :class:`WireCodec` turns frames into bytes and back.  Every frame starts
  with a fixed header (magic, version, type); ciphertext-bearing frames
  delegate to the scheme codecs (:meth:`AHEScheme.serialize_ciphertext`),
  garbled tables to :meth:`GarbledTables.to_bytes`.

Byte accounting is therefore exact by construction: the transport charges
``len(codec.encode(frame))`` — there is no estimator on any protocol path.
Decoding validates magic, version, type, and ciphertext parameters, and
raises :class:`~repro.exceptions.WireFormatError` on anything malformed
(frames cross a trust boundary; decoding never executes arbitrary code).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ahe import AHECiphertext, AHEPublicKey, AHEScheme
from repro.crypto.garbled import LABEL_BYTES, GarbledTables
from repro.exceptions import WireFormatError
from repro.utils.serialization import ByteReader, ByteWriter

WIRE_MAGIC = 0x5A  # 'Z' — "pretZel"
WIRE_VERSION = 1
HEADER_BYTES = 3  # magic (u8) + version (u8) + frame type (u8)


# ---------------------------------------------------------------------------
# Frame types
# ---------------------------------------------------------------------------
class FrameType:
    """Wire identifiers; the third header byte of every frame."""

    BLINDED_SCORES = 0x01        # client -> provider: blinded dot products (Fig. 2 step 2)
    EXTRACTED_CANDIDATES = 0x02  # client -> provider: B' extracted scores (Fig. 5 step 3)
    OT_PUBLICS = 0x03            # base OT: sender's DH shares
    OT_RESPONSES = 0x04          # base OT: receiver's blinded responses
    OT_CIPHERPAIRS = 0x05        # base OT: the two encrypted messages per transfer
    OT_EXT_COLUMNS = 0x06        # IKNP: the receiver's U-matrix columns
    OT_EXT_PAIRS = 0x07          # IKNP: the sender's encrypted message pairs
    GARBLED_CIRCUIT = 0x08       # garbler -> evaluator: tables + garbler input labels
    OUTPUT_LABELS = 0x09         # evaluator -> garbler: output labels for decoding
    FEATURES = 0x0A              # NoPriv: the plaintext feature vector (the email)
    CLASSIFY_RESULT = 0x0B       # NoPriv: the provider's category verdict
    SESSION_STATE = 0x0C         # a snapshotted party state (session persistence)
    CONTROL = 0x0D               # fabric control plane: verb + version + body


@dataclass(frozen=True, eq=False)
class BlindedScoresFrame:
    """All blinded dot-product ciphertexts, in result-layout order."""

    ciphertexts: tuple[AHECiphertext, ...]

    frame_type = FrameType.BLINDED_SCORES


@dataclass(frozen=True, eq=False)
class ExtractedCandidatesFrame:
    """One extracted-and-blinded ciphertext per candidate topic (§4.3)."""

    ciphertexts: tuple[AHECiphertext, ...]

    frame_type = FrameType.EXTRACTED_CANDIDATES


@dataclass(frozen=True)
class OtPublicsFrame:
    """Base-OT sender DH shares (one group element per transfer)."""

    elements: tuple[int, ...]

    frame_type = FrameType.OT_PUBLICS


@dataclass(frozen=True)
class OtResponsesFrame:
    """Base-OT receiver responses (one group element per transfer)."""

    elements: tuple[int, ...]

    frame_type = FrameType.OT_RESPONSES


@dataclass(frozen=True)
class OtCipherPairsFrame:
    """Base-OT encrypted message pairs."""

    pairs: tuple[tuple[bytes, bytes], ...]

    frame_type = FrameType.OT_CIPHERPAIRS


@dataclass(frozen=True)
class OtExtColumnsFrame:
    """IKNP extension: the receiver's U-matrix columns.

    ``start_index`` is the batch's first global transfer index when the
    extension runs against persistent per-pair state (the amortised usage of
    IKNP: base OTs once per pair, every later batch extends).  One-shot
    extensions leave it at 0.
    """

    columns: tuple[bytes, ...]
    start_index: int = 0

    frame_type = FrameType.OT_EXT_COLUMNS


@dataclass(frozen=True)
class OtExtPairsFrame:
    """IKNP extension: the sender's encrypted message pairs."""

    pairs: tuple[tuple[bytes, bytes], ...]

    frame_type = FrameType.OT_EXT_PAIRS


@dataclass(frozen=True)
class GarbledCircuitFrame:
    """Garbled tables, the garbler's own input labels, and the output arrangement."""

    tables: GarbledTables
    garbler_labels: tuple[bytes, ...]
    decode_at_evaluator: bool

    frame_type = FrameType.GARBLED_CIRCUIT


@dataclass(frozen=True)
class OutputLabelsFrame:
    """The evaluator's output labels, returned when the garbler learns the output."""

    labels: tuple[bytes, ...]

    frame_type = FrameType.OUTPUT_LABELS


@dataclass(frozen=True)
class FeaturesFrame:
    """NoPriv: the plaintext sparse feature vector the provider classifies."""

    features: tuple[tuple[int, int], ...]

    frame_type = FrameType.FEATURES


@dataclass(frozen=True)
class ClassifyResultFrame:
    """NoPriv: the provider's predicted category index."""

    category: int

    frame_type = FrameType.CLASSIFY_RESULT


# ---------------------------------------------------------------------------
# Session-state snapshots (the persistence format of resumable sessions)
# ---------------------------------------------------------------------------
class SessionStateKind:
    """Kind byte of a :class:`SessionState`: which party machine it captures."""

    OT_POOL = 0x01             # persistent per-pair IKNP extension state
    POOLED_OT_SENDER = 0x02    # a PooledIknpSenderMachine mid-batch
    POOLED_OT_RECEIVER = 0x03  # a PooledIknpReceiverMachine mid-batch
    YAO_GARBLER = 0x10         # a YaoGarblerSession (seed + round position)
    YAO_EVALUATOR = 0x11       # a YaoEvaluatorSession (OT position + output)
    SPAM_CLIENT = 0x20
    SPAM_PROVIDER = 0x21
    TOPIC_CLIENT = 0x22
    TOPIC_PROVIDER = 0x23
    NOPRV_CLIENT = 0x24
    NOPRV_PROVIDER = 0x25


KNOWN_SESSION_STATE_KINDS = frozenset(
    value
    for name, value in vars(SessionStateKind).items()
    if not name.startswith("_")
)


@dataclass(frozen=True)
class SessionState:
    """A typed, versioned, byte-serializable snapshot of one party machine.

    This is the session-persistence contract: everything a killed worker
    needs to *resume* a parked session — buffered frames, parked decryption
    requests, OT-pool pad cursors, Yao round position — travels as one of
    these records, never as a pickled object graph.  ``kind`` names the
    party machine, ``version`` the kind-specific payload format (bumped on
    any payload change, together with the pinned golden bytes), and
    ``payload`` is the kind's canonically-encoded body.  Key material that
    both ends of a restore already share (setups, circuits, schemes) is
    *context*, supplied to ``restore(...)``, and never serialized.
    """

    kind: int
    version: int
    payload: bytes

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_SESSION_STATE_KINDS:
            raise WireFormatError(f"unknown session-state kind 0x{self.kind:02x}")
        if not 0 <= self.version < 256:
            raise WireFormatError(f"session-state version {self.version} out of range")

    def to_bytes(self) -> bytes:
        """Standalone encoding (kind, version, payload) without the frame header."""
        return ByteWriter().u8(self.kind).u8(self.version).blob(self.payload).getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SessionState":
        reader = ByteReader(data)
        state = cls._read(reader)
        reader.expect_end()
        return state

    @classmethod
    def _read(cls, reader: ByteReader) -> "SessionState":
        kind = reader.u8()
        if kind not in KNOWN_SESSION_STATE_KINDS:
            raise WireFormatError(f"unknown session-state kind 0x{kind:02x}")
        version = reader.u8()
        return cls(kind=kind, version=version, payload=reader.blob())


@dataclass(frozen=True)
class SessionStateFrame:
    """A :class:`SessionState` on the wire — snapshots are just frames.

    Shipping state as a frame is what makes the persistence layer compose
    with everything else: a checkpoint file, a shard handoff to another host,
    and a wire transfer all use the same golden-pinned bytes.
    """

    state: SessionState

    frame_type = FrameType.SESSION_STATE


# ---------------------------------------------------------------------------
# Control-plane frames (the fabric's parent <-> agent channel)
# ---------------------------------------------------------------------------
#: Version byte stamped on every control frame an endpoint emits.  An agent
#: announces its version in HELLO; the parent refuses a mismatch at
#: registration time (a *frame* with a foreign version still decodes — the
#: compatibility check is a control-plane policy, not a codec failure).
CONTROL_VERSION = 1


class ControlVerb:
    """Verb byte of a :class:`ControlFrame`: what the sender is doing."""

    HELLO = 0x01      # agent -> parent: shard index, incarnation, version
    COMMAND = 0x02    # parent -> agent: one shard command (burst, drain, ...)
    REPLY = 0x03      # agent -> parent: the command's single reply
    HEARTBEAT = 0x04  # agent -> parent: liveness beacon (health/eviction)
    METRICS = 0x05    # agent -> parent: streamed cumulative registry snapshot
    BYE = 0x06        # either side: orderly teardown announcement


KNOWN_CONTROL_VERBS = frozenset(
    value for name, value in vars(ControlVerb).items() if not name.startswith("_")
)


@dataclass(frozen=True)
class ControlFrame:
    """One fabric control-plane message: verb, version, opaque body.

    The codec treats the body as bytes on purpose: control payloads are
    rich Python structures (registrations carry protocol/setup objects)
    serialized by the *control plane* for its trusted parent<->agent link,
    and the wire layer must stay total — any byte string decodes or raises
    :class:`~repro.exceptions.WireFormatError`, never executes content.
    Versioning rides in the frame so both ends can refuse (or down-convert)
    a peer's format without having to parse its body first.
    """

    verb: int
    version: int
    payload: bytes

    frame_type = FrameType.CONTROL

    def __post_init__(self) -> None:
        if self.verb not in KNOWN_CONTROL_VERBS:
            raise WireFormatError(f"unknown control verb 0x{self.verb:02x}")
        if not 0 <= self.version < 256:
            raise WireFormatError(f"control version {self.version} out of range")


Frame = (
    BlindedScoresFrame
    | ExtractedCandidatesFrame
    | OtPublicsFrame
    | OtResponsesFrame
    | OtCipherPairsFrame
    | OtExtColumnsFrame
    | OtExtPairsFrame
    | GarbledCircuitFrame
    | OutputLabelsFrame
    | FeaturesFrame
    | ClassifyResultFrame
    | SessionStateFrame
    | ControlFrame
)


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------
class WireCodec:
    """Encode/decode protocol frames.

    Ciphertext-bearing frames need *scheme* (and, for Paillier, *public_key*)
    to delegate to the scheme codec; a codec built without them can still
    handle every other frame type, which is what standalone OT/Yao runs use.
    """

    def __init__(
        self,
        scheme: AHEScheme | None = None,
        public_key: AHEPublicKey | None = None,
    ) -> None:
        self.scheme = scheme
        self.public_key = public_key

    # -- encoding ----------------------------------------------------------
    def encode(self, frame: Frame) -> bytes:
        frame_type = getattr(frame, "frame_type", None)
        if frame_type is None:
            raise WireFormatError(f"not a protocol frame: {type(frame)!r}")
        writer = ByteWriter()
        writer.u8(WIRE_MAGIC).u8(WIRE_VERSION).u8(frame_type)
        if isinstance(frame, (BlindedScoresFrame, ExtractedCandidatesFrame)):
            self._encode_ciphertexts(writer, frame.ciphertexts)
        elif isinstance(frame, (OtPublicsFrame, OtResponsesFrame)):
            writer.u32(len(frame.elements))
            for element in frame.elements:
                writer.big_uint(element)
        elif isinstance(frame, (OtCipherPairsFrame, OtExtPairsFrame)):
            writer.u32(len(frame.pairs))
            for first, second in frame.pairs:
                writer.blob(first)
                writer.blob(second)
        elif isinstance(frame, OtExtColumnsFrame):
            writer.u32(frame.start_index)
            writer.u32(len(frame.columns))
            for column in frame.columns:
                writer.blob(column)
        elif isinstance(frame, GarbledCircuitFrame):
            writer.blob(frame.tables.to_bytes())
            self._encode_labels(writer, frame.garbler_labels)
            writer.u8(1 if frame.decode_at_evaluator else 0)
        elif isinstance(frame, OutputLabelsFrame):
            self._encode_labels(writer, frame.labels)
        elif isinstance(frame, FeaturesFrame):
            writer.u32(len(frame.features))
            for index, frequency in frame.features:
                writer.u32(index)
                writer.u32(frequency)
        elif isinstance(frame, ClassifyResultFrame):
            writer.u32(frame.category)
        elif isinstance(frame, SessionStateFrame):
            writer.raw(frame.state.to_bytes())
        elif isinstance(frame, ControlFrame):
            writer.u8(frame.verb).u8(frame.version).blob(frame.payload)
        else:
            raise WireFormatError(f"no encoder for frame type {type(frame)!r}")
        return writer.getvalue()

    def _encode_ciphertexts(
        self, writer: ByteWriter, ciphertexts: tuple[AHECiphertext, ...]
    ) -> None:
        if self.scheme is None:
            raise WireFormatError("a scheme-less codec cannot encode ciphertext frames")
        writer.u16(len(ciphertexts))
        for ciphertext in ciphertexts:
            writer.blob(self.scheme.serialize_ciphertext(ciphertext))

    @staticmethod
    def _encode_labels(writer: ByteWriter, labels: tuple[bytes, ...]) -> None:
        writer.u32(len(labels))
        for label in labels:
            if len(label) != LABEL_BYTES:
                raise WireFormatError("wire labels must be exactly LABEL_BYTES long")
            writer.raw(label)

    # -- decoding ----------------------------------------------------------
    def decode(self, data: bytes) -> Frame:
        reader = ByteReader(data)
        magic = reader.u8()
        if magic != WIRE_MAGIC:
            raise WireFormatError(f"bad frame magic 0x{magic:02x}")
        version = reader.u8()
        if version != WIRE_VERSION:
            raise WireFormatError(f"unsupported wire version {version}")
        frame_type = reader.u8()
        frame = self._decode_body(frame_type, reader)
        reader.expect_end()
        return frame

    def _decode_body(self, frame_type: int, reader: ByteReader) -> Frame:
        if frame_type in (FrameType.BLINDED_SCORES, FrameType.EXTRACTED_CANDIDATES):
            ciphertexts = self._decode_ciphertexts(reader)
            if frame_type == FrameType.BLINDED_SCORES:
                return BlindedScoresFrame(ciphertexts)
            return ExtractedCandidatesFrame(ciphertexts)
        if frame_type in (FrameType.OT_PUBLICS, FrameType.OT_RESPONSES):
            elements = tuple(reader.big_uint() for _ in range(reader.u32()))
            if frame_type == FrameType.OT_PUBLICS:
                return OtPublicsFrame(elements)
            return OtResponsesFrame(elements)
        if frame_type in (FrameType.OT_CIPHERPAIRS, FrameType.OT_EXT_PAIRS):
            pairs = tuple((reader.blob(), reader.blob()) for _ in range(reader.u32()))
            if frame_type == FrameType.OT_CIPHERPAIRS:
                return OtCipherPairsFrame(pairs)
            return OtExtPairsFrame(pairs)
        if frame_type == FrameType.OT_EXT_COLUMNS:
            start_index = reader.u32()
            columns = tuple(reader.blob() for _ in range(reader.u32()))
            return OtExtColumnsFrame(columns, start_index)
        if frame_type == FrameType.GARBLED_CIRCUIT:
            tables = GarbledTables.from_bytes(reader.blob())
            labels = self._decode_labels(reader)
            decode_at_evaluator = reader.u8() != 0
            return GarbledCircuitFrame(tables, labels, decode_at_evaluator)
        if frame_type == FrameType.OUTPUT_LABELS:
            return OutputLabelsFrame(self._decode_labels(reader))
        if frame_type == FrameType.FEATURES:
            return FeaturesFrame(
                tuple((reader.u32(), reader.u32()) for _ in range(reader.u32()))
            )
        if frame_type == FrameType.CLASSIFY_RESULT:
            return ClassifyResultFrame(reader.u32())
        if frame_type == FrameType.SESSION_STATE:
            return SessionStateFrame(SessionState._read(reader))
        if frame_type == FrameType.CONTROL:
            verb = reader.u8()
            if verb not in KNOWN_CONTROL_VERBS:
                raise WireFormatError(f"unknown control verb 0x{verb:02x}")
            return ControlFrame(verb=verb, version=reader.u8(), payload=reader.blob())
        raise WireFormatError(f"unknown frame type 0x{frame_type:02x}")

    def _decode_ciphertexts(self, reader: ByteReader) -> tuple[AHECiphertext, ...]:
        if self.scheme is None:
            raise WireFormatError("a scheme-less codec cannot decode ciphertext frames")
        return tuple(
            self.scheme.deserialize_ciphertext(reader.blob(), public_key=self.public_key)
            for _ in range(reader.u16())
        )

    @staticmethod
    def _decode_labels(reader: ByteReader) -> tuple[bytes, ...]:
        return tuple(reader.raw(LABEL_BYTES) for _ in range(reader.u32()))
