"""The NoPriv arm: the status quo, where the provider classifies plaintext.

§6's figures compare Pretzel and its baseline against "NoPriv", a system in
which the provider locally runs classification over the plaintext email.  Its
per-email provider cost is ``L`` feature extractions, model look-ups and
float additions (Fig. 3, "Non-private" column); there is no client cost and
no extra network transfer beyond the email itself.

For parity with the private arms the exchange is also expressed as a pair of
frame-driven sessions: the client ships its plaintext feature vector in a
:class:`~repro.twopc.wire.FeaturesFrame` (standing in for the email body the
provider would read anyway) and the provider answers with a
:class:`~repro.twopc.wire.ClassifyResultFrame`.  This makes the NoPriv
provider half a reentrant request/response handler the multi-user serving
loop can multiplex exactly like the 2PC halves — and makes its "network
cost" the measured size of the features frame rather than an assumption.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.classify.model import LinearModel
from repro.exceptions import ClassifierError
from repro.twopc.session import (
    ProtocolSession,
    _restore_base_fields,
    decode_state_payload,
    encode_state_payload,
    run_session_pair,
)
from repro.twopc.transport import FramedChannel
from repro.twopc.wire import (
    ClassifyResultFrame,
    FeaturesFrame,
    Frame,
    SessionState,
    SessionStateKind,
)

SESSION_STATE_VERSION = 1

SparseVector = Mapping[int, int]


@dataclass
class NoPrivResult:
    """Outcome and provider-side cost of one plaintext classification."""

    predicted_category: int
    provider_seconds: float
    features_used: int


class NoPrivClassifier:
    """Provider-side plaintext classifier (spam or topics)."""

    def __init__(self, model: LinearModel) -> None:
        self.model = model
        # The provider's in-memory model is a plain float matrix: a lookup is
        # an array row access, an addition is a float add (Fig. 6 bottom rows).
        self._weights = np.ascontiguousarray(model.weights)
        self._biases = np.ascontiguousarray(model.biases)

    def classify(self, features: SparseVector) -> NoPrivResult:
        """Classify one plaintext email and time the provider-side work."""
        if not isinstance(features, Mapping):
            raise ClassifierError("features must be a sparse mapping")
        start = time.perf_counter()
        scores = self._biases.copy()
        for index, count in features.items():
            if 0 <= index < self._weights.shape[0] and count:
                scores += count * self._weights[index]
        predicted = int(np.argmax(scores))
        elapsed = time.perf_counter() - start
        return NoPrivResult(
            predicted_category=predicted,
            provider_seconds=elapsed,
            features_used=len(features),
        )

    def classify_is_spam(self, features: SparseVector, spam_column: int = 0) -> tuple[bool, float]:
        """Two-category convenience wrapper returning (is_spam, provider_seconds)."""
        result = self.classify(features)
        return result.predicted_category == spam_column, result.provider_seconds


class NoPrivClientSession(ProtocolSession):
    """The client half: send the plaintext features, receive the verdict."""

    def __init__(self, features: SparseVector) -> None:
        super().__init__()
        if not isinstance(features, Mapping):
            raise ClassifierError("features must be a sparse mapping")
        self.features = features
        self.predicted_category: int | None = None

    def _start(self) -> list[Frame]:
        entries = tuple(
            (int(index), int(count))
            for index, count in sorted(self.features.items())
            if int(index) >= 0 and int(count) > 0
        )
        return [FeaturesFrame(entries)]

    def _handle(self, frame: Frame) -> list[Frame]:
        if not isinstance(frame, ClassifyResultFrame):
            return self._unexpected(frame)
        self.predicted_category = frame.category
        self.finished = True
        return []

    # -- session persistence --------------------------------------------------
    def snapshot(self) -> SessionState:
        return SessionState(
            kind=SessionStateKind.NOPRV_CLIENT,
            version=SESSION_STATE_VERSION,
            payload=encode_state_payload(
                started=self.started,
                finished=self.finished,
                seconds=self.seconds,
                features=[
                    [int(index), int(count)] for index, count in sorted(self.features.items())
                ],
                predicted_category=self.predicted_category,
            ),
        )

    @classmethod
    def restore(cls, state: SessionState) -> "NoPrivClientSession":
        payload = decode_state_payload(
            state, SessionStateKind.NOPRV_CLIENT, SESSION_STATE_VERSION
        )
        session = cls({int(index): int(count) for index, count in payload["features"]})
        _restore_base_fields(session, payload)
        session.predicted_category = payload["predicted_category"]
        return session


class NoPrivProviderSession(ProtocolSession):
    """The provider half: one classification per features frame, stateless after."""

    def __init__(self, classifier: NoPrivClassifier) -> None:
        super().__init__()
        self.classifier = classifier
        self.result: NoPrivResult | None = None

    def _handle(self, frame: Frame) -> list[Frame]:
        if not isinstance(frame, FeaturesFrame):
            return self._unexpected(frame)
        self.result = self.classifier.classify(dict(frame.features))
        self.finished = True
        return [ClassifyResultFrame(self.result.predicted_category)]

    # -- session persistence --------------------------------------------------
    def snapshot(self) -> SessionState:
        result = None
        if self.result is not None:
            result = {
                "predicted_category": self.result.predicted_category,
                "provider_seconds": self.result.provider_seconds,
                "features_used": self.result.features_used,
            }
        return SessionState(
            kind=SessionStateKind.NOPRV_PROVIDER,
            version=SESSION_STATE_VERSION,
            payload=encode_state_payload(
                started=self.started,
                finished=self.finished,
                seconds=self.seconds,
                result=result,
            ),
        )

    @classmethod
    def restore(
        cls, classifier: NoPrivClassifier, state: SessionState
    ) -> "NoPrivProviderSession":
        payload = decode_state_payload(
            state, SessionStateKind.NOPRV_PROVIDER, SESSION_STATE_VERSION
        )
        session = cls(classifier)
        _restore_base_fields(session, payload)
        if payload["result"] is not None:
            session.result = NoPrivResult(
                predicted_category=int(payload["result"]["predicted_category"]),
                provider_seconds=float(payload["result"]["provider_seconds"]),
                features_used=int(payload["result"]["features_used"]),
            )
        return session


def run_noprv_session(
    classifier: NoPrivClassifier,
    features: SparseVector,
    channel: FramedChannel | None = None,
) -> tuple[NoPrivResult, int]:
    """Drive one NoPriv exchange over a framed channel.

    Returns the provider-side :class:`NoPrivResult` and the exact number of
    bytes that crossed the transport (the features frame stands in for the
    plaintext email the provider reads in the status quo).
    """
    channel = channel or FramedChannel.loopback("noprv")
    bytes_before = channel.total_bytes()
    client = NoPrivClientSession(features)
    provider = NoPrivProviderSession(classifier)
    run_session_pair(channel, {"client": client, "provider": provider})
    assert provider.result is not None
    return provider.result, channel.total_bytes() - bytes_before
