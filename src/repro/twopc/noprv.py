"""The NoPriv arm: the status quo, where the provider classifies plaintext.

§6's figures compare Pretzel and its baseline against "NoPriv", a system in
which the provider locally runs classification over the plaintext email.  Its
per-email provider cost is ``L`` feature extractions, model look-ups and
float additions (Fig. 3, "Non-private" column); there is no client cost and
no extra network transfer beyond the email itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.classify.model import LinearModel
from repro.exceptions import ClassifierError

SparseVector = Mapping[int, int]


@dataclass
class NoPrivResult:
    """Outcome and provider-side cost of one plaintext classification."""

    predicted_category: int
    provider_seconds: float
    features_used: int


class NoPrivClassifier:
    """Provider-side plaintext classifier (spam or topics)."""

    def __init__(self, model: LinearModel) -> None:
        self.model = model
        # The provider's in-memory model is a plain float matrix: a lookup is
        # an array row access, an addition is a float add (Fig. 6 bottom rows).
        self._weights = np.ascontiguousarray(model.weights)
        self._biases = np.ascontiguousarray(model.biases)

    def classify(self, features: SparseVector) -> NoPrivResult:
        """Classify one plaintext email and time the provider-side work."""
        if not isinstance(features, Mapping):
            raise ClassifierError("features must be a sparse mapping")
        start = time.perf_counter()
        scores = self._biases.copy()
        for index, count in features.items():
            if 0 <= index < self._weights.shape[0] and count:
                scores += count * self._weights[index]
        predicted = int(np.argmax(scores))
        elapsed = time.perf_counter() - start
        return NoPrivResult(
            predicted_category=predicted,
            provider_seconds=elapsed,
            features_used=len(features),
        )

    def classify_is_spam(self, features: SparseVector, spam_column: int = 0) -> tuple[bool, float]:
        """Two-category convenience wrapper returning (is_spam, provider_seconds)."""
        result = self.classify(features)
        return result.predicted_category == spam_column, result.provider_seconds
