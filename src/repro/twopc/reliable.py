"""Reliable framing: exactly-once, in-order frames over a lossy transport.

The protocol stack assumes a perfect pipe — :class:`~repro.twopc.session.SessionLoop`
delivers each frame exactly once, in order, and a single dropped or corrupted
frame wedges a whole protocol session.  This module inserts a small
ack/retransmit layer *underneath* :class:`~repro.twopc.transport.FramedChannel`
so that protocol code keeps that assumption over a degraded network with zero
protocol-level changes.

Every frame crossing the wire carries a 10-byte reliability header::

    offset  size  field
    0       1     magic (0x52, "R")
    1       1     type  (0x01 DATA | 0x02 ACK)
    2       4     u32   sequence number (DATA) / cumulative ack (ACK)
    6       4     u32   CRC32 over header-sans-CRC + payload

DATA frames are numbered from 1 by each sender and kept until cumulatively
acked.  A receiver acks every in-order delivery with the highest contiguous
sequence it has seen; duplicates are dropped (and re-acked, in case the
original ack was lost), gaps are buffered for in-order reassembly, and any
frame whose CRC32 does not verify is discarded as corrupt — the retransmit
path recovers it.  Retransmission is timeout-driven with exponential backoff
on the poll deadline; a channel that makes no progress for
``max_attempts`` polls raises :class:`~repro.exceptions.ReliabilityError`.

Two arrangements are provided, mirroring the transport layer:

* :class:`ReliableChannel` — the shared-object (in-process) arrangement: one
  instance owns both ends, wrapping any synchronous
  :class:`~repro.twopc.transport.Transport` (typically a
  :class:`~repro.twopc.transport.FaultyTransport`).  Because both parties are
  driven from one thread, a receiver's poll timeout doubles as the *peer's*
  retransmit timer: frames the peer sent but never saw acked are put back on
  the wire.
* :class:`AsyncReliableTransport` — one endpoint of a cross-process pair
  (asyncio).  Each endpoint keeps its own send window; on a poll timeout it
  retransmits its *own* unacked frames, and on receiving a duplicate DATA
  frame it both re-acks and retransmits its unacked window, which unsticks
  the request/response pattern the protocols follow when a response is lost.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque

from repro.exceptions import (
    ProtocolError,
    ReliabilityError,
    TransportClosedError,
    TransportTimeoutError,
    WireFormatError,
)
from repro.obs import get_registry
from repro.twopc.transport import (
    FaultSpec,
    FaultyTransport,
    FramedChannel,
    LoopbackTransport,
    Transport,
)
from repro.twopc.wire import WireCodec

#: Reliability header: magic, frame type, seq/ack, CRC32.
RELIABLE_HEADER = struct.Struct(">BBII")
RELIABLE_MAGIC = 0x52
TYPE_DATA = 0x01
TYPE_ACK = 0x02

#: Poll deadline for the first receive attempt; doubles per timeout.
DEFAULT_BASE_TIMEOUT = 0.05
#: Receive attempts (polls) without progress before the layer gives up.
DEFAULT_MAX_ATTEMPTS = 16


def encode_reliable(frame_type: int, sequence: int, payload: bytes = b"") -> bytes:
    """Serialize one reliability frame (header + payload, CRC over both)."""
    if frame_type not in (TYPE_DATA, TYPE_ACK):
        raise WireFormatError(f"unknown reliability frame type 0x{frame_type:02x}")
    if not 0 <= sequence <= 0xFFFFFFFF:
        raise WireFormatError(f"sequence {sequence} does not fit in u32")
    prefix = struct.pack(">BBI", RELIABLE_MAGIC, frame_type, sequence)
    checksum = zlib.crc32(prefix + payload) & 0xFFFFFFFF
    return prefix + struct.pack(">I", checksum) + payload


def decode_reliable(data: bytes) -> tuple[int, int, bytes]:
    """Parse and verify one reliability frame; returns (type, seq, payload).

    Raises :class:`~repro.exceptions.WireFormatError` on any damage — a bad
    magic, an unknown type, a truncated header, or a CRC mismatch.  Callers
    treat that as "the network corrupted this frame" and drop it.
    """
    if len(data) < RELIABLE_HEADER.size:
        raise WireFormatError(f"reliability frame truncated at {len(data)} bytes")
    magic, frame_type, sequence, checksum = RELIABLE_HEADER.unpack_from(data)
    payload = data[RELIABLE_HEADER.size :]
    if magic != RELIABLE_MAGIC:
        raise WireFormatError(f"bad reliability magic 0x{magic:02x}")
    if frame_type not in (TYPE_DATA, TYPE_ACK):
        raise WireFormatError(f"unknown reliability frame type 0x{frame_type:02x}")
    expected = zlib.crc32(data[:6] + payload) & 0xFFFFFFFF
    if checksum != expected:
        raise WireFormatError(
            f"reliability CRC mismatch (got 0x{checksum:08x}, want 0x{expected:08x})"
        )
    return frame_type, sequence, payload


class _EndpointState:
    """Per-party reliability bookkeeping (one direction of the conversation)."""

    def __init__(self) -> None:
        self.next_sequence = 1  # next DATA sequence this party assigns
        self.unacked: dict[int, bytes] = {}  # sent by this party, not yet acked
        self.expected = 1  # next peer sequence this party will deliver
        self.ready: deque[bytes] = deque()  # in-order payloads awaiting delivery
        self.out_of_order: dict[int, bytes] = {}  # buffered past-the-gap frames


class _ReliabilityCore:
    """Frame bookkeeping shared by the sync channel and the async endpoint."""

    def __init__(self) -> None:
        self.stats = {
            "retransmissions": 0,
            "acks_sent": 0,
            "duplicates_dropped": 0,
            "corrupt_dropped": 0,
        }
        # Mirror each stat into the process registry (bound once per channel).
        registry = get_registry()
        self._metrics = {
            key: registry.counter(f"reliable_{key}_total") for key in self.stats
        }

    def bump(self, key: str) -> None:
        self.stats[key] += 1
        self._metrics[key].inc()

    def on_data(self, state: _EndpointState, sequence: int, payload: bytes) -> tuple[int, bool]:
        """Apply one inbound DATA frame; returns (cumulative ack, was duplicate)."""
        duplicate = False
        if sequence < state.expected:
            self.bump("duplicates_dropped")
            duplicate = True
        elif sequence == state.expected:
            state.ready.append(payload)
            state.expected += 1
            while state.expected in state.out_of_order:
                state.ready.append(state.out_of_order.pop(state.expected))
                state.expected += 1
        elif sequence in state.out_of_order:
            self.bump("duplicates_dropped")
            duplicate = True
        else:
            state.out_of_order[sequence] = payload
        return state.expected - 1, duplicate

    def on_ack(self, state: _EndpointState, cumulative: int) -> None:
        """Drop every frame the peer has cumulatively acknowledged."""
        for sequence in [seq for seq in state.unacked if seq <= cumulative]:
            del state.unacked[sequence]


class ReliableChannel(Transport):
    """Exactly-once in-order delivery over a lossy synchronous transport.

    A drop-in :class:`~repro.twopc.transport.Transport`: wrap it in a
    :class:`~repro.twopc.transport.FramedChannel` and every protocol in the
    repo runs unchanged over a faulty pipe.  The ledger charges each party the
    *protocol* payload bytes exactly once per logical frame, so §4 cost
    accounting is unaffected by retransmissions; the inner transport's ledger
    shows the wire-level traffic including reliability overhead, retransmits
    and acks.
    """

    def __init__(
        self,
        inner: Transport,
        name: str | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        base_timeout: float = DEFAULT_BASE_TIMEOUT,
    ) -> None:
        super().__init__(inner.parties, name or f"reliable[{inner.name}]")
        if max_attempts < 1:
            raise ProtocolError("max_attempts must be at least 1")
        self.inner = inner
        self.max_attempts = max_attempts
        self.base_timeout = base_timeout
        self._core = _ReliabilityCore()
        self._states = {party: _EndpointState() for party in inner.parties}

    @property
    def stats(self) -> dict[str, int]:
        return dict(self._core.stats)

    # -- sending ------------------------------------------------------------
    def send(self, sender: str, data: bytes) -> int:
        self._check_party(sender)
        data = bytes(data)
        state = self._states[sender]
        sequence = state.next_sequence
        state.next_sequence += 1
        state.unacked[sequence] = data
        self._account(sender, len(data))
        self.inner.send(sender, encode_reliable(TYPE_DATA, sequence, data))
        return len(data)

    # -- receiving ----------------------------------------------------------
    def receive(self, receiver: str, timeout_seconds: float | None = None) -> bytes:
        self._check_party(receiver)
        state = self._states[receiver]
        peer = self.peer_of(receiver)
        peer_state = self._states[peer]
        timeouts = 0
        for _ in range(self.max_attempts * 64):  # hard stop against livelock
            if state.ready:
                return state.ready.popleft()
            poll = self.base_timeout * (2 ** min(timeouts, 6))
            if timeout_seconds is not None:
                poll = min(poll, timeout_seconds)
            try:
                raw = self.inner.receive(receiver, poll)
            except TransportTimeoutError:
                timeouts += 1
                # Both ends live in this object, so when the peer's
                # retransmit timer "fires" it can first learn what the lossy
                # wire acks never told it: everything below the receiver's
                # delivery frontier arrived (an implicit cumulative ack).
                # Without this, one lost tail ACK pins a delivered frame in
                # the unacked window forever.
                self._core.on_ack(peer_state, state.expected - 1)
                if timeouts >= self.max_attempts:
                    raise ReliabilityError(
                        f"no progress for {receiver!r} after {timeouts} polls "
                        f"({len(peer_state.unacked)} peer frame(s) unacked)"
                    ) from None
                if not peer_state.unacked and not state.out_of_order:
                    # Nothing in flight anywhere: behave like the bare
                    # transport and let the caller see the silence.
                    raise
                # Both parties run on this thread, so the receiver's poll
                # timeout doubles as the peer's retransmit timer firing.
                self._retransmit(peer, peer_state)
                continue
            try:
                frame_type, sequence, payload = decode_reliable(raw)
            except WireFormatError:
                self._core.bump("corrupt_dropped")
                continue
            if frame_type == TYPE_ACK:
                self._core.on_ack(state, sequence)
                continue
            cumulative, duplicate = self._core.on_data(state, sequence, payload)
            self.inner.send(receiver, encode_reliable(TYPE_ACK, cumulative))
            self._core.bump("acks_sent")
            if duplicate and not state.ready:
                # The peer is resending history, so our ack (or our own last
                # frame) probably got lost — push our unacked window too.
                self._retransmit(receiver, state)
        raise ReliabilityError(f"receive loop for {receiver!r} made no progress")

    def _retransmit(self, sender: str, state: _EndpointState) -> None:
        for sequence in sorted(state.unacked):
            self.inner.send(sender, encode_reliable(TYPE_DATA, sequence, state.unacked[sequence]))
            self._core.bump("retransmissions")

    # -- plumbing -----------------------------------------------------------
    def pending(self) -> int:
        buffered = sum(
            len(state.ready) + len(state.out_of_order) for state in self._states.values()
        )
        return self.inner.pending() + buffered

    def close(self) -> None:
        self.inner.close()


def chaos_channel(
    spec: FaultSpec,
    scheme=None,
    public_key=None,
    parties: tuple[str, str] = ("client", "provider"),
    name: str = "chaos",
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> tuple[FramedChannel, FaultyTransport, ReliableChannel]:
    """The full degraded-network stack in one call.

    ``FramedChannel(ReliableChannel(FaultyTransport(LoopbackTransport)))`` —
    a drop-in replacement for ``protocol.make_channel(setup)`` that runs the
    same protocol over a seeded-lossy pipe.  Returns the channel plus the
    two wrapper layers so callers can read the fault ledger and the
    retransmit stats afterwards.
    """
    faulty = FaultyTransport(LoopbackTransport(parties=parties, name=name), spec)
    reliable = ReliableChannel(faulty, max_attempts=max_attempts)
    channel = FramedChannel(
        reliable, WireCodec(scheme=scheme, public_key=public_key), name=name
    )
    return channel, faulty, reliable


class AsyncReliableTransport:
    """One reliable endpoint of a cross-process pair (asyncio convention).

    Wraps one async endpoint (an
    :class:`~repro.twopc.transport.AsyncTcpTransport` or its faulty wrapper)
    and exposes the same calling convention, so it slots directly under
    :class:`~repro.twopc.transport.AsyncFramedChannel`.  Unlike the sync
    channel, each endpoint only controls its own side: on a poll timeout it
    retransmits its own unacked frames, and a duplicate inbound DATA frame
    triggers both a re-ack and a retransmit of the unacked window.
    """

    def __init__(
        self,
        inner,
        name: str | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        base_timeout: float = DEFAULT_BASE_TIMEOUT,
    ) -> None:
        if max_attempts < 1:
            raise ProtocolError("max_attempts must be at least 1")
        self.inner = inner
        self.name = name or f"reliable[{inner.name}]"
        self.max_attempts = max_attempts
        self.base_timeout = base_timeout
        self._core = _ReliabilityCore()
        self._state = _EndpointState()

    @property
    def stats(self) -> dict[str, int]:
        return dict(self._core.stats)

    # -- ledger / identity delegation ---------------------------------------
    @property
    def parties(self) -> tuple[str, str]:
        return self.inner.parties

    @property
    def local_party(self) -> str:
        return self.inner.local_party

    @property
    def bytes_by_sender(self) -> dict[str, int]:
        return self.inner.bytes_by_sender

    @property
    def messages_by_sender(self) -> dict[str, int]:
        return self.inner.messages_by_sender

    def peer_of(self, party: str) -> str:
        return self.inner.peer_of(party)

    def total_bytes(self) -> int:
        return self.inner.total_bytes()

    def total_messages(self) -> int:
        return self.inner.total_messages()

    def rounds(self) -> int:
        return self.inner.rounds()

    def pending(self) -> int:
        return self.inner.pending() + len(self._state.ready) + len(self._state.out_of_order)

    # -- frame movement ------------------------------------------------------
    async def send(self, sender: str, data: bytes) -> int:
        data = bytes(data)
        state = self._state
        sequence = state.next_sequence
        state.next_sequence += 1
        state.unacked[sequence] = data
        await self.inner.send(sender, encode_reliable(TYPE_DATA, sequence, data))
        return len(data)

    async def receive(self, receiver: str, timeout_seconds: float | None = None) -> bytes:
        state = self._state
        timeouts = 0
        for _ in range(self.max_attempts * 64):
            if state.ready:
                return state.ready.popleft()
            poll = self.base_timeout * (2 ** min(timeouts, 6))
            if timeout_seconds is not None:
                poll = min(poll, timeout_seconds)
            try:
                raw = await self.inner.receive(receiver, poll)
            except TransportTimeoutError:
                timeouts += 1
                if timeouts >= self.max_attempts:
                    raise ReliabilityError(
                        f"no progress for {receiver!r} after {timeouts} polls "
                        f"({len(state.unacked)} local frame(s) unacked)"
                    ) from None
                # Our last frames may never have arrived; push them again so
                # the peer can respond.
                await self._retransmit()
                continue
            try:
                frame_type, sequence, payload = decode_reliable(raw)
            except WireFormatError:
                self._core.bump("corrupt_dropped")
                continue
            if frame_type == TYPE_ACK:
                self._core.on_ack(state, sequence)
                continue
            cumulative, duplicate = self._core.on_data(state, sequence, payload)
            if await self._send_control(encode_reliable(TYPE_ACK, cumulative)):
                self._core.bump("acks_sent")
            if duplicate and not state.ready:
                await self._retransmit()
        raise ReliabilityError(f"receive loop for {receiver!r} made no progress")

    async def _send_control(self, frame: bytes) -> bool:
        """Best-effort ack/retransmit write: a peer that already hung up after
        flushing its tail must not invalidate frames we have reassembled."""
        try:
            await self.inner.send(self.local_party, frame)
        except TransportClosedError:
            return False
        return True

    async def _retransmit(self) -> None:
        state = self._state
        for sequence in sorted(state.unacked):
            if await self._send_control(encode_reliable(TYPE_DATA, sequence, state.unacked[sequence])):
                self._core.bump("retransmissions")

    async def aclose(self) -> None:
        await self.inner.aclose()

    def close(self) -> None:
        self.inner.close()
