"""A legacy in-process two-party channel for *untyped* payloads.

The protocol stack proper no longer uses this: every protocol message is a
typed frame (:mod:`repro.twopc.wire`) carried over a transport
(:mod:`repro.twopc.transport`), and network accounting charges the exact
serialized frame length.  :class:`TwoPartyChannel` remains for tests and
ad-hoc experiments that want to shuttle plain Python values between two
in-process roles with a size *estimate* attached.

Because the real protocol paths have real codecs now,
:func:`estimate_message_bytes` refuses to guess: an object it cannot size
(no canonical encoding, no ``size_bytes``) raises
:class:`~repro.exceptions.ProtocolError` instead of silently under-counting
with a flat fallback.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.crypto.ahe import AHECiphertext
from repro.crypto.garbled import GarbledTables
from repro.exceptions import ProtocolError
from repro.utils.serialization import canonical_dumps


def estimate_message_bytes(message: Any) -> int:
    """Approximate the wire size of a protocol message.

    Structured values are sized via the canonical serialization; opaque
    crypto objects report their own serialized size (which is what a real
    implementation would put on the wire, without Python object overhead).
    """
    if isinstance(message, AHECiphertext):
        return message.size_bytes
    if isinstance(message, GarbledTables):
        return message.size_bytes()
    if isinstance(message, (bytes, bytearray)):
        return len(message)
    if isinstance(message, (list, tuple)):
        return sum(estimate_message_bytes(item) for item in message)
    if isinstance(message, dict):
        return sum(
            len(str(key).encode("utf-8")) + estimate_message_bytes(value)
            for key, value in message.items()
        )
    if isinstance(message, (int, float, str, bool)) or message is None:
        return len(canonical_dumps(message))
    # Objects that know their own wire size.
    size_attr = getattr(message, "size_bytes", None)
    if isinstance(size_attr, int):
        return size_attr
    if callable(size_attr):
        return int(size_attr())
    encoded = getattr(message, "encoded_size_bytes", None)
    if callable(encoded):
        return int(encoded())
    # No silent fallback: an unsized object would corrupt the byte accounting
    # the paper's evaluation depends on.  Objects that cross parties belong in
    # a typed frame (repro.twopc.wire) with a real codec.
    raise ProtocolError(
        f"cannot size a {type(message).__name__} for the wire; give it a codec "
        "in repro.twopc.wire or a size_bytes attribute"
    )


@dataclass
class _QueuedMessage:
    sender: str
    payload: Any
    size: int


class TwoPartyChannel:
    """FIFO message channel between two in-process parties.

    ``send(sender, payload)`` enqueues a message and accounts its bytes to
    *sender*; ``receive(receiver)`` pops the oldest message that was **not**
    sent by *receiver*.  Any pair of role names works, so sub-protocols (the
    OTs inside Yao) can reuse the same channel with their own role names while
    the total byte count stays consistent.
    """

    def __init__(self, name: str = "channel") -> None:
        self.name = name
        self._queue: deque[_QueuedMessage] = deque()
        self.bytes_by_sender: dict[str, int] = {}
        self.messages_by_sender: dict[str, int] = {}

    def send(self, sender: str, payload: Any) -> int:
        """Enqueue *payload* from *sender*; returns the accounted byte size."""
        size = estimate_message_bytes(payload)
        self._queue.append(_QueuedMessage(sender=sender, payload=payload, size=size))
        self.bytes_by_sender[sender] = self.bytes_by_sender.get(sender, 0) + size
        self.messages_by_sender[sender] = self.messages_by_sender.get(sender, 0) + 1
        return size

    def receive(self, receiver: str) -> Any:
        """Pop the oldest message destined for *receiver* (i.e. not sent by it)."""
        for index, message in enumerate(self._queue):
            if message.sender != receiver:
                del self._queue[index]
                return message.payload
        raise ProtocolError(f"no pending message for {receiver!r} on channel {self.name!r}")

    def total_bytes(self) -> int:
        """Total bytes sent by every party so far."""
        return sum(self.bytes_by_sender.values())

    def total_messages(self) -> int:
        return sum(self.messages_by_sender.values())

    def pending(self) -> int:
        """Number of queued, not-yet-received messages (should be 0 after a protocol)."""
        return len(self._queue)

    def reset_accounting(self) -> None:
        """Zero the byte counters (queue contents are left untouched)."""
        self.bytes_by_sender.clear()
        self.messages_by_sender.clear()
