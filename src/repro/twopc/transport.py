"""Transport abstraction: moving serialized frames between two parties.

A :class:`Transport` carries opaque byte strings between exactly two named
parties and keeps the ledger the paper's evaluation needs — bytes and
messages per sending party, plus communication *rounds* (a round is a maximal
burst of consecutive frames from one direction; Figs. 3/6/11 report rounds
alongside bytes).  Accounting is exact: a transport charges ``len(data)`` for
every frame it accepts, nothing is estimated.

Two implementations are provided:

* :class:`LoopbackTransport` — an in-process FIFO, the default for unit tests,
  benchmarks and the multi-session serving loop of :mod:`repro.core.runtime`;
* :class:`SocketTransport` — a real OS socket pair with length-prefixed
  frames.  Writes are drained by per-party background threads so that two
  parties driven from a single thread can exchange frames larger than the
  kernel buffers without deadlocking.

:class:`FramedChannel` layers a :class:`~repro.twopc.wire.WireCodec` on top:
protocol code sends and receives *typed frames*, the transport sees bytes.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
from abc import ABC, abstractmethod
from collections import deque

from repro.crypto.ahe import AHEPublicKey, AHEScheme
from repro.exceptions import ProtocolError
from repro.twopc.wire import Frame, WireCodec


class Transport(ABC):
    """Duplex byte transport between two named parties, with exact accounting."""

    def __init__(self, parties: tuple[str, str], name: str = "transport") -> None:
        if len(set(parties)) != 2:
            raise ProtocolError("a transport connects exactly two distinct parties")
        self.name = name
        self.parties = tuple(parties)
        self.bytes_by_sender: dict[str, int] = {party: 0 for party in self.parties}
        self.messages_by_sender: dict[str, int] = {party: 0 for party in self.parties}
        self.frame_log: list[tuple[str, int]] = []  # (sender, size) per frame, in order
        self._last_sender: str | None = None
        self._rounds = 0

    def peer_of(self, party: str) -> str:
        self._check_party(party)
        first, second = self.parties
        return second if party == first else first

    def _check_party(self, party: str) -> None:
        if party not in self.parties:
            raise ProtocolError(
                f"unknown party {party!r} on transport {self.name!r} "
                f"(parties: {self.parties})"
            )

    def _account(self, sender: str, size: int) -> None:
        self.bytes_by_sender[sender] += size
        self.messages_by_sender[sender] += 1
        self.frame_log.append((sender, size))
        if sender != self._last_sender:
            self._rounds += 1
            self._last_sender = sender

    # -- byte movement ------------------------------------------------------
    @abstractmethod
    def send(self, sender: str, data: bytes) -> int:
        """Accept *data* from *sender* for delivery to the peer; returns len(data)."""

    @abstractmethod
    def receive(self, receiver: str) -> bytes:
        """Return the oldest undelivered frame addressed to *receiver*."""

    @abstractmethod
    def pending(self) -> int:
        """Frames accepted but not yet received (0 after a completed protocol)."""

    # -- ledger -------------------------------------------------------------
    def total_bytes(self) -> int:
        return sum(self.bytes_by_sender.values())

    def total_messages(self) -> int:
        return sum(self.messages_by_sender.values())

    def rounds(self) -> int:
        """Completed communication rounds (direction changes, counting the first)."""
        return self._rounds

    def close(self) -> None:
        """Release any OS resources (no-op for in-process transports)."""


class LoopbackTransport(Transport):
    """In-process FIFO transport; both parties live in one Python process."""

    def __init__(
        self, parties: tuple[str, str] = ("client", "provider"), name: str = "loopback"
    ) -> None:
        super().__init__(parties, name)
        self._queues: dict[str, deque[bytes]] = {party: deque() for party in self.parties}

    def send(self, sender: str, data: bytes) -> int:
        self._check_party(sender)
        self._account(sender, len(data))
        self._queues[self.peer_of(sender)].append(bytes(data))
        return len(data)

    def receive(self, receiver: str) -> bytes:
        self._check_party(receiver)
        pending = self._queues[receiver]
        if not pending:
            raise ProtocolError(
                f"no pending frame for {receiver!r} on transport {self.name!r}"
            )
        return pending.popleft()

    def pending(self) -> int:
        return sum(len(pending) for pending in self._queues.values())


class SocketTransport(Transport):
    """Real OS sockets (a ``socketpair``) with u32-length-prefixed frames.

    Each party owns one end of the pair.  Sends are enqueued to a per-party
    writer thread that drains into the socket, so a single-threaded driver
    pumping both parties cannot deadlock on frames larger than the kernel
    buffer.  Receives block (with *timeout*) on the receiving party's socket.
    """

    _LENGTH = struct.Struct(">I")

    def __init__(
        self,
        parties: tuple[str, str] = ("client", "provider"),
        name: str = "socket",
        timeout: float = 30.0,
    ) -> None:
        super().__init__(parties, name)
        left, right = socket.socketpair()
        for sock in (left, right):
            sock.settimeout(timeout)
        self._sockets: dict[str, socket.socket] = {
            self.parties[0]: left,
            self.parties[1]: right,
        }
        self._outboxes: dict[str, queue.Queue] = {party: queue.Queue() for party in self.parties}
        self._in_flight: dict[str, int] = {party: 0 for party in self.parties}
        self._lock = threading.Lock()
        self._closed = False
        self._writers = []
        for party in self.parties:
            writer = threading.Thread(
                target=self._drain_outbox, args=(party,), daemon=True,
                name=f"{name}-writer-{party}",
            )
            writer.start()
            self._writers.append(writer)

    def _drain_outbox(self, party: str) -> None:
        sock = self._sockets[party]
        outbox = self._outboxes[party]
        while True:
            item = outbox.get()
            if item is None:
                return
            try:
                sock.sendall(item)
            except OSError:
                return  # peer closed; receive() will surface the error

    def send(self, sender: str, data: bytes) -> int:
        self._check_party(sender)
        if self._closed:
            raise ProtocolError(f"transport {self.name!r} is closed")
        with self._lock:
            self._account(sender, len(data))
            self._in_flight[self.peer_of(sender)] += 1
        self._outboxes[sender].put(self._LENGTH.pack(len(data)) + data)
        return len(data)

    def receive(self, receiver: str) -> bytes:
        self._check_party(receiver)
        sock = self._sockets[receiver]
        try:
            header = self._read_exact(sock, self._LENGTH.size)
            length = self._LENGTH.unpack(header)[0]
            data = self._read_exact(sock, length)
        except socket.timeout as timeout:
            raise ProtocolError(
                f"timed out waiting for a frame for {receiver!r} on {self.name!r}"
            ) from timeout
        with self._lock:
            self._in_flight[receiver] -= 1
        return data

    @staticmethod
    def _read_exact(sock: socket.socket, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            chunk = sock.recv(count - len(chunks))
            if not chunk:
                raise ProtocolError("socket transport peer closed mid-frame")
            chunks += chunk
        return bytes(chunks)

    def pending(self) -> int:
        with self._lock:
            return sum(self._in_flight.values())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for party in self.parties:
            self._outboxes[party].put(None)
        for writer in self._writers:
            writer.join(timeout=1.0)
        for sock in self._sockets.values():
            sock.close()


class FramedChannel:
    """A typed frame channel: :class:`WireCodec` over a :class:`Transport`.

    This is what every protocol party holds.  ``send`` serializes a frame and
    charges its exact byte length to the sending party; ``receive`` decodes
    the oldest frame addressed to the receiver.  The ledger methods delegate
    to the transport, so ``total_bytes()`` is by construction the sum of the
    serialized frame lengths that crossed the wire.
    """

    def __init__(self, transport: Transport, codec: WireCodec, name: str | None = None) -> None:
        self.transport = transport
        self.codec = codec
        self.name = name or transport.name

    @classmethod
    def loopback(
        cls,
        name: str = "channel",
        scheme: AHEScheme | None = None,
        public_key: AHEPublicKey | None = None,
        parties: tuple[str, str] = ("client", "provider"),
    ) -> "FramedChannel":
        """An in-process framed channel (the default for protocol drivers)."""
        return cls(
            LoopbackTransport(parties=parties, name=name),
            WireCodec(scheme=scheme, public_key=public_key),
            name=name,
        )

    # -- frame movement -----------------------------------------------------
    def send(self, sender: str, frame: Frame) -> int:
        return self.transport.send(sender, self.codec.encode(frame))

    def receive(self, receiver: str) -> Frame:
        return self.codec.decode(self.transport.receive(receiver))

    # -- ledger (delegated) -------------------------------------------------
    @property
    def parties(self) -> tuple[str, str]:
        return self.transport.parties

    @property
    def bytes_by_sender(self) -> dict[str, int]:
        return self.transport.bytes_by_sender

    @property
    def messages_by_sender(self) -> dict[str, int]:
        return self.transport.messages_by_sender

    def total_bytes(self) -> int:
        return self.transport.total_bytes()

    def total_messages(self) -> int:
        return self.transport.total_messages()

    def rounds(self) -> int:
        return self.transport.rounds()

    def pending(self) -> int:
        return self.transport.pending()

    def close(self) -> None:
        self.transport.close()
