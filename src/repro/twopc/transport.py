"""Transport abstraction: moving serialized frames between two parties.

A :class:`Transport` carries opaque byte strings between exactly two named
parties and keeps the ledger the paper's evaluation needs — bytes and
messages per sending party, plus communication *rounds* (a round is a maximal
burst of consecutive frames from one direction; Figs. 3/6/11 report rounds
alongside bytes).  Accounting is exact: a transport charges ``len(data)`` for
every frame it accepts, nothing is estimated.

Three implementations are provided:

* :class:`LoopbackTransport` — an in-process FIFO, the default for unit tests,
  benchmarks and the multi-session serving loop of :mod:`repro.core.runtime`;
* :class:`SocketTransport` — a real OS socket pair with length-prefixed
  frames.  Writes are drained by per-party background threads so that two
  parties driven from a single thread can exchange frames larger than the
  kernel buffers without deadlocking.
* :class:`AsyncTcpTransport` — **one endpoint** of a real TCP connection
  (asyncio streams) using the same u32-length-prefixed framing.  This is the
  cross-process arrangement: the client process and the provider process each
  hold their own endpoint and their own ledger, and the serving side
  multiplexes many connections on one event loop
  (:class:`repro.twopc.session.AsyncSessionPump`).

All byte-stream transports share :class:`FrameAssembler`, the incremental
length-prefix parser, so framing behaviour under adversarial write splits
(1-byte writes, frame-boundary straddles) is defined — and property-tested —
exactly once.  A closed transport (or a peer hangup mid-frame) raises
:class:`~repro.exceptions.TransportClosedError`, never a raw ``OSError``.

:class:`FramedChannel` layers a :class:`~repro.twopc.wire.WireCodec` on top:
protocol code sends and receives *typed frames*, the transport sees bytes.
:class:`AsyncFramedChannel` is its asyncio twin.
"""

from __future__ import annotations

import asyncio
import queue
import random
import socket
import struct
import threading
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass

from repro.crypto.ahe import AHEPublicKey, AHEScheme
from repro.exceptions import (
    ProtocolError,
    TransportClosedError,
    TransportTimeoutError,
    WireFormatError,
)
from repro.obs import get_registry
from repro.twopc.wire import Frame, WireCodec

#: Every byte-stream transport prefixes each frame with its u32 length.
FRAME_LENGTH_PREFIX = struct.Struct(">I")

#: Upper bound on a single frame accepted off the wire (64 MiB).  Nothing the
#: protocols produce comes near this; it exists so a corrupted or hostile
#: length prefix cannot make an endpoint try to buffer gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameAssembler:
    """Incremental parser for u32-length-prefixed frames.

    Byte-stream transports deliver arbitrary chunks — a frame may arrive one
    byte at a time, or a chunk may straddle a frame boundary.  ``feed`` copes
    with every split: it buffers partial data and returns each frame exactly
    once, in order, as soon as its last byte arrives.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb *data* and return every frame it completed."""
        self._buffer += data
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < FRAME_LENGTH_PREFIX.size:
                return frames
            (length,) = FRAME_LENGTH_PREFIX.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise WireFormatError(
                    f"frame length {length} exceeds the {self.max_frame_bytes}-byte cap"
                )
            end = FRAME_LENGTH_PREFIX.size + length
            if len(self._buffer) < end:
                return frames
            frames.append(bytes(self._buffer[FRAME_LENGTH_PREFIX.size : end]))
            del self._buffer[:end]

    def buffered_bytes(self) -> int:
        """Bytes held waiting for the rest of a frame (0 at frame boundaries)."""
        return len(self._buffer)


class Transport(ABC):
    """Duplex byte transport between two named parties, with exact accounting."""

    def __init__(self, parties: tuple[str, str], name: str = "transport") -> None:
        if len(set(parties)) != 2:
            raise ProtocolError("a transport connects exactly two distinct parties")
        self.name = name
        self.parties = tuple(parties)
        self.bytes_by_sender: dict[str, int] = {party: 0 for party in self.parties}
        self.messages_by_sender: dict[str, int] = {party: 0 for party in self.parties}
        self.frame_log: list[tuple[str, int]] = []  # (sender, size) per frame, in order
        self._last_sender: str | None = None
        self._rounds = 0
        # Registry instruments bound once here; _account only does arithmetic.
        registry = get_registry()
        self._metric_bytes = {
            party: registry.counter("transport_bytes_total", party=party)
            for party in self.parties
        }
        self._metric_frames = {
            party: registry.counter("transport_frames_total", party=party)
            for party in self.parties
        }
        self._metric_rounds = registry.counter("transport_rounds_total")

    def peer_of(self, party: str) -> str:
        self._check_party(party)
        first, second = self.parties
        return second if party == first else first

    def _check_party(self, party: str) -> None:
        if party not in self.parties:
            raise ProtocolError(
                f"unknown party {party!r} on transport {self.name!r} "
                f"(parties: {self.parties})"
            )

    def _account(self, sender: str, size: int) -> None:
        self.bytes_by_sender[sender] += size
        self.messages_by_sender[sender] += 1
        self.frame_log.append((sender, size))
        self._metric_bytes[sender].inc(size)
        self._metric_frames[sender].inc()
        if sender != self._last_sender:
            self._rounds += 1
            self._metric_rounds.inc()
            self._last_sender = sender

    # -- byte movement ------------------------------------------------------
    @abstractmethod
    def send(self, sender: str, data: bytes) -> int:
        """Accept *data* from *sender* for delivery to the peer; returns len(data)."""

    @abstractmethod
    def receive(self, receiver: str, timeout_seconds: float | None = None) -> bytes:
        """Return the oldest undelivered frame addressed to *receiver*.

        *timeout_seconds* bounds how long a blocking transport waits for a
        frame before raising :class:`~repro.exceptions.TransportTimeoutError`
        — without it, a silent peer hangs the receiver forever, which is what
        the ack/retransmit layer (:mod:`repro.twopc.reliable`) polls against.
        In-process transports have nothing to wait on, so they raise the
        timeout immediately when the queue is empty.
        """

    @abstractmethod
    def pending(self) -> int:
        """Frames accepted but not yet received (0 after a completed protocol)."""

    # -- ledger -------------------------------------------------------------
    def total_bytes(self) -> int:
        return sum(self.bytes_by_sender.values())

    def total_messages(self) -> int:
        return sum(self.messages_by_sender.values())

    def rounds(self) -> int:
        """Completed communication rounds (direction changes, counting the first)."""
        return self._rounds

    def close(self) -> None:
        """Release any OS resources (no-op for in-process transports)."""


class LoopbackTransport(Transport):
    """In-process FIFO transport; both parties live in one Python process."""

    def __init__(
        self, parties: tuple[str, str] = ("client", "provider"), name: str = "loopback"
    ) -> None:
        super().__init__(parties, name)
        self._queues: dict[str, deque[bytes]] = {party: deque() for party in self.parties}

    def send(self, sender: str, data: bytes) -> int:
        self._check_party(sender)
        self._account(sender, len(data))
        self._queues[self.peer_of(sender)].append(bytes(data))
        return len(data)

    def receive(self, receiver: str, timeout_seconds: float | None = None) -> bytes:
        self._check_party(receiver)
        pending = self._queues[receiver]
        if not pending:
            # Nothing can arrive while the caller holds the only thread, so
            # an empty queue is an immediate timeout regardless of deadline.
            raise TransportTimeoutError(
                f"no pending frame for {receiver!r} on transport {self.name!r}"
            )
        return pending.popleft()

    def pending(self) -> int:
        return sum(len(pending) for pending in self._queues.values())


class SocketTransport(Transport):
    """Real OS sockets (a ``socketpair``) with u32-length-prefixed frames.

    Each party owns one end of the pair.  Sends are enqueued to a per-party
    writer thread that drains into the socket, so a single-threaded driver
    pumping both parties cannot deadlock on frames larger than the kernel
    buffer.  Receives block (with *timeout*) on the receiving party's socket.
    """

    _LENGTH = FRAME_LENGTH_PREFIX

    def __init__(
        self,
        parties: tuple[str, str] = ("client", "provider"),
        name: str = "socket",
        timeout: float = 30.0,
    ) -> None:
        super().__init__(parties, name)
        self.timeout = timeout
        left, right = socket.socketpair()
        for sock in (left, right):
            sock.settimeout(timeout)
        self._sockets: dict[str, socket.socket] = {
            self.parties[0]: left,
            self.parties[1]: right,
        }
        self._outboxes: dict[str, queue.Queue] = {party: queue.Queue() for party in self.parties}
        self._in_flight: dict[str, int] = {party: 0 for party in self.parties}
        self._lock = threading.Lock()
        self._closed = False
        self._writers = []
        for party in self.parties:
            writer = threading.Thread(
                target=self._drain_outbox, args=(party,), daemon=True,
                name=f"{name}-writer-{party}",
            )
            writer.start()
            self._writers.append(writer)

    def _drain_outbox(self, party: str) -> None:
        sock = self._sockets[party]
        outbox = self._outboxes[party]
        while True:
            item = outbox.get()
            if item is None:
                return
            try:
                sock.sendall(item)
            except OSError:
                return  # peer closed; receive() will surface the error

    def send(self, sender: str, data: bytes) -> int:
        self._check_party(sender)
        if self._closed:
            raise TransportClosedError(f"transport {self.name!r} is closed")
        with self._lock:
            self._account(sender, len(data))
            self._in_flight[self.peer_of(sender)] += 1
        self._outboxes[sender].put(self._LENGTH.pack(len(data)) + data)
        return len(data)

    def receive(self, receiver: str, timeout_seconds: float | None = None) -> bytes:
        self._check_party(receiver)
        if self._closed:
            raise TransportClosedError(f"transport {self.name!r} is closed")
        sock = self._sockets[receiver]
        if timeout_seconds is not None:
            sock.settimeout(timeout_seconds)
        try:
            header = self._read_exact(sock, self._LENGTH.size)
            length = self._LENGTH.unpack(header)[0]
            if length > MAX_FRAME_BYTES:
                raise WireFormatError(
                    f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            data = self._read_exact(sock, length)
        except socket.timeout as timeout:
            raise TransportTimeoutError(
                f"timed out waiting for a frame for {receiver!r} on {self.name!r}"
            ) from timeout
        except OSError as error:
            raise TransportClosedError(
                f"transport {self.name!r} socket failed while receiving: {error}"
            ) from error
        finally:
            if timeout_seconds is not None and not self._closed:
                sock.settimeout(self.timeout)
        with self._lock:
            self._in_flight[receiver] -= 1
        return data

    @staticmethod
    def _read_exact(sock: socket.socket, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            chunk = sock.recv(count - len(chunks))
            if not chunk:
                raise TransportClosedError("socket transport peer closed mid-frame")
            chunks += chunk
        return bytes(chunks)

    def pending(self) -> int:
        with self._lock:
            return sum(self._in_flight.values())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for party in self.parties:
            self._outboxes[party].put(None)
        for writer in self._writers:
            writer.join(timeout=1.0)
        for sock in self._sockets.values():
            sock.close()


class AsyncTcpTransport(Transport):
    """One endpoint of a real TCP connection speaking length-prefixed frames.

    Unlike the in-process transports, which own both ends, an
    :class:`AsyncTcpTransport` lives in one process and talks to a peer
    endpoint across the network — the deployment arrangement of §6.3, where a
    provider serves remote clients.  The party owning this endpoint is
    ``local_party``; sends are accounted to it at :meth:`send`, and inbound
    frames are accounted to the peer as they are assembled, so each endpoint's
    ledger converges to the shared-transport ledger of the in-process case.

    ``send``/``receive`` are coroutines (the :class:`Transport` ledger
    contract is unchanged, only the calling convention differs).  Frame
    reassembly under arbitrary TCP segmentation is delegated to
    :class:`FrameAssembler`.  A closed endpoint, or a peer hangup mid-frame,
    raises :class:`~repro.exceptions.TransportClosedError`.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        local_party: str = "client",
        parties: tuple[str, str] = ("client", "provider"),
        name: str = "tcp",
        timeout: float = 30.0,
    ) -> None:
        super().__init__(parties, name)
        self._check_party(local_party)
        self.local_party = local_party
        self.timeout = timeout
        self._reader = reader
        self._writer = writer
        self._assembler = FrameAssembler()
        self._inbound: deque[bytes] = deque()
        self._closed = False

    # -- connection establishment -------------------------------------------
    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        local_party: str = "client",
        parties: tuple[str, str] = ("client", "provider"),
        name: str = "tcp-client",
        timeout: float = 30.0,
    ) -> "AsyncTcpTransport":
        """Dial a serving endpoint and return the connecting side's transport."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, local_party, parties, name, timeout)

    @classmethod
    async def start_server(
        cls,
        connection_handler,
        host: str = "127.0.0.1",
        port: int = 0,
        local_party: str = "provider",
        parties: tuple[str, str] = ("client", "provider"),
        name: str = "tcp-server",
        timeout: float = 30.0,
    ) -> asyncio.base_events.Server:
        """Serve TCP connections; *connection_handler(transport)* runs per peer.

        Returns the :class:`asyncio.Server` (use ``server.sockets[0]
        .getsockname()[1]`` for the bound port when *port* is 0).
        """

        async def on_connect(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            transport = cls(reader, writer, local_party, parties, name, timeout)
            try:
                await connection_handler(transport)
            finally:
                await transport.aclose()

        return await asyncio.start_server(on_connect, host, port)

    @staticmethod
    def bound_port(server: asyncio.base_events.Server) -> int:
        """The port a server actually bound (for ``port=0`` OS assignment)."""
        return server.sockets[0].getsockname()[1]

    def _local_only(self, party: str) -> None:
        self._check_party(party)
        if party != self.local_party:
            raise ProtocolError(
                f"endpoint {self.name!r} belongs to {self.local_party!r}; "
                f"{party!r} lives across the network"
            )

    # -- byte movement (async) ----------------------------------------------
    async def send(self, sender: str, data: bytes) -> int:
        self._local_only(sender)
        if self._closed:
            raise TransportClosedError(f"transport {self.name!r} is closed")
        self._account(sender, len(data))
        self._writer.write(FRAME_LENGTH_PREFIX.pack(len(data)) + bytes(data))
        try:
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            raise TransportClosedError(
                f"transport {self.name!r} peer went away while sending: {error}"
            ) from error
        return len(data)

    async def receive(self, receiver: str, timeout_seconds: float | None = None) -> bytes:
        self._local_only(receiver)
        peer = self.peer_of(receiver)
        deadline = timeout_seconds if timeout_seconds is not None else self.timeout
        while not self._inbound:
            if self._closed:
                raise TransportClosedError(f"transport {self.name!r} is closed")
            try:
                chunk = await asyncio.wait_for(self._reader.read(65536), deadline)
            except asyncio.TimeoutError as timeout:
                raise TransportTimeoutError(
                    f"timed out waiting for a frame for {receiver!r} on {self.name!r}"
                ) from timeout
            except (ConnectionError, OSError) as error:
                raise TransportClosedError(
                    f"transport {self.name!r} connection failed: {error}"
                ) from error
            if not chunk:
                if self._assembler.buffered_bytes():
                    raise TransportClosedError(
                        f"transport {self.name!r} peer closed mid-frame"
                    )
                raise TransportClosedError(f"transport {self.name!r} peer closed")
            for frame in self._assembler.feed(chunk):
                self._account(peer, len(frame))
                self._inbound.append(frame)
        return self._inbound.popleft()

    def pending(self) -> int:
        """Frames assembled at this endpoint but not yet received."""
        return len(self._inbound)

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def close(self) -> None:
        """Synchronous best-effort close (prefer :meth:`aclose` inside a loop)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass


# ---------------------------------------------------------------------------
# Fault injection: a seeded, deterministic degraded-network simulator
# ---------------------------------------------------------------------------
class FaultKind:
    """Names of the injectable faults (the ledger's vocabulary)."""

    DROP = "drop"
    CORRUPT = "corrupt"
    REORDER = "reorder"
    DUPLICATE = "duplicate"
    DELAY = "delay"
    DISCONNECT = "disconnect"


@dataclass(frozen=True)
class FaultSpec:
    """Per-fault injection rates for a :class:`FaultyTransport`, plus the seed.

    Rates are per-frame probabilities drawn from one seeded RNG in a fixed
    order, so a (spec, call-sequence) pair replays bit-identically — the same
    seeded-chaos discipline as the wire fuzz suite.  At most one fault is
    injected per frame (the rates must sum to at most 1).
    """

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    reorder_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    #: How many later sends a delayed frame waits before being released.
    delay_frames: int = 3
    #: Hard mid-stream hangup: the Nth accepted frame (and everything after
    #: it) raises :class:`~repro.exceptions.TransportClosedError` on both ends.
    disconnect_after_frames: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        rates = (
            self.drop_rate,
            self.corrupt_rate,
            self.reorder_rate,
            self.duplicate_rate,
            self.delay_rate,
        )
        if any(not 0.0 <= rate <= 1.0 for rate in rates):
            raise ProtocolError("fault rates must lie in [0, 1]")
        if sum(rates) > 1.0 + 1e-9:
            raise ProtocolError("fault rates must sum to at most 1")
        if self.delay_frames < 1:
            raise ProtocolError("delay_frames must be at least 1")
        if self.disconnect_after_frames is not None and self.disconnect_after_frames < 0:
            raise ProtocolError("disconnect_after_frames must be non-negative")

    @classmethod
    def loss_cocktail(cls, rate: float, seed: int = 0) -> "FaultSpec":
        """The chaos suite's standard mix: *rate* each of drop/corrupt/reorder/duplicate."""
        return cls(
            drop_rate=rate,
            corrupt_rate=rate,
            reorder_rate=rate,
            duplicate_rate=rate,
            seed=seed,
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: which frame (by global send index), what, to whom."""

    index: int
    kind: str
    sender: str
    size: int


#: Most recent fault events kept verbatim; older events age out of the log
#: (the exact per-kind tally never does).  Far above any chaos-suite volume.
FAULT_LOG_CAP = 4096


class _FaultInjector:
    """Seeded fault decisions + the holdback queue, shared by sync/async wrappers."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self.sends = 0
        self.disconnected = False
        #: Bounded event window — long chaos runs no longer grow it forever.
        self.fault_log: deque[FaultEvent] = deque(maxlen=FAULT_LOG_CAP)
        #: Events aged out of the bounded window (counts() stays exact regardless).
        self.dropped_events = 0
        self._tally: dict[str, int] = {}
        self._metric_by_kind: dict[str, object] = {}
        #: Frames being reordered/delayed: (release_after_send_index, sender, frame).
        self.held: list[tuple[int, str, bytes]] = []

    def record(self, kind: str, sender: str, size: int) -> None:
        if len(self.fault_log) == FAULT_LOG_CAP:
            self.dropped_events += 1
        self.fault_log.append(FaultEvent(self.sends, kind, sender, size))
        self._tally[kind] = self._tally.get(kind, 0) + 1
        counter = self._metric_by_kind.get(kind)
        if counter is None:
            counter = self._metric_by_kind[kind] = get_registry().counter(
                "faults_injected_total", kind=kind
            )
        counter.inc()

    def counts(self) -> dict[str, int]:
        """Exact per-kind tally, maintained in record() — unaffected by the log cap."""
        return dict(self._tally)

    def check_disconnect(self, sender: str, size: int) -> None:
        after = self.spec.disconnect_after_frames
        if self.disconnected:
            raise TransportClosedError("injected disconnect: the peer hung up")
        if after is not None and self.sends >= after:
            self.disconnected = True
            self.record(FaultKind.DISCONNECT, sender, size)
            raise TransportClosedError(
                f"injected disconnect after {after} frames (mid-stream hangup)"
            )

    def decide(self, sender: str, data: bytes) -> tuple[str | None, bytes]:
        """Draw the fault (if any) for one frame; returns (kind, frame bytes)."""
        self.sends += 1
        spec = self.spec
        draw = self._rng.random()
        for kind, rate in (
            (FaultKind.DROP, spec.drop_rate),
            (FaultKind.CORRUPT, spec.corrupt_rate),
            (FaultKind.REORDER, spec.reorder_rate),
            (FaultKind.DUPLICATE, spec.duplicate_rate),
            (FaultKind.DELAY, spec.delay_rate),
        ):
            if draw < rate:
                if kind == FaultKind.CORRUPT and not data:
                    return None, data  # an empty frame has no bit to flip
                self.record(kind, sender, len(data))
                if kind == FaultKind.CORRUPT:
                    data = self.flip_bit(data)
                return kind, data
            draw -= rate
        return None, data

    def flip_bit(self, data: bytes) -> bytes:
        position = self._rng.randrange(len(data) * 8)
        corrupted = bytearray(data)
        corrupted[position // 8] ^= 1 << (position % 8)
        return bytes(corrupted)

    def release_after(self, kind: str) -> int:
        if kind == FaultKind.REORDER:
            return self.sends + 1  # the very next send overtakes this frame
        return self.sends + self.spec.delay_frames

    def take_due(self, peer_of, force_receiver: str | None = None) -> list[tuple[str, bytes]]:
        """Held frames whose deadline passed (or destined to *force_receiver*)."""
        due: list[tuple[str, bytes]] = []
        still: list[tuple[int, str, bytes]] = []
        for release_at, sender, frame in self.held:
            if release_at <= self.sends or (
                force_receiver is not None and peer_of(sender) == force_receiver
            ):
                due.append((sender, frame))
            else:
                still.append((release_at, sender, frame))
        self.held = still
        return due


class FaultyTransport(Transport):
    """Wrap any synchronous :class:`Transport` and inject seeded faults.

    Frames accepted from a sender may be dropped, bit-flipped, reordered
    (overtaken by the next frame), duplicated, delayed (held for
    ``delay_frames`` later sends) or cut off entirely by a mid-stream
    disconnect — each with its own configured rate, all drawn from one seeded
    RNG so a chaos run replays exactly.  Every injected fault is recorded in
    :attr:`fault_log`, so tests assert against what *actually* happened, not
    against probabilities.

    The wrapper keeps the standard :class:`Transport` ledger for the frames it
    *accepts* (the bytes a sender put on the wire); the inner transport's
    ledger shows what survived injection.  Held (reordered/delayed) frames are
    flushed into the inner transport as their deadlines pass — and, to keep a
    quiet tail from wedging the pipe, any frame still held when the receiver's
    poll times out is released then.
    """

    def __init__(self, inner: Transport, spec: FaultSpec, name: str | None = None) -> None:
        super().__init__(inner.parties, name or f"faulty[{inner.name}]")
        self.inner = inner
        self.spec = spec
        self._injector = _FaultInjector(spec)

    @property
    def fault_log(self) -> list[FaultEvent]:
        """The most recent ``FAULT_LOG_CAP`` fault events (bounded window)."""
        return list(self._injector.fault_log)

    @property
    def fault_events_dropped(self) -> int:
        """Events aged out of the bounded log (fault_counts() stays exact)."""
        return self._injector.dropped_events

    def fault_counts(self) -> dict[str, int]:
        """Injected-fault tally by kind (the ledger tests assert against)."""
        return self._injector.counts()

    def send(self, sender: str, data: bytes) -> int:
        self._check_party(sender)
        data = bytes(data)
        self._injector.check_disconnect(sender, len(data))
        self._account(sender, len(data))
        kind, frame = self._injector.decide(sender, data)
        if kind == FaultKind.DROP:
            pass
        elif kind == FaultKind.DUPLICATE:
            self.inner.send(sender, frame)
            self.inner.send(sender, frame)
        elif kind in (FaultKind.REORDER, FaultKind.DELAY):
            self._injector.held.append((self._injector.release_after(kind), sender, frame))
        else:
            self.inner.send(sender, frame)
        self._flush_due()
        return len(data)

    def _flush_due(self, force_receiver: str | None = None) -> None:
        for sender, frame in self._injector.take_due(self.peer_of, force_receiver):
            self.inner.send(sender, frame)

    def receive(self, receiver: str, timeout_seconds: float | None = None) -> bytes:
        self._check_party(receiver)
        if self._injector.disconnected:
            raise TransportClosedError("injected disconnect: the peer hung up")
        self._flush_due()
        try:
            return self.inner.receive(receiver, timeout_seconds)
        except TransportTimeoutError:
            # The stream dried up with frames still held back — release
            # anything destined to this receiver and try once more, otherwise
            # a delayed final frame could never be delivered.
            held_for_receiver = any(
                self.peer_of(sender) == receiver for _, sender, _ in self._injector.held
            )
            if not held_for_receiver:
                raise
            self._flush_due(force_receiver=receiver)
            return self.inner.receive(receiver, timeout_seconds)

    def pending(self) -> int:
        return self.inner.pending() + len(self._injector.held)

    def drain(self) -> None:
        """Release every held frame, oldest first (see the async twin)."""
        held = sorted(self._injector.held)
        self._injector.held = []
        for _, sender, frame in held:
            self.inner.send(sender, frame)

    def close(self) -> None:
        self.drain()
        self.inner.close()


class AsyncFaultyTransport:
    """The asyncio twin of :class:`FaultyTransport`: wraps one async endpoint.

    Faults are injected on this endpoint's *outbound* frames (each endpoint of
    a TCP pair wraps its own side, mirroring where real damage happens), with
    the same seeded decision stream and fault ledger as the sync wrapper.
    Exposes the async :class:`Transport` calling convention plus the ledger
    delegation :class:`AsyncFramedChannel` expects.
    """

    def __init__(self, inner, spec: FaultSpec, name: str | None = None) -> None:
        self.inner = inner
        self.spec = spec
        self.name = name or f"faulty[{inner.name}]"
        self._injector = _FaultInjector(spec)

    @property
    def parties(self) -> tuple[str, str]:
        return self.inner.parties

    @property
    def local_party(self) -> str:
        return self.inner.local_party

    @property
    def bytes_by_sender(self) -> dict[str, int]:
        return self.inner.bytes_by_sender

    @property
    def messages_by_sender(self) -> dict[str, int]:
        return self.inner.messages_by_sender

    @property
    def fault_log(self) -> list[FaultEvent]:
        """The most recent ``FAULT_LOG_CAP`` fault events (bounded window)."""
        return list(self._injector.fault_log)

    @property
    def fault_events_dropped(self) -> int:
        return self._injector.dropped_events

    def fault_counts(self) -> dict[str, int]:
        return self._injector.counts()

    def peer_of(self, party: str) -> str:
        return self.inner.peer_of(party)

    async def send(self, sender: str, data: bytes) -> int:
        data = bytes(data)
        self._injector.check_disconnect(sender, len(data))
        kind, frame = self._injector.decide(sender, data)
        if kind == FaultKind.DROP:
            pass
        elif kind == FaultKind.DUPLICATE:
            await self.inner.send(sender, frame)
            await self.inner.send(sender, frame)
        elif kind in (FaultKind.REORDER, FaultKind.DELAY):
            self._injector.held.append((self._injector.release_after(kind), sender, frame))
        else:
            await self.inner.send(sender, frame)
        await self._flush_due()
        return len(data)

    async def _flush_due(self, force: bool = False) -> None:
        for sender, frame in self._injector.take_due(
            self.peer_of, force_receiver=self.local_party if force else None
        ):
            await self.inner.send(sender, frame)

    async def receive(self, receiver: str, timeout_seconds: float | None = None) -> bytes:
        if self._injector.disconnected:
            raise TransportClosedError("injected disconnect: the peer hung up")
        try:
            return await self.inner.receive(receiver, timeout_seconds)
        except TransportTimeoutError:
            if not self._injector.held:
                raise
            await self._flush_due(force=True)
            return await self.inner.receive(receiver, timeout_seconds)

    def total_bytes(self) -> int:
        return self.inner.total_bytes()

    def total_messages(self) -> int:
        return self.inner.total_messages()

    def rounds(self) -> int:
        return self.inner.rounds()

    def pending(self) -> int:
        return self.inner.pending() + len(self._injector.held)

    async def drain(self) -> None:
        """Release every held frame into the inner transport, oldest first.

        Held (reordered/delayed) frames are normally flushed by *later
        sends* crossing their release deadline — so a session whose final
        outbound frame gets held, with no further sends coming, strands it:
        the peer waits forever on a frame this wrapper is still sitting on.
        Draining at end-of-stream (and on :meth:`aclose`) delivers the tail
        regardless of deadlines; injected *drops* stay dropped.
        """
        held = sorted(self._injector.held)
        self._injector.held = []
        for _, sender, frame in held:
            await self.inner.send(sender, frame)

    async def aclose(self) -> None:
        await self.drain()
        await self.inner.aclose()

    def close(self) -> None:
        self.inner.close()


class FramedChannel:
    """A typed frame channel: :class:`WireCodec` over a :class:`Transport`.

    This is what every protocol party holds.  ``send`` serializes a frame and
    charges its exact byte length to the sending party; ``receive`` decodes
    the oldest frame addressed to the receiver.  The ledger methods delegate
    to the transport, so ``total_bytes()`` is by construction the sum of the
    serialized frame lengths that crossed the wire.
    """

    def __init__(self, transport: Transport, codec: WireCodec, name: str | None = None) -> None:
        self.transport = transport
        self.codec = codec
        self.name = name or transport.name

    @classmethod
    def loopback(
        cls,
        name: str = "channel",
        scheme: AHEScheme | None = None,
        public_key: AHEPublicKey | None = None,
        parties: tuple[str, str] = ("client", "provider"),
    ) -> "FramedChannel":
        """An in-process framed channel (the default for protocol drivers)."""
        return cls(
            LoopbackTransport(parties=parties, name=name),
            WireCodec(scheme=scheme, public_key=public_key),
            name=name,
        )

    # -- frame movement -----------------------------------------------------
    def send(self, sender: str, frame: Frame) -> int:
        return self.transport.send(sender, self.codec.encode(frame))

    def receive(self, receiver: str) -> Frame:
        return self.codec.decode(self.transport.receive(receiver))

    # -- ledger (delegated) -------------------------------------------------
    @property
    def parties(self) -> tuple[str, str]:
        return self.transport.parties

    @property
    def bytes_by_sender(self) -> dict[str, int]:
        return self.transport.bytes_by_sender

    @property
    def messages_by_sender(self) -> dict[str, int]:
        return self.transport.messages_by_sender

    def total_bytes(self) -> int:
        return self.transport.total_bytes()

    def total_messages(self) -> int:
        return self.transport.total_messages()

    def rounds(self) -> int:
        return self.transport.rounds()

    def pending(self) -> int:
        return self.transport.pending()

    def close(self) -> None:
        self.transport.close()


class AsyncFramedChannel:
    """Typed frames over an :class:`AsyncTcpTransport` (asyncio calling convention).

    The async twin of :class:`FramedChannel`: ``send`` serializes and charges
    the exact frame length, ``receive`` decodes the next assembled frame.  One
    endpoint of a cross-process session holds one of these.
    """

    def __init__(
        self, transport: AsyncTcpTransport, codec: WireCodec, name: str | None = None
    ) -> None:
        self.transport = transport
        self.codec = codec
        self.name = name or transport.name

    # -- frame movement -----------------------------------------------------
    async def send(self, sender: str, frame: Frame) -> int:
        return await self.transport.send(sender, self.codec.encode(frame))

    async def receive(self, receiver: str) -> Frame:
        return self.codec.decode(await self.transport.receive(receiver))

    # -- ledger (delegated) -------------------------------------------------
    @property
    def parties(self) -> tuple[str, str]:
        return self.transport.parties

    @property
    def local_party(self) -> str:
        return self.transport.local_party

    @property
    def bytes_by_sender(self) -> dict[str, int]:
        return self.transport.bytes_by_sender

    @property
    def messages_by_sender(self) -> dict[str, int]:
        return self.transport.messages_by_sender

    def total_bytes(self) -> int:
        return self.transport.total_bytes()

    def total_messages(self) -> int:
        return self.transport.total_messages()

    def rounds(self) -> int:
        return self.transport.rounds()

    def pending(self) -> int:
        return self.transport.pending()

    async def aclose(self) -> None:
        await self.transport.aclose()
