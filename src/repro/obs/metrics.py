"""Process-local metrics registry: counters, gauges, log-bucket histograms.

Design constraints, in order:

1. **Hot-path cost.**  The decrypt/NTT pump observes per frame and per
   batch; an observation must be attribute arithmetic on a bound
   instrument, never a dict lookup by rendered name.  Callers therefore
   bind instruments once at construction (``self._frames =
   registry.counter("transport_frames_total", party="client")``) and bump
   the bound object.
2. **Mergeable snapshots.**  `ShardedRuntime` workers ship their registry
   state to the parent piggybacked on pipe replies, so a snapshot is a
   plain picklable dict and merging two snapshots of disjoint work equals
   one registry that saw both streams: counters and gauges add, histograms
   add bucket-wise (all histograms share the same fixed bounds).
3. **Determinism.**  Snapshots are sorted by rendered key and contain no
   wall-clock or pid material, so equal work yields byte-equal snapshots —
   the property the shard-vs-single-process equivalence tests pin.

Stdlib-only on purpose: ``repro.utils.timing`` (and nearly everything
else) imports this module, so it must sit at the bottom of the import
graph.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from contextlib import contextmanager
from typing import Iterator

SNAPSHOT_SCHEMA = "repro-metrics/1"

# Fixed log-scale bounds shared by every histogram: 10**(e/4) for e in
# [-24, 16], i.e. ~1e-6 .. 1e4 with four buckets per decade.  Wide enough
# to hold microsecond decrypt ages and multi-thousand-ciphertext batch
# sizes in the same scheme, which is what makes bucket-wise merging safe.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (exponent / 4.0) for exponent in range(-24, 17)
)

# Samples kept verbatim (per histogram) for percentile reads; everything
# older is still represented exactly in the bucket counts and running sum.
RECENT_SAMPLE_CAP = 4096


def render_key(name: str, labels: dict[str, str]) -> str:
    """Render the canonical registry key, e.g. ``frames_total{party=client}``."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile (numpy 'linear' method)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class Counter:
    """Monotonic counter.  ``inc`` is the only mutator."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value (merge across shards sums)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bound log-bucket histogram with a capped recent-sample window.

    Bucket ``i`` counts observations ``<= bounds[i]`` and ``> bounds[i-1]``
    (Prometheus inclusive-``le`` convention); the final slot is the
    ``+Inf`` overflow.  ``recent`` holds the last ``RECENT_SAMPLE_CAP``
    raw samples for percentile queries — bounded by construction, which is
    what replaces the grow-forever ledgers this registry retires.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum", "min", "max", "recent")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS,
    ):
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.recent: deque[float] = deque(maxlen=RECENT_SAMPLE_CAP)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.recent.append(value)

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Percentile over the recent-sample window (exact for <= cap samples)."""
        return _percentile(list(self.recent), q)


class MetricsRegistry:
    """Get-or-create home for every instrument in one process.

    Lookups happen at *construction* of the instrumented object; the
    returned instrument is then bumped directly.  A lock guards only the
    create path (the shard parent merges snapshots from its collector
    thread while the caller reads).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = render_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(name, labels)
            return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = render_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(name, labels)
            return instrument

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS,
        **labels: str,
    ) -> Histogram:
        key = render_key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(name, labels, bounds)
            return instrument

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict copy of every instrument, sorted by rendered key.

        Picklable, JSON-able, and deterministic for deterministic work —
        the unit shard workers piggyback on pipe replies.
        """
        with self._lock:
            counters = [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for _, c in sorted(self._counters.items())
            ]
            gauges = [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for _, g in sorted(self._gauges.items())
            ]
            histograms = [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "recent": list(h.recent),
                }
                for _, h in sorted(self._histograms.items())
            ]
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a snapshot into the live instruments (sum semantics).

        Counters and gauges add; histograms add bucket-wise and splice the
        donor's recent samples (newest-biased, still capped).  Merging the
        snapshots of N workers that split a stream therefore equals the
        registry of one process that served the whole stream — the
        equivalence the shard tests pin.
        """
        if snap.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(f"unknown metrics snapshot schema: {snap.get('schema')!r}")
        for entry in snap["counters"]:
            self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in snap["gauges"]:
            self.gauge(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in snap["histograms"]:
            hist = self.histogram(
                entry["name"], bounds=tuple(entry["bounds"]), **entry["labels"]
            )
            if list(hist.bounds) != entry["bounds"]:
                raise ValueError(f"histogram bound mismatch for {entry['name']!r}")
            for index, bucket in enumerate(entry["counts"]):
                hist.counts[index] += bucket
            hist.count += entry["count"]
            hist.sum += entry["sum"]
            if entry["count"]:
                if entry["min"] < hist.min:
                    hist.min = entry["min"]
                if entry["max"] > hist.max:
                    hist.max = entry["max"]
            hist.recent.extend(entry["recent"])

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def empty_snapshot() -> dict:
    return {"schema": SNAPSHOT_SCHEMA, "counters": [], "gauges": [], "histograms": []}


def merge_snapshots(*snaps: dict) -> dict:
    """Merge snapshots into one (associative, identity = empty_snapshot())."""
    merged = MetricsRegistry()
    for snap in snaps:
        merged.merge_snapshot(snap)
    return merged.snapshot()


# -- process-default registry -----------------------------------------------
#
# A module-level default keeps instrumentation call sites dependency-free
# (Transport and friends take no registry parameter), while scoped_registry
# lets a bench arm or test swap in an isolated registry for one block.
# Shard worker processes install a fresh registry at startup so fork()ed
# parent state never leaks into worker snapshots.

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def scoped_registry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    registry = MetricsRegistry() if registry is None else registry
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
