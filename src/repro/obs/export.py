"""Exporters and golden-schema validators for the telemetry layer.

Three formats, all derived from the same registry snapshot / tracer
snapshot pair so bench JSON and flight recordings can never disagree:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# TYPE`` lines, cumulative ``_bucket{le=...}`` series ending in
  ``+Inf``, ``_sum``/``_count``).  Scrape-ready.
* :func:`json_text` — one JSON document bundling the metrics snapshot and
  the span list; the machine-readable artifact `regress.py` writes next
  to each suite's bench JSON.
* :func:`chrome_trace` — Chrome Trace Event JSON (``chrome://tracing`` /
  Perfetto): complete events (``ph: "X"``) with integer-microsecond
  timestamps, one synthetic ``tid`` per trace id in first-appearance
  order, so one email reads as one horizontal lane.

Determinism: all three serializers sort keys and use fixed separators, so
identical telemetry yields byte-identical artifacts — the property the
VirtualClock span-pin test relies on.

The ``validate_*`` functions are the "golden schema" CI's obs smoke job
checks a live scrape against; they raise ``ValueError`` with a pointed
message rather than returning False, so failures name the offending entry.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import SNAPSHOT_SCHEMA, render_key

JSON_SCHEMA = "repro-telemetry/1"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: dict[str, str], extra: list[tuple[str, str]] | None = None) -> str:
    pairs = [(key, labels[key]) for key in sorted(labels)]
    if extra:
        pairs.extend(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(str(value))}"' for key, value in pairs)
    return "{" + inner + "}"


def prometheus_text(snapshot: dict) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot["counters"]:
        type_line(entry["name"], "counter")
        lines.append(
            f"{entry['name']}{_render_labels(entry['labels'])} {_format_value(entry['value'])}"
        )
    for entry in snapshot["gauges"]:
        type_line(entry["name"], "gauge")
        lines.append(
            f"{entry['name']}{_render_labels(entry['labels'])} {_format_value(entry['value'])}"
        )
    for entry in snapshot["histograms"]:
        name = entry["name"]
        type_line(name, "histogram")
        cumulative = 0
        for bound, bucket in zip(entry["bounds"], entry["counts"]):
            cumulative += bucket
            le = _render_labels(entry["labels"], extra=[("le", _format_value(bound))])
            lines.append(f"{name}_bucket{le} {cumulative}")
        cumulative += entry["counts"][len(entry["bounds"])]
        inf = _render_labels(entry["labels"], extra=[("le", "+Inf")])
        lines.append(f"{name}_bucket{inf} {cumulative}")
        lines.append(f"{name}_sum{_render_labels(entry['labels'])} {_format_value(entry['sum'])}")
        lines.append(f"{name}_count{_render_labels(entry['labels'])} {entry['count']}")
    return "\n".join(lines) + "\n"


def json_text(snapshot: dict, spans: list[dict] | None = None) -> str:
    """One JSON document bundling metrics and spans (sorted, byte-stable)."""
    payload = {
        "schema": JSON_SCHEMA,
        "metrics": snapshot,
        "spans": spans if spans is not None else [],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def chrome_trace(spans: list[dict]) -> dict:
    """Convert tracer spans to a Chrome Trace Event document.

    Complete events (``ph: "X"``) with µs-integer ``ts``/``dur``; each
    distinct trace id gets its own ``tid`` in first-appearance order plus a
    ``thread_name`` metadata event, so Perfetto shows one lane per email.
    """
    tids: dict[str, int] = {}
    events: list[dict] = []
    for span in spans:
        tid = tids.setdefault(span["trace_id"], len(tids) + 1)
        start_us = int(round(span["start_seconds"] * 1e6))
        end_us = int(round(span["end_seconds"] * 1e6))
        event = {
            "name": span["name"],
            "cat": span["category"],
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": start_us,
            "dur": max(end_us - start_us, 0),
        }
        if span["meta"]:
            event["args"] = {key: span["meta"][key] for key in sorted(span["meta"])}
        events.append(event)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": trace_id},
        }
        for trace_id, tid in tids.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def chrome_trace_text(spans: list[dict]) -> str:
    return json.dumps(chrome_trace(spans), sort_keys=True, separators=(",", ":")) + "\n"


# -- golden-schema validators ------------------------------------------------


def validate_snapshot(snapshot: dict) -> None:
    """Raise ValueError unless ``snapshot`` matches the registry schema."""
    if not isinstance(snapshot, dict):
        raise ValueError("snapshot must be a dict")
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(f"bad snapshot schema: {snapshot.get('schema')!r}")
    for section in ("counters", "gauges", "histograms"):
        entries = snapshot.get(section)
        if not isinstance(entries, list):
            raise ValueError(f"snapshot[{section!r}] must be a list")
        seen: set[str] = set()
        for entry in entries:
            if not isinstance(entry.get("name"), str) or not entry["name"]:
                raise ValueError(f"{section} entry missing name: {entry!r}")
            labels = entry.get("labels")
            if not isinstance(labels, dict):
                raise ValueError(f"{section} entry {entry['name']!r} missing labels dict")
            key = render_key(entry["name"], labels)
            if key in seen:
                raise ValueError(f"duplicate {section} series: {key}")
            seen.add(key)
            if section == "histograms":
                bounds, counts = entry.get("bounds"), entry.get("counts")
                if not isinstance(bounds, list) or not isinstance(counts, list):
                    raise ValueError(f"histogram {key} missing bounds/counts")
                if len(counts) != len(bounds) + 1:
                    raise ValueError(
                        f"histogram {key}: {len(counts)} counts for {len(bounds)} bounds"
                    )
                if list(bounds) != sorted(bounds):
                    raise ValueError(f"histogram {key}: bounds not ascending")
                if any(bucket < 0 for bucket in counts):
                    raise ValueError(f"histogram {key}: negative bucket count")
                if sum(counts) != entry.get("count"):
                    raise ValueError(f"histogram {key}: count != sum of buckets")
            else:
                if not isinstance(entry.get("value"), (int, float)):
                    raise ValueError(f"{section} series {key}: non-numeric value")


def validate_chrome_trace(document: dict) -> None:
    """Raise ValueError unless ``document`` is a well-formed Chrome trace."""
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase != "X":
            raise ValueError(f"unexpected event phase: {phase!r}")
        for field in ("name", "cat", "pid", "tid", "ts", "dur"):
            if field not in event:
                raise ValueError(f"trace event missing {field!r}: {event!r}")
        if not isinstance(event["ts"], int) or not isinstance(event["dur"], int):
            raise ValueError(f"trace event ts/dur must be integer microseconds: {event!r}")
        if event["dur"] < 0:
            raise ValueError(f"negative-duration trace event: {event!r}")


def write_artifacts(prefix: str | Path, snapshot: dict, spans: list[dict]) -> list[Path]:
    """Write all three artifacts under ``prefix`` and return their paths.

    ``<prefix>.prom`` (Prometheus text), ``<prefix>.metrics.json`` (bundled
    JSON), ``<prefix>.trace.json`` (Chrome trace) — the trio `regress.py`
    emits beside each suite's bench JSON and CI uploads.
    """
    prefix = Path(prefix)
    paths = {
        prefix.with_name(prefix.name + ".prom"): prometheus_text(snapshot),
        prefix.with_name(prefix.name + ".metrics.json"): json_text(snapshot, spans),
        prefix.with_name(prefix.name + ".trace.json"): chrome_trace_text(spans),
    }
    for path, text in paths.items():
        path.write_text(text)
    return list(paths)
