"""Bounded span tracer: the per-email flight recorder.

A *span* is one named interval on one correlation id (``trace_id``), e.g.
the ``window_park`` stretch an email spends waiting for its decrypt window
to fire.  `ProviderRuntime` emits a fixed chain per served email —
``enqueue → window_park → decrypt → reply`` plus an enclosing ``email``
span — keyed by a trace id minted at admission and carried in-process on
the `SessionJob` (nothing touches the wire format, so golden frame bytes
stay pinned).

Timestamps come from whatever clock the *owning* object injects, so a
`VirtualClock` replay records virtual seconds and the same seed + policy
reproduces bit-identical spans (pinned by test); wall-clock runs record
``time.monotonic`` seconds.  Storage is a fixed-capacity ring with a
dropped-span counter — a long-running server never grows it.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator

SPAN_CAPACITY = 4096

#: Denominator of the deterministic sampling hash: a trace is kept when
#: ``sha256(trace_id) mod _SAMPLE_MODULUS < sample_rate * _SAMPLE_MODULUS``.
_SAMPLE_MODULUS = 1 << 32


def trace_is_sampled(trace_id: str, sample_rate: float) -> bool:
    """Deterministic per-trace sampling decision (shared by every tracer).

    Hash-based, not random: every span of one trace id shares its fate (a
    sampled email keeps its *whole* ``enqueue → ... → reply`` chain), and the
    same trace id samples identically in every process of a fabric — so a
    cross-shard trace is either fully present or fully absent, never ragged.
    """
    if sample_rate >= 1.0:
        return True
    if sample_rate <= 0.0:
        return False
    digest = hashlib.sha256(trace_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") < int(sample_rate * _SAMPLE_MODULUS)


class SpanTracer:
    """Fixed-capacity recorder of completed spans.

    Spans are recorded *complete* (start and end known) because the serving
    loop discovers interval edges itself — there is no enter/exit stack to
    manage on the hot path, just one `record` per finished interval.

    ``sample_rate`` (default 1.0 = keep everything) thins fabric-scale span
    volume *by trace id* before the ring sees it, so a busy deployment keeps
    representative whole-email chains instead of evicting interesting spans
    with ring churn.  Sampled-out spans are counted in :attr:`sampled_out`
    (the deliberate sibling of :attr:`dropped`, which keeps counting only
    capacity evictions).
    """

    def __init__(
        self,
        capacity: int = SPAN_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
        sample_rate: float = 1.0,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be within [0, 1], got {sample_rate}")
        self.capacity = capacity
        self.clock = clock
        self.sample_rate = sample_rate
        self._lock = threading.Lock()
        self._spans: deque[dict] = deque(maxlen=capacity)
        self.dropped = 0
        self.sampled_out = 0

    def record(
        self,
        trace_id: str,
        name: str,
        start_seconds: float,
        end_seconds: float,
        category: str = "serve",
        **meta: object,
    ) -> dict:
        span = {
            "trace_id": trace_id,
            "name": name,
            "category": category,
            "start_seconds": start_seconds,
            "end_seconds": end_seconds,
            "meta": meta,
        }
        if not trace_is_sampled(trace_id, self.sample_rate):
            with self._lock:
                self.sampled_out += 1
            return span
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(span)
        return span

    def snapshot(self) -> list[dict]:
        """Copy of the recorded spans, oldest first (ring order)."""
        with self._lock:
            return [dict(span, meta=dict(span["meta"])) for span in self._spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0
            self.sampled_out = 0


_default_tracer = SpanTracer()


def get_tracer() -> SpanTracer:
    return _default_tracer


def set_tracer(tracer: SpanTracer) -> SpanTracer:
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


@contextmanager
def scoped_tracer(tracer: SpanTracer | None = None) -> Iterator[SpanTracer]:
    tracer = SpanTracer() if tracer is None else tracer
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
