"""Unified telemetry: the metrics registry, span tracer, and exporters.

Pretzel's whole evaluation is accounting — per-email CPU, network bytes and
latency per provider function (Figs. 6/7/10, §6.3) — so the serving stack
keeps its counters in one place instead of scattering ad-hoc ledgers across
transports, schedulers and ``stats()`` dicts.  This package supplies:

* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry` of
  counters, gauges and fixed log-bucket histograms.  Instruments are bound
  once (at the owning object's construction) and bumped with plain attribute
  arithmetic, so the NTT/decrypt hot path pays no lookup per observation.
  Snapshots are plain picklable dicts with well-defined merge semantics,
  which is what lets :class:`~repro.core.runtime.ShardedRuntime` workers
  piggyback their metrics on burst/drain replies and the parent expose one
  aggregated view without double-counting.
* :mod:`repro.obs.spans` — a bounded flight recorder of spans following one
  email end to end (enqueue → window park → decrypt flush → reply).
  Correlation ids ride in-process on :class:`~repro.twopc.session.SessionJob`
  (no wire-format change), and all timestamps come from the owning
  scheduler's injected clock, so a :class:`~repro.mail.traces.VirtualClock`
  replay produces bit-identical spans.
* :mod:`repro.obs.export` — Prometheus text, JSON, and Chrome-trace
  (``chrome://tracing`` / Perfetto) exporters plus the golden-schema
  validators CI's obs smoke job runs against a live registry.

Everything here is stdlib-only and imports nothing from the rest of the
repository, so any module (transports, schedulers, the controller in
``utils.timing``) can instrument itself without an import cycle.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    empty_snapshot,
    get_registry,
    merge_snapshots,
    scoped_registry,
    set_registry,
)
from repro.obs.spans import (
    SpanTracer,
    get_tracer,
    scoped_tracer,
    set_tracer,
    trace_is_sampled,
)

from contextlib import contextmanager


@contextmanager
def scoped_telemetry(registry=None, tracer=None):
    """Install a fresh (or given) registry *and* tracer for one ``with`` block.

    The standard harness idiom: a bench arm or a test opens a scope, builds
    its runtime inside it (instruments bind at construction), and reads the
    scope's registry/tracer afterwards — without leaking observations into
    the process-wide defaults or inheriting anyone else's.
    """
    registry = MetricsRegistry() if registry is None else registry
    tracer = SpanTracer() if tracer is None else tracer
    with scoped_registry(registry), scoped_tracer(tracer):
        yield registry, tracer


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanTracer",
    "empty_snapshot",
    "get_registry",
    "get_tracer",
    "merge_snapshots",
    "scoped_registry",
    "scoped_telemetry",
    "scoped_tracer",
    "set_registry",
    "set_tracer",
    "trace_is_sampled",
]
