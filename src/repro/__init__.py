"""Pretzel reproduction: end-to-end encrypted email with provider-supplied functions.

This package reproduces *Pretzel: Email encryption and provider-supplied
functions are compatible* (Gupta, Fingler, Alvisi, Walfish — SIGCOMM 2017)
as a pure-Python library:

* :mod:`repro.crypto` — Paillier and Ring-LWE ("XPIR-BV") additively
  homomorphic encryption, packing, garbled circuits, oblivious transfer, and
  the e2e primitives (ElGamal KEM, Schnorr, ChaCha20).
* :mod:`repro.classify` — the linear classifiers (GR-NB, multinomial NB,
  LR, SVM), quantization, chi-square feature selection and metrics.
* :mod:`repro.twopc` — the two-party protocols: the Yao+GLLM baseline and
  Pretzel's spam-filtering and decomposed topic-extraction protocols.
* :mod:`repro.mail`, :mod:`repro.search` — the email substrate (messages,
  e2e module, providers, replay defence) and client-side keyword search.
* :mod:`repro.core` — function modules and the end-to-end system driver.
* :mod:`repro.costmodel` — the analytic cost model of Fig. 3.
* :mod:`repro.datasets` — synthetic corpora standing in for the evaluation
  datasets.

Quickstart::

    from repro.core import PretzelSystem, PretzelConfig, SpamFunctionModule
    system = PretzelSystem(PretzelConfig.test())
    alice = system.add_user("alice@example.com")
    bob = system.add_user("bob@example.com")
    # ... attach function modules to bob, then:
    report = system.roundtrip("alice@example.com", "bob@example.com", "hi", "lunch?")

See ``examples/quickstart.py`` for a complete runnable walk-through.
"""

from repro.core.config import PretzelConfig
from repro.core.system import PretzelSystem

__version__ = "1.0.0"

__all__ = ["PretzelConfig", "PretzelSystem", "__version__"]
