"""Yao's two-party protocol as a pair of frame-driven sessions (§3.2).

This stitches together the pieces of §3.2: the garbler builds the garbled
tables for an agreed-upon circuit, obtains the evaluator's input labels via
oblivious transfer, and sends the tables together with the labels of its own
inputs; the evaluator evaluates.  Depending on the arrangement the cleartext
output is learned by the evaluator (spam filtering: the client) or sent back
— as output *labels*, so the evaluator learns nothing extra — and decoded by
the garbler (topic extraction: the provider, Fig. 5 step 5).

Each party is a reentrant :class:`~repro.twopc.session.ProtocolSession`
(:class:`YaoGarblerSession`, :class:`YaoEvaluatorSession`) that owns its OT
machine and reacts to typed wire frames, so the protocol halves embed
directly into the spam/topics sessions and the multi-user serving loop.
:func:`run_yao` is the in-process driver: it pumps the two sessions over a
framed channel, which serializes every message, so the byte counts match a
networked deployment exactly (Yao network cost per input value is Fig. 6's
``sz_per-in``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.circuits import Circuit
from repro.crypto.dh import DHGroup
from repro.crypto.garbled import GarblingResult, decode_outputs, evaluate, garble
from repro.crypto.ot import (
    OtExtensionPool,
    PooledIknpReceiverMachine,
    PooledIknpSenderMachine,
    make_ot_receiver,
    make_ot_sender,
)
from repro.exceptions import ProtocolAbort, SnapshotError
from repro.twopc.session import (
    ProtocolSession,
    _restore_base_fields,
    decode_state_payload,
    encode_state_payload,
    run_session_pair,
)
from repro.twopc.transport import FramedChannel
from repro.twopc.wire import (
    Frame,
    GarbledCircuitFrame,
    OutputLabelsFrame,
    SessionState,
    SessionStateKind,
)
from repro.utils.bitops import bits_to_bytes, bytes_to_bits
from repro.utils.rand import secure_bytes
from repro.utils.timing import Stopwatch

GARBLE_SEED_BYTES = 32
YAO_STATE_VERSION = 1


def _require_pool(ot_pool: OtExtensionPool | None) -> OtExtensionPool:
    if ot_pool is None or not ot_pool.ready:
        raise SnapshotError(
            "restoring a Yao session mid-round needs the restored per-pair OT pool"
        )
    return ot_pool


@dataclass
class YaoRunResult:
    """Outcome of one Yao execution."""

    output_bits: list[int]
    garbler_seconds: float
    evaluator_seconds: float
    network_bytes: int
    and_gates: int


def _check_output_to(output_to: str) -> None:
    if output_to not in ("garbler", "evaluator"):
        raise ProtocolAbort("output_to must be 'garbler' or 'evaluator'")


class YaoGarblerSession(ProtocolSession):
    """The garbler half: garble, serve the OT, ship tables, maybe decode."""

    def __init__(
        self,
        circuit: Circuit,
        garbler_bits: list[int],
        group: DHGroup,
        output_to: str = "evaluator",
        ot_mode: str = "iknp",
        ot_pool: OtExtensionPool | None = None,
        garble_seed: bytes | None = None,
    ) -> None:
        super().__init__()
        _check_output_to(output_to)
        self.circuit = circuit
        self.garbler_bits = list(garbler_bits)
        self.group = group
        self.output_to = output_to
        self.ot_mode = ot_mode
        self.ot_pool = ot_pool
        # The whole garbling is derived from one PRG seed, so a snapshot of
        # the seed pins every label and table bit-identically on restore —
        # the "Yao round position" is the seed plus the round flags below.
        self._garble_seed = garble_seed if garble_seed is not None else secure_bytes(
            GARBLE_SEED_BYTES
        )
        self.output_bits: list[int] | None = None
        self._garbling: GarblingResult | None = None
        self._ot = None
        self._sent_tables = False

    def _start(self) -> list[Frame]:
        self._garbling = garble(self.circuit, seed=self._garble_seed)
        label_pairs = self._garbling.label_pairs(self.circuit.evaluator_inputs)
        self._ot = make_ot_sender(self.group, label_pairs, self.ot_mode, pool=self.ot_pool)
        frames = self._ot.start()
        return frames + self._tables_if_ot_done()

    def _handle(self, frame: Frame) -> list[Frame]:
        if isinstance(frame, OutputLabelsFrame):
            if self.output_to != "garbler" or not self._sent_tables:
                return self._unexpected(frame)
            assert self._garbling is not None
            self.output_bits = decode_outputs(
                self.circuit, self._garbling.tables, list(frame.labels)
            )
            self.finished = True
            return []
        frames = self._ot.handle(frame)
        return frames + self._tables_if_ot_done()

    def _tables_if_ot_done(self) -> list[Frame]:
        """Once the OT completes, the tables + own input labels follow immediately."""
        if self._sent_tables or not self._ot.finished:
            return []
        assert self._garbling is not None
        self._sent_tables = True
        decode_at_evaluator = self.output_to == "evaluator"
        if decode_at_evaluator:
            self.finished = True
        garbler_labels = self._garbling.input_labels(
            self.circuit.garbler_inputs, self.garbler_bits
        )
        return [
            GarbledCircuitFrame(
                tables=self._garbling.tables,
                garbler_labels=tuple(garbler_labels),
                decode_at_evaluator=decode_at_evaluator,
            )
        ]

    # -- session persistence --------------------------------------------------
    def snapshot(self) -> SessionState:
        return SessionState(
            kind=SessionStateKind.YAO_GARBLER,
            version=YAO_STATE_VERSION,
            payload=encode_state_payload(
                started=self.started,
                finished=self.finished,
                seconds=self.seconds,
                seed=self._garble_seed,
                garbler_count=len(self.garbler_bits),
                garbler_bits=bits_to_bytes(self.garbler_bits) if self.garbler_bits else b"",
                output_to=self.output_to,
                ot_mode=self.ot_mode,
                sent_tables=self._sent_tables,
                output_bits=self.output_bits,
                ot=None if self._ot is None else self._ot.snapshot().to_bytes(),
            ),
        )

    @classmethod
    def restore(
        cls,
        state: SessionState,
        circuit: Circuit,
        group: DHGroup,
        ot_pool: OtExtensionPool | None = None,
    ) -> "YaoGarblerSession":
        payload = decode_state_payload(state, SessionStateKind.YAO_GARBLER, YAO_STATE_VERSION)
        count = payload["garbler_count"]
        bits = bytes_to_bits(payload["garbler_bits"], count) if count else []
        session = cls(
            circuit,
            bits,
            group,
            output_to=payload["output_to"],
            ot_mode=payload["ot_mode"],
            ot_pool=ot_pool,
            garble_seed=payload["seed"],
        )
        _restore_base_fields(session, payload)
        session._sent_tables = bool(payload["sent_tables"])
        if payload["output_bits"] is not None:
            session.output_bits = list(payload["output_bits"])
        if session.started:
            session._garbling = garble(circuit, seed=session._garble_seed)
        if payload["ot"] is not None:
            ot_state = SessionState.from_bytes(payload["ot"])
            session._ot = PooledIknpSenderMachine.restore(
                group, ot_state, _require_pool(ot_pool).sender_state
            )
        return session


class YaoEvaluatorSession(ProtocolSession):
    """The evaluator half: run the OT for its input labels, evaluate, output."""

    def __init__(
        self,
        circuit: Circuit,
        evaluator_bits: list[int],
        group: DHGroup,
        output_to: str = "evaluator",
        ot_mode: str = "iknp",
        ot_pool: OtExtensionPool | None = None,
    ) -> None:
        super().__init__()
        _check_output_to(output_to)
        self.circuit = circuit
        self.group = group
        self.output_to = output_to
        self.output_bits: list[int] | None = None
        self._ot = make_ot_receiver(group, list(evaluator_bits), ot_mode, pool=ot_pool)

    def _start(self) -> list[Frame]:
        return self._ot.start()

    def _handle(self, frame: Frame) -> list[Frame]:
        if isinstance(frame, GarbledCircuitFrame):
            if not self._ot.finished:
                raise ProtocolAbort("garbled tables arrived before the OT completed")
            if frame.decode_at_evaluator != (self.output_to == "evaluator"):
                raise ProtocolAbort("the parties disagree on who learns the Yao output")
            output_labels = evaluate(
                self.circuit,
                frame.tables,
                list(frame.garbler_labels),
                self._ot.result or [],
            )
            self.finished = True
            if frame.decode_at_evaluator:
                self.output_bits = decode_outputs(self.circuit, frame.tables, output_labels)
                return []
            return [OutputLabelsFrame(tuple(output_labels))]
        return self._ot.handle(frame)

    # -- session persistence --------------------------------------------------
    def snapshot(self) -> SessionState:
        return SessionState(
            kind=SessionStateKind.YAO_EVALUATOR,
            version=YAO_STATE_VERSION,
            payload=encode_state_payload(
                started=self.started,
                finished=self.finished,
                seconds=self.seconds,
                output_to=self.output_to,
                output_bits=self.output_bits,
                ot=self._ot.snapshot().to_bytes(),
            ),
        )

    @classmethod
    def restore(
        cls,
        state: SessionState,
        circuit: Circuit,
        group: DHGroup,
        ot_pool: OtExtensionPool | None = None,
    ) -> "YaoEvaluatorSession":
        payload = decode_state_payload(
            state, SessionStateKind.YAO_EVALUATOR, YAO_STATE_VERSION
        )
        receiver = PooledIknpReceiverMachine.restore(
            group,
            SessionState.from_bytes(payload["ot"]),
            _require_pool(ot_pool).receiver_state,
        )
        session = cls(
            circuit,
            receiver.choices,
            group,
            output_to=payload["output_to"],
            ot_mode="iknp",
            ot_pool=ot_pool,
        )
        session._ot = receiver
        _restore_base_fields(session, payload)
        if payload["output_bits"] is not None:
            session.output_bits = list(payload["output_bits"])
        return session


def run_yao(
    channel: FramedChannel | None,
    circuit: Circuit,
    garbler_bits: list[int],
    evaluator_bits: list[int],
    group: DHGroup,
    output_to: str = "evaluator",
    garbler_name: str = "garbler",
    evaluator_name: str = "evaluator",
    ot_mode: str = "iknp",
    stopwatch: Stopwatch | None = None,
) -> YaoRunResult:
    """Execute Yao's protocol once in-process and return the decoded output bits.

    ``output_to`` selects which party learns the cleartext result: the other
    party only ever sees labels or garbled material.  The *channel*'s two
    parties must be *garbler_name* and *evaluator_name* (a loopback channel is
    created when ``channel`` is ``None``).
    """
    _check_output_to(output_to)
    stopwatch = stopwatch or Stopwatch()
    channel = channel or FramedChannel.loopback(
        "yao", parties=(garbler_name, evaluator_name)
    )
    bytes_before = channel.total_bytes()
    garbler = YaoGarblerSession(circuit, garbler_bits, group, output_to, ot_mode)
    evaluator = YaoEvaluatorSession(circuit, evaluator_bits, group, output_to, ot_mode)
    run_session_pair(channel, {garbler_name: garbler, evaluator_name: evaluator})
    output_bits = garbler.output_bits if output_to == "garbler" else evaluator.output_bits
    assert output_bits is not None
    stopwatch.add("yao.garbler", garbler.seconds)
    stopwatch.add("yao.evaluator", evaluator.seconds)
    return YaoRunResult(
        output_bits=output_bits,
        garbler_seconds=garbler.seconds,
        evaluator_seconds=evaluator.seconds,
        network_bytes=channel.total_bytes() - bytes_before,
        and_gates=circuit.and_count,
    )
