"""Driver for Yao's two-party protocol over a byte-accounted channel.

This stitches together the pieces of §3.2: the garbler builds the garbled
tables for an agreed-upon circuit, sends them together with the labels of its
own inputs, runs oblivious transfer so the evaluator obtains the labels of
*its* inputs, and the evaluator evaluates.  Depending on the arrangement the
cleartext output is learned by the evaluator (spam filtering: the client) or
sent back — as an output *label*, so the evaluator learns nothing extra — and
decoded by the garbler (topic extraction: the provider, Fig. 5 step 5).

Both parties run in-process; every protocol message flows through the channel
so the benchmark harness sees the same byte counts a networked deployment
would (Yao network cost per input value is Fig. 6's ``sz_per-in``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.crypto.circuits import Circuit
from repro.crypto.dh import DHGroup
from repro.crypto.garbled import decode_outputs, evaluate, garble
from repro.crypto.ot import ObliviousTransfer
from repro.exceptions import ProtocolAbort
from repro.utils.timing import Stopwatch


@dataclass
class YaoRunResult:
    """Outcome of one Yao execution."""

    output_bits: list[int]
    garbler_seconds: float
    evaluator_seconds: float
    network_bytes: int
    and_gates: int


def run_yao(
    channel,
    circuit: Circuit,
    garbler_bits: list[int],
    evaluator_bits: list[int],
    group: DHGroup,
    output_to: str = "evaluator",
    garbler_name: str = "garbler",
    evaluator_name: str = "evaluator",
    ot_mode: str = "iknp",
    stopwatch: Stopwatch | None = None,
) -> YaoRunResult:
    """Execute Yao's protocol once and return the decoded output bits.

    ``output_to`` selects which party learns the cleartext result: the other
    party only ever sees labels or garbled material.
    """
    if output_to not in ("garbler", "evaluator"):
        raise ProtocolAbort("output_to must be 'garbler' or 'evaluator'")
    stopwatch = stopwatch or Stopwatch()
    bytes_before = channel.total_bytes()

    # --- garbler: garble and send tables + own input labels -------------------
    garbler_start = time.perf_counter()
    garbling = garble(circuit)
    garbler_input_labels = garbling.input_labels(circuit.garbler_inputs, garbler_bits)
    evaluator_label_pairs = garbling.label_pairs(circuit.evaluator_inputs)
    garbler_elapsed = time.perf_counter() - garbler_start

    # --- oblivious transfers for the evaluator's input labels -----------------
    # The OTs run first so their request/response messages do not interleave
    # with the garbled-tables message on the shared two-party channel.
    ot = ObliviousTransfer(group, mode=ot_mode)
    ot_start = time.perf_counter()
    evaluator_labels = ot.run(channel, evaluator_label_pairs, evaluator_bits)
    ot_elapsed = time.perf_counter() - ot_start

    # --- garbler sends tables + its own input labels; evaluator evaluates --------
    channel.send(garbler_name, {
        "tables": garbling.tables,
        "garbler_labels": garbler_input_labels,
        "decode_at_evaluator": output_to == "evaluator",
    })
    message = channel.receive(evaluator_name)
    evaluator_start = time.perf_counter()
    output_labels = evaluate(
        circuit,
        message["tables"],
        message["garbler_labels"],
        evaluator_labels,
    )
    evaluator_elapsed = time.perf_counter() - evaluator_start

    # --- output decoding ------------------------------------------------------------
    if output_to == "evaluator":
        output_bits = decode_outputs(circuit, message["tables"], output_labels)
    else:
        channel.send(evaluator_name, {"output_labels": output_labels})
        returned = channel.receive(garbler_name)
        output_bits = decode_outputs(circuit, garbling.tables, returned["output_labels"])

    network_bytes = channel.total_bytes() - bytes_before
    # Attribute OT time half/half: in a real deployment each party does
    # roughly symmetric work in the OT (the sender computes pads, the
    # receiver derives keys); this split matches how the paper's Fig. 6
    # reports a single per-input Yao CPU cost.
    garbler_total = garbler_elapsed + ot_elapsed / 2
    evaluator_total = evaluator_elapsed + ot_elapsed / 2
    stopwatch.add("yao.garbler", garbler_total)
    stopwatch.add("yao.evaluator", evaluator_total)
    return YaoRunResult(
        output_bits=output_bits,
        garbler_seconds=garbler_total,
        evaluator_seconds=evaluator_total,
        network_bytes=network_bytes,
        and_gates=circuit.and_count,
    )
