"""Cryptographic substrates for Pretzel.

This package implements, from scratch, every cryptographic building block the
paper's protocol stack relies on:

* number theory and prime generation (:mod:`repro.crypto.numtheory`),
* hashing, HKDF, HMAC-DRBG and ChaCha20 (:mod:`repro.crypto.hashes`,
  :mod:`repro.crypto.prg`, :mod:`repro.crypto.chacha`),
* Diffie–Hellman groups with jointly-randomised parameters (§3.3 footnote 3),
  ElGamal KEM and Schnorr signatures for the e2e module
  (:mod:`repro.crypto.dh`, :mod:`repro.crypto.elgamal`,
  :mod:`repro.crypto.schnorr`),
* the two additively homomorphic encryption (AHE) schemes the paper compares:
  Paillier (baseline, §3.3) and the Ring-LWE "XPIR-BV" scheme (§4.1)
  (:mod:`repro.crypto.paillier`, :mod:`repro.crypto.bv`), behind a common
  interface with slot packing (:mod:`repro.crypto.ahe`,
  :mod:`repro.crypto.packing`),
* Yao's garbled circuits with oblivious transfer
  (:mod:`repro.crypto.circuits`, :mod:`repro.crypto.garbled`,
  :mod:`repro.crypto.ot`, :mod:`repro.crypto.yao`).
"""

from repro.crypto.ahe import AHEScheme, AHECiphertext, AHEKeyPair
from repro.crypto.paillier import PaillierScheme
from repro.crypto.bv import BVScheme, BVParameters

__all__ = [
    "AHEScheme",
    "AHECiphertext",
    "AHEKeyPair",
    "PaillierScheme",
    "BVScheme",
    "BVParameters",
]
