"""Boolean circuits for the functions Pretzel evaluates inside Yao's 2PC.

Pretzel uses Yao's protocol "very selectively — just to compute several
comparisons of 32-bit numbers" (§3.2): after the secure dot products, the two
parties must (a) remove the client's blinding noise and (b) apply the final
non-linear step, which is a threshold comparison for spam filtering and an
argmax (returning the original topic index) for topic extraction (Fig. 2
step 4, Fig. 5 step 5).

This module provides a small circuit IR (XOR / AND / NOT gates over wires)
and a :class:`CircuitBuilder` with the arithmetic gadgets those two functions
need: ripple-carry addition, two's-complement subtraction, unsigned
comparison, multiplexers and an argmax tree.  XOR gates are free under the
free-XOR garbling optimisation, so the builders prefer XOR-heavy
constructions; the AND-gate count is what determines garbling cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import CircuitError
from repro.utils.bitops import bits_to_int, int_to_bits


class GateKind(Enum):
    XOR = "xor"
    AND = "and"
    NOT = "not"


@dataclass(frozen=True)
class Gate:
    kind: GateKind
    input_a: int
    input_b: int  # ignored for NOT gates
    output: int


@dataclass
class Circuit:
    """A gate list with designated garbler/evaluator input wires and output wires."""

    num_wires: int
    gates: list[Gate]
    garbler_inputs: list[int]
    evaluator_inputs: list[int]
    outputs: list[int]

    @property
    def and_count(self) -> int:
        return sum(1 for gate in self.gates if gate.kind is GateKind.AND)

    @property
    def xor_count(self) -> int:
        return sum(1 for gate in self.gates if gate.kind is GateKind.XOR)

    def evaluate_plain(self, garbler_bits: list[int], evaluator_bits: list[int]) -> list[int]:
        """Evaluate in the clear (used for testing and for the NoPriv baseline)."""
        if len(garbler_bits) != len(self.garbler_inputs):
            raise CircuitError("wrong number of garbler input bits")
        if len(evaluator_bits) != len(self.evaluator_inputs):
            raise CircuitError("wrong number of evaluator input bits")
        values: dict[int, int] = {}
        for wire, bit in zip(self.garbler_inputs, garbler_bits):
            values[wire] = bit & 1
        for wire, bit in zip(self.evaluator_inputs, evaluator_bits):
            values[wire] = bit & 1
        for gate in self.gates:
            a = values[gate.input_a]
            if gate.kind is GateKind.NOT:
                values[gate.output] = 1 - a
            else:
                b = values[gate.input_b]
                values[gate.output] = (a ^ b) if gate.kind is GateKind.XOR else (a & b)
        try:
            return [values[wire] for wire in self.outputs]
        except KeyError as missing:
            raise CircuitError(f"output wire {missing} was never assigned") from missing


class CircuitBuilder:
    """Incrementally builds a :class:`Circuit`.

    Inputs must be declared before any gate references them; the builder
    enforces single assignment per wire.
    """

    def __init__(self) -> None:
        self._num_wires = 0
        self._gates: list[Gate] = []
        self._garbler_inputs: list[int] = []
        self._evaluator_inputs: list[int] = []
        self._assigned: set[int] = set()

    # -- wire/input management ---------------------------------------------
    def _new_wire(self) -> int:
        wire = self._num_wires
        self._num_wires += 1
        return wire

    def garbler_input(self, width: int = 1) -> list[int]:
        """Declare *width* fresh input wires owned by the garbler."""
        wires = [self._new_wire() for _ in range(width)]
        self._garbler_inputs.extend(wires)
        self._assigned.update(wires)
        return wires

    def evaluator_input(self, width: int = 1) -> list[int]:
        """Declare *width* fresh input wires owned by the evaluator."""
        wires = [self._new_wire() for _ in range(width)]
        self._evaluator_inputs.extend(wires)
        self._assigned.update(wires)
        return wires

    # -- gates ---------------------------------------------------------------
    def _emit(self, kind: GateKind, a: int, b: int) -> int:
        for wire in (a, b):
            if wire not in self._assigned:
                raise CircuitError(f"gate reads unassigned wire {wire}")
        out = self._new_wire()
        self._gates.append(Gate(kind, a, b, out))
        self._assigned.add(out)
        return out

    def xor(self, a: int, b: int) -> int:
        return self._emit(GateKind.XOR, a, b)

    def and_(self, a: int, b: int) -> int:
        return self._emit(GateKind.AND, a, b)

    def not_(self, a: int) -> int:
        if a not in self._assigned:
            raise CircuitError(f"gate reads unassigned wire {a}")
        out = self._new_wire()
        self._gates.append(Gate(GateKind.NOT, a, a, out))
        self._assigned.add(out)
        return out

    def or_(self, a: int, b: int) -> int:
        # a OR b = (a XOR b) XOR (a AND b): one AND gate, two free XORs.
        return self.xor(self.xor(a, b), self.and_(a, b))

    def mux_bit(self, select: int, when_zero: int, when_one: int) -> int:
        """Return ``when_one`` if *select* else ``when_zero`` (one AND gate)."""
        difference = self.xor(when_zero, when_one)
        gated = self.and_(select, difference)
        return self.xor(when_zero, gated)

    # -- word-level gadgets -----------------------------------------------------
    def mux_word(self, select: int, when_zero: list[int], when_one: list[int]) -> list[int]:
        if len(when_zero) != len(when_one):
            raise CircuitError("mux operands must have equal width")
        return [self.mux_bit(select, z, o) for z, o in zip(when_zero, when_one)]

    def add_words(self, a: list[int], b: list[int]) -> list[int]:
        """Ripple-carry addition modulo 2^width (little-endian wire lists)."""
        if len(a) != len(b):
            raise CircuitError("adder operands must have equal width")
        carry: int | None = None
        result = []
        for bit_a, bit_b in zip(a, b):
            axb = self.xor(bit_a, bit_b)
            if carry is None:
                result.append(axb)
                carry = self.and_(bit_a, bit_b)
            else:
                result.append(self.xor(axb, carry))
                # carry_out = (a AND b) XOR (carry AND (a XOR b))
                carry = self.xor(self.and_(bit_a, bit_b), self.and_(carry, axb))
        return result

    def subtract_words(self, a: list[int], b: list[int]) -> list[int]:
        """``a - b`` modulo 2^width via two's complement."""
        if len(a) != len(b):
            raise CircuitError("subtractor operands must have equal width")
        # a - b = a + ~b + 1; fold the +1 in as the initial carry.
        not_b = [self.not_(bit) for bit in b]
        carry: int | None = None
        result = []
        for index, (bit_a, bit_nb) in enumerate(zip(a, not_b)):
            axb = self.xor(bit_a, bit_nb)
            if index == 0:
                # carry-in = 1: sum = a XOR ~b XOR 1 = NOT(a XOR ~b)
                result.append(self.not_(axb))
                carry = self.or_(self.and_(bit_a, bit_nb), axb)  # majority(a, ~b, 1)
            else:
                result.append(self.xor(axb, carry))
                carry = self.xor(self.and_(bit_a, bit_nb), self.and_(carry, axb))
        return result

    def greater_than(self, a: list[int], b: list[int]) -> int:
        """Unsigned ``a > b`` (single output bit)."""
        if len(a) != len(b):
            raise CircuitError("comparator operands must have equal width")
        # Scan from least to most significant: gt = a_i AND NOT b_i, preserved
        # by higher equal bits; eq tracking folded in bit by bit.
        gt: int | None = None
        for bit_a, bit_b in zip(a, b):
            a_and_not_b = self.and_(bit_a, self.not_(bit_b))
            if gt is None:
                gt = a_and_not_b
            else:
                equal_here = self.not_(self.xor(bit_a, bit_b))
                gt = self.xor(a_and_not_b, self.and_(equal_here, self.xor(gt, a_and_not_b)))
        assert gt is not None
        return gt

    def greater_or_equal(self, a: list[int], b: list[int]) -> int:
        """Unsigned ``a >= b``."""
        return self.not_(self.greater_than(b, a))

    def argmax(self, values: list[list[int]], payloads: list[list[int]]) -> list[int]:
        """Return the payload associated with the maximum value.

        *values* are unsigned words of equal width; *payloads* are arbitrary
        words of equal width carried alongside (the topic protocol carries the
        original topic index ``S'[j]``, Fig. 5 step 5).  Ties resolve to the
        earliest entry, matching ``numpy.argmax`` semantics used by the
        plaintext classifiers.
        """
        if not values or len(values) != len(payloads):
            raise CircuitError("argmax needs matching non-empty value/payload lists")
        best_value = values[0]
        best_payload = payloads[0]
        for value, payload in zip(values[1:], payloads[1:]):
            is_greater = self.greater_than(value, best_value)
            best_value = self.mux_word(is_greater, best_value, value)
            best_payload = self.mux_word(is_greater, best_payload, payload)
        return best_payload

    # -- finalisation -------------------------------------------------------------
    def build(self, outputs: list[int]) -> Circuit:
        for wire in outputs:
            if wire not in self._assigned:
                raise CircuitError(f"output wire {wire} is unassigned")
        return Circuit(
            num_wires=self._num_wires,
            gates=list(self._gates),
            garbler_inputs=list(self._garbler_inputs),
            evaluator_inputs=list(self._evaluator_inputs),
            outputs=list(outputs),
        )


@dataclass
class SpamCircuit:
    """Unblind two dot products and compare them (Fig. 2 step 4, spam case).

    Garbler (provider) inputs: blinded spam score, blinded non-spam score.
    Evaluator (client) inputs: the two blinding noises.
    Output (1 bit, learned by the client): 1 if the email is spam.
    """

    circuit: Circuit
    width: int

    @classmethod
    def build(cls, width: int) -> "SpamCircuit":
        builder = CircuitBuilder()
        blinded_spam = builder.garbler_input(width)
        blinded_ham = builder.garbler_input(width)
        noise_spam = builder.evaluator_input(width)
        noise_ham = builder.evaluator_input(width)
        spam_score = builder.subtract_words(blinded_spam, noise_spam)
        ham_score = builder.subtract_words(blinded_ham, noise_ham)
        is_spam = builder.greater_than(spam_score, ham_score)
        return cls(circuit=builder.build([is_spam]), width=width)

    def garbler_bits(self, blinded_spam: int, blinded_ham: int) -> list[int]:
        return int_to_bits(blinded_spam, self.width) + int_to_bits(blinded_ham, self.width)

    def evaluator_bits(self, noise_spam: int, noise_ham: int) -> list[int]:
        return int_to_bits(noise_spam, self.width) + int_to_bits(noise_ham, self.width)

    @staticmethod
    def decode_output(bits: list[int]) -> bool:
        return bool(bits[0])


@dataclass
class TopicCircuit:
    """Unblind B' candidate scores, take the argmax, and reveal the topic index.

    Garbler (client) inputs: noises and the candidate topic indices ``S'[j]``
    (both are the client's private inputs per Fig. 5 step 5).
    Evaluator (provider) inputs: the blinded candidate scores it decrypted.
    Output (index_bits, learned by the provider): ``S'[argmax_j d_j]``.
    """

    circuit: Circuit
    width: int
    candidates: int
    index_bits: int

    @classmethod
    def build(cls, width: int, candidates: int, index_bits: int) -> "TopicCircuit":
        if candidates < 1:
            raise CircuitError("need at least one candidate topic")
        builder = CircuitBuilder()
        noise_words = [builder.garbler_input(width) for _ in range(candidates)]
        index_words = [builder.garbler_input(index_bits) for _ in range(candidates)]
        blinded_words = [builder.evaluator_input(width) for _ in range(candidates)]
        scores = [
            builder.subtract_words(blinded, noise)
            for blinded, noise in zip(blinded_words, noise_words)
        ]
        winner_index = builder.argmax(scores, index_words)
        return cls(
            circuit=builder.build(winner_index),
            width=width,
            candidates=candidates,
            index_bits=index_bits,
        )

    def garbler_bits(self, noises: list[int], topic_indices: list[int]) -> list[int]:
        if len(noises) != self.candidates or len(topic_indices) != self.candidates:
            raise CircuitError("wrong number of noises or candidate indices")
        bits: list[int] = []
        for noise in noises:
            bits.extend(int_to_bits(noise, self.width))
        for index in topic_indices:
            bits.extend(int_to_bits(index, self.index_bits))
        return bits

    def evaluator_bits(self, blinded_scores: list[int]) -> list[int]:
        if len(blinded_scores) != self.candidates:
            raise CircuitError("wrong number of blinded scores")
        bits: list[int] = []
        for value in blinded_scores:
            bits.extend(int_to_bits(value, self.width))
        return bits

    @staticmethod
    def decode_output(bits: list[int]) -> int:
        return bits_to_int(bits)
