"""Number-theoretic transform (NTT) over NTT-friendly primes.

The Ring-LWE cryptosystem of §4.1 works in the negacyclic polynomial ring
``Z_q[x]/(x^n + 1)``.  Multiplying two degree-``n`` polynomials there is the
inner loop of key generation, encryption and decryption, so it must be fast
even in Python: we vectorise an iterative Cooley–Tukey NTT with NumPy int64
arrays and reduce modulo a < 2^31 prime at every butterfly stage so products
never overflow 64 bits.

A negacyclic (negative-wrapped) convolution of length ``n`` is computed by
pre-multiplying inputs by powers of a primitive ``2n``-th root of unity ψ,
running a cyclic NTT with ω = ψ², and post-multiplying by powers of ψ⁻¹.

Everything that depends only on ``(ring_degree, prime)`` — bit-reversal
permutations, twiddle tables, the contexts themselves, and the spectra of
monomials ``x^k`` used for evaluation-domain slot shifts — is cached at
module level, so repeated scheme instantiations (tests, benchmarks, one
``BVScheme`` per protocol arm) never redo the setup work.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.numtheory import (
    find_primitive_root_of_unity,
    invmod,
    is_probable_prime,
)
from repro.exceptions import ParameterError

# Cache of discovered NTT-friendly primes keyed by (bits, order).  The search
# below is a deterministic descending walk, so for a fixed key the cache always
# extends the same sequence and repeated calls agree across schemes.
_PRIME_CACHE: dict[tuple[int, int], list[int]] = {}

# Bit-reversal permutations keyed by transform length.
_BITREV_CACHE: dict[int, np.ndarray] = {}

# Fully initialised transform contexts keyed by (ring_degree, prime).
_CONTEXT_CACHE: dict[tuple[int, int], "NttContext"] = {}


def ntt_friendly_primes(count: int, bits: int, ring_degree: int) -> list[int]:
    """Return *count* distinct primes ``q ≡ 1 (mod 2*ring_degree)`` of ~*bits* bits.

    The search walks candidates ``c ≡ 1 (mod 2n)`` downward from ``2**bits``,
    so it is deterministic, never revisits a candidate (every prime found is
    distinct by construction), and every returned prime is strictly below
    ``2**bits`` — the bound the int64 butterflies rely on.
    """
    if ring_degree <= 0 or ring_degree & (ring_degree - 1):
        raise ParameterError("ring_degree must be a power of two")
    if bits > 31:
        raise ParameterError("primes above 31 bits would overflow int64 butterflies")
    order = 2 * ring_degree
    key = (bits, order)
    cached = _PRIME_CACHE.setdefault(key, [])
    if len(cached) < count:
        if cached:
            candidate = cached[-1] - order
        else:
            candidate = ((1 << bits) - 1) // order * order + 1
        floor = max(order, 1 << (bits - 2))
        while len(cached) < count:
            if candidate <= floor:
                raise ParameterError("could not find enough distinct NTT primes")
            if is_probable_prime(candidate):
                cached.append(candidate)
            candidate -= order
    return cached[:count]


def _bit_reverse_permutation(n: int) -> np.ndarray:
    cached = _BITREV_CACHE.get(n)
    if cached is not None:
        return cached
    bits = n.bit_length() - 1
    perm = np.zeros(n, dtype=np.int64)
    for i in range(n):
        reversed_index = 0
        value = i
        for _ in range(bits):
            reversed_index = (reversed_index << 1) | (value & 1)
            value >>= 1
        perm[i] = reversed_index
    perm.setflags(write=False)
    _BITREV_CACHE[n] = perm
    return perm


def get_ntt_context(ring_degree: int, prime: int) -> "NttContext":
    """Shared, cached :class:`NttContext` for ``(ring_degree, prime)``."""
    key = (ring_degree, prime)
    cached = _CONTEXT_CACHE.get(key)
    if cached is None:
        cached = NttContext(ring_degree, prime)
        _CONTEXT_CACHE[key] = cached
    return cached


class NttContext:
    """Forward/inverse negacyclic NTT modulo a single prime.

    Transforms accept arrays of shape ``(..., n)`` and operate along the last
    axis, so a batch of polynomials (the four fresh samples of one encryption,
    the rows of a packed model) costs one vectorised pass instead of one
    Python-level call per polynomial.
    """

    def __init__(self, ring_degree: int, prime: int) -> None:
        if ring_degree <= 1 or ring_degree & (ring_degree - 1):
            raise ParameterError("ring degree must be a power of two > 1")
        if (prime - 1) % (2 * ring_degree) != 0:
            raise ParameterError("prime is not NTT-friendly for this ring degree")
        self.n = ring_degree
        self.prime = prime
        psi = find_primitive_root_of_unity(2 * ring_degree, prime)
        omega = (psi * psi) % prime
        self._psi_powers = self._power_table(psi, ring_degree, prime)
        self._psi_inv_powers = self._power_table(invmod(psi, prime), ring_degree, prime)
        self._omega_powers = self._power_table(omega, ring_degree // 2, prime)
        self._omega_inv_powers = self._power_table(invmod(omega, prime), ring_degree // 2, prime)
        self._n_inverse = invmod(ring_degree, prime)
        self._bitrev = _bit_reverse_permutation(ring_degree)
        # Spectra of the monomials x^k, filled on demand by monomial_spectrum.
        self._monomial_cache: dict[int, np.ndarray] = {}

    @staticmethod
    def _power_table(base: int, count: int, prime: int) -> np.ndarray:
        table = np.zeros(count, dtype=np.int64)
        value = 1
        for index in range(count):
            table[index] = value
            value = (value * base) % prime
        return table

    def _cyclic_transform(self, values: np.ndarray, twiddles: np.ndarray) -> np.ndarray:
        """Iterative cyclic NTT along the last axis of ``values`` (shape (..., n)).

        Butterfly sums are reduced *lazily*: only the multiplication operand is
        reduced per stage (products must stay below 2^63), while the add/sub
        results are left to grow.  Magnitudes after stage ``k`` are bounded by
        ``(k + 1) * prime`` < 2^35 for the ≤ 2^31 primes and ≤ 2^10 stages used
        here, so nothing overflows before the single final reduction.
        """
        prime = self.prime
        data = values[..., self._bitrev].astype(np.int64)
        batch_shape = data.shape[:-1]
        data = data.reshape(-1, self.n)
        length = 2
        while length <= self.n:
            half = length // 2
            stride = self.n // length
            stage_twiddles = twiddles[: half * stride : stride]
            reshaped = data.reshape(data.shape[0], -1, length)
            left = reshaped[:, :, :half]
            right = reshaped[:, :, half:] % prime * stage_twiddles % prime
            upper = left + right
            lower = left - right
            reshaped[:, :, :half] = upper
            reshaped[:, :, half:] = lower
            data = reshaped.reshape(data.shape[0], self.n)
            length *= 2
        return (data % prime).reshape(*batch_shape, self.n)

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Negacyclic forward transform of a coefficient vector (length n)."""
        if coefficients.shape != (self.n,):
            raise ParameterError("coefficient vector has the wrong length")
        return self.forward_many(coefficients)

    def inverse(self, spectrum: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward`."""
        if spectrum.shape != (self.n,):
            raise ParameterError("spectrum vector has the wrong length")
        return self.inverse_many(spectrum)

    def forward_many(self, coefficients: np.ndarray) -> np.ndarray:
        """Forward transform along the last axis of an ``(..., n)`` array."""
        if coefficients.shape[-1] != self.n:
            raise ParameterError("coefficient vectors have the wrong length")
        weighted = (coefficients.astype(np.int64) % self.prime * self._psi_powers) % self.prime
        return self._cyclic_transform(weighted, self._omega_powers)

    def inverse_many(self, spectra: np.ndarray) -> np.ndarray:
        """Inverse transform along the last axis of an ``(..., n)`` array."""
        if spectra.shape[-1] != self.n:
            raise ParameterError("spectrum vectors have the wrong length")
        data = self._cyclic_transform(spectra.astype(np.int64), self._omega_inv_powers)
        data = (data * self._n_inverse) % self.prime
        return (data * self._psi_inv_powers) % self.prime

    def multiply(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Negacyclic polynomial product of two coefficient vectors."""
        left_spectrum = self.forward(left)
        right_spectrum = self.forward(right)
        product = (left_spectrum * right_spectrum) % self.prime
        return self.inverse(product)

    def monomial_spectrum(self, exponent: int) -> np.ndarray:
        """Spectrum of ``x^exponent`` (exponent taken mod 2n; ``x^n = -1``).

        Pointwise multiplication by this vector shifts slots entirely in the
        evaluation domain — the homomorphic "left shift" of §4.2 without any
        transform.  Results are cached (and marked read-only) per exponent.
        """
        exponent %= 2 * self.n
        cached = self._monomial_cache.get(exponent)
        if cached is None:
            one_hot = np.zeros(self.n, dtype=np.int64)
            one_hot[exponent % self.n] = 1
            cached = self.forward(one_hot)
            if exponent >= self.n:
                cached = (-cached) % self.prime
            cached.setflags(write=False)
            self._monomial_cache[exponent] = cached
        return cached


def negacyclic_multiply_reference(left: np.ndarray, right: np.ndarray, prime: int) -> np.ndarray:
    """O(n²) schoolbook negacyclic product, used by tests to validate the NTT."""
    n = len(left)
    result = np.zeros(n, dtype=object)
    for i in range(n):
        if left[i] == 0:
            continue
        for j in range(n):
            index = i + j
            term = int(left[i]) * int(right[j])
            if index >= n:
                result[index - n] -= term
            else:
                result[index] += term
    return np.array([int(value) % prime for value in result], dtype=np.int64)
