"""Number-theoretic transform (NTT) over NTT-friendly primes.

The Ring-LWE cryptosystem of §4.1 works in the negacyclic polynomial ring
``Z_q[x]/(x^n + 1)``.  Multiplying two degree-``n`` polynomials there is the
inner loop of key generation, encryption and decryption, so it must be fast
even in Python: we vectorise an iterative Cooley–Tukey NTT with NumPy int64
arrays and reduce modulo a < 2^31 prime at every butterfly stage so products
never overflow 64 bits.

A negacyclic (negative-wrapped) convolution of length ``n`` is computed by
pre-multiplying inputs by powers of a primitive ``2n``-th root of unity ψ,
running a cyclic NTT with ω = ψ², and post-multiplying by powers of ψ⁻¹.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.numtheory import (
    find_ntt_prime,
    find_primitive_root_of_unity,
    invmod,
)
from repro.exceptions import ParameterError

# Cache of discovered NTT-friendly primes keyed by (bits, order) so repeated
# scheme instantiations (tests, benchmarks) don't redo the prime search.
_PRIME_CACHE: dict[tuple[int, int], list[int]] = {}


def ntt_friendly_primes(count: int, bits: int, ring_degree: int) -> list[int]:
    """Return *count* distinct primes ``q ≡ 1 (mod 2*ring_degree)`` of ~*bits* bits."""
    if ring_degree <= 0 or ring_degree & (ring_degree - 1):
        raise ParameterError("ring_degree must be a power of two")
    if bits > 31:
        raise ParameterError("primes above 31 bits would overflow int64 butterflies")
    order = 2 * ring_degree
    key = (bits, order)
    cached = _PRIME_CACHE.setdefault(key, [])
    candidate_bits = bits
    while len(cached) < count:
        prime = find_ntt_prime(candidate_bits, order)
        if prime not in cached:
            cached.append(prime)
        else:
            # Walk to a nearby size to find a distinct prime.
            candidate_bits -= 1
            if candidate_bits < 20:
                raise ParameterError("could not find enough distinct NTT primes")
    return cached[:count]


def _bit_reverse_permutation(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    perm = np.zeros(n, dtype=np.int64)
    for i in range(n):
        reversed_index = 0
        value = i
        for _ in range(bits):
            reversed_index = (reversed_index << 1) | (value & 1)
            value >>= 1
        perm[i] = reversed_index
    return perm


class NttContext:
    """Forward/inverse negacyclic NTT modulo a single prime."""

    def __init__(self, ring_degree: int, prime: int) -> None:
        if ring_degree <= 1 or ring_degree & (ring_degree - 1):
            raise ParameterError("ring degree must be a power of two > 1")
        if (prime - 1) % (2 * ring_degree) != 0:
            raise ParameterError("prime is not NTT-friendly for this ring degree")
        self.n = ring_degree
        self.prime = prime
        psi = find_primitive_root_of_unity(2 * ring_degree, prime)
        omega = (psi * psi) % prime
        self._psi_powers = self._power_table(psi, ring_degree, prime)
        self._psi_inv_powers = self._power_table(invmod(psi, prime), ring_degree, prime)
        self._omega_powers = self._power_table(omega, ring_degree // 2, prime)
        self._omega_inv_powers = self._power_table(invmod(omega, prime), ring_degree // 2, prime)
        self._n_inverse = invmod(ring_degree, prime)
        self._bitrev = _bit_reverse_permutation(ring_degree)

    @staticmethod
    def _power_table(base: int, count: int, prime: int) -> np.ndarray:
        table = np.zeros(count, dtype=np.int64)
        value = 1
        for index in range(count):
            table[index] = value
            value = (value * base) % prime
        return table

    def _cyclic_transform(self, values: np.ndarray, twiddles: np.ndarray) -> np.ndarray:
        prime = self.prime
        data = values[self._bitrev].astype(np.int64)
        length = 2
        while length <= self.n:
            half = length // 2
            stride = self.n // length
            stage_twiddles = twiddles[: half * stride : stride]
            reshaped = data.reshape(-1, length)
            left = reshaped[:, :half]
            right = (reshaped[:, half:] * stage_twiddles) % prime
            upper = (left + right) % prime
            lower = (left - right) % prime
            reshaped[:, :half] = upper
            reshaped[:, half:] = lower
            data = reshaped.reshape(-1)
            length *= 2
        return data

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Negacyclic forward transform of a coefficient vector (length n)."""
        if coefficients.shape != (self.n,):
            raise ParameterError("coefficient vector has the wrong length")
        weighted = (coefficients.astype(np.int64) % self.prime * self._psi_powers) % self.prime
        return self._cyclic_transform(weighted, self._omega_powers)

    def inverse(self, spectrum: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward`."""
        if spectrum.shape != (self.n,):
            raise ParameterError("spectrum vector has the wrong length")
        data = self._cyclic_transform(spectrum.astype(np.int64), self._omega_inv_powers)
        data = (data * self._n_inverse) % self.prime
        return (data * self._psi_inv_powers) % self.prime

    def multiply(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Negacyclic polynomial product of two coefficient vectors."""
        left_spectrum = self.forward(left)
        right_spectrum = self.forward(right)
        product = (left_spectrum * right_spectrum) % self.prime
        return self.inverse(product)


def negacyclic_multiply_reference(left: np.ndarray, right: np.ndarray, prime: int) -> np.ndarray:
    """O(n²) schoolbook negacyclic product, used by tests to validate the NTT."""
    n = len(left)
    result = np.zeros(n, dtype=object)
    for i in range(n):
        if left[i] == 0:
            continue
        for j in range(n):
            index = i + j
            term = int(left[i]) * int(right[j])
            if index >= n:
                result[index - n] -= term
            else:
                result[index] += term
    return np.array([int(value) % prime for value in result], dtype=np.int64)
