"""Number-theoretic transform (NTT) over NTT-friendly primes.

The Ring-LWE cryptosystem of §4.1 works in the negacyclic polynomial ring
``Z_q[x]/(x^n + 1)``.  Multiplying two degree-``n`` polynomials there is the
inner loop of key generation, encryption and decryption, so it must be fast
even in Python: we vectorise an iterative Cooley–Tukey NTT with NumPy int64
arrays and reduce modulo a < 2^31 prime at every butterfly stage so products
never overflow 64 bits.

A negacyclic (negative-wrapped) convolution of length ``n`` is computed by
pre-multiplying inputs by powers of a primitive ``2n``-th root of unity ψ,
running a cyclic NTT with ω = ψ², and post-multiplying by powers of ψ⁻¹.

Everything that depends only on ``(ring_degree, prime-set)`` — bit-reversal
permutations, twiddle tables, the contexts themselves, and the spectra of
monomials ``x^k`` used for evaluation-domain slot shifts — lives in an
explicit per-``(degree, prime-set)`` :class:`NttPlan`, cached at module
level, so repeated scheme instantiations (tests, benchmarks, one
``BVScheme`` per protocol arm) never redo the setup work and batched slot
shifts reuse one stacked monomial-spectra table.

Transforms are *pluggable*: the vectorised NumPy butterflies below are the
default and the correctness reference, and an optional compiled backend
(:mod:`repro.crypto.ntt_compiled`, numba ``@njit`` loops) is auto-detected
and produces bit-identical residues.  Select explicitly with the
``REPRO_NTT_BACKEND`` environment variable (``numpy`` or ``numba``) or the
``backend`` argument of :func:`get_ntt_plan` / :class:`NttContext`.
"""

from __future__ import annotations

import os

import numpy as np

from repro.crypto import ntt_compiled
from repro.crypto.numtheory import (
    find_primitive_root_of_unity,
    invmod,
    is_probable_prime,
)
from repro.exceptions import ParameterError

# Cache of discovered NTT-friendly primes keyed by (bits, order).  The search
# below is a deterministic descending walk, so for a fixed key the cache always
# extends the same sequence and repeated calls agree across schemes.
_PRIME_CACHE: dict[tuple[int, int], list[int]] = {}

# Bit-reversal permutations keyed by transform length.
_BITREV_CACHE: dict[int, np.ndarray] = {}

# Fully initialised transform contexts keyed by (ring_degree, prime, backend).
_CONTEXT_CACHE: dict[tuple[int, int, str], "NttContext"] = {}

# Fully initialised plans keyed by (ring_degree, prime-set, backend).
_PLAN_CACHE: dict[tuple[int, tuple[int, ...], str], "NttPlan"] = {}


def available_ntt_backends() -> list[str]:
    """Backends usable on this machine; ``numpy`` is always first."""
    backends = ["numpy"]
    if ntt_compiled.available():
        backends.append("numba")
    return backends


def resolve_ntt_backend(backend: str = "auto") -> str:
    """Resolve a backend request to a concrete backend name.

    ``auto`` honours ``REPRO_NTT_BACKEND`` when set, otherwise picks the
    compiled backend when numba is importable and falls back to numpy.
    Requesting ``numba`` explicitly (argument or environment) on a machine
    without numba is an error rather than a silent downgrade.
    """
    if backend == "auto":
        requested = os.environ.get("REPRO_NTT_BACKEND", "").strip().lower()
        if not requested:
            return "numba" if ntt_compiled.available() else "numpy"
        backend = requested
    if backend not in ("numpy", "numba"):
        raise ParameterError(f"unknown NTT backend {backend!r} (use numpy or numba)")
    if backend == "numba" and not ntt_compiled.available():
        raise ParameterError("numba NTT backend requested but numba is not importable")
    return backend


def ntt_friendly_primes(count: int, bits: int, ring_degree: int) -> list[int]:
    """Return *count* distinct primes ``q ≡ 1 (mod 2*ring_degree)`` of ~*bits* bits.

    The search walks candidates ``c ≡ 1 (mod 2n)`` downward from ``2**bits``,
    so it is deterministic, never revisits a candidate (every prime found is
    distinct by construction), and every returned prime is strictly below
    ``2**bits`` — the bound the int64 butterflies rely on.
    """
    if ring_degree <= 0 or ring_degree & (ring_degree - 1):
        raise ParameterError("ring_degree must be a power of two")
    if bits > 31:
        raise ParameterError("primes above 31 bits would overflow int64 butterflies")
    order = 2 * ring_degree
    key = (bits, order)
    cached = _PRIME_CACHE.setdefault(key, [])
    if len(cached) < count:
        if cached:
            candidate = cached[-1] - order
        else:
            candidate = ((1 << bits) - 1) // order * order + 1
        floor = max(order, 1 << (bits - 2))
        while len(cached) < count:
            if candidate <= floor:
                raise ParameterError("could not find enough distinct NTT primes")
            if is_probable_prime(candidate):
                cached.append(candidate)
            candidate -= order
    return cached[:count]


def _bit_reverse_permutation(n: int) -> np.ndarray:
    cached = _BITREV_CACHE.get(n)
    if cached is not None:
        return cached
    bits = n.bit_length() - 1
    perm = np.zeros(n, dtype=np.int64)
    for i in range(n):
        reversed_index = 0
        value = i
        for _ in range(bits):
            reversed_index = (reversed_index << 1) | (value & 1)
            value >>= 1
        perm[i] = reversed_index
    perm.setflags(write=False)
    _BITREV_CACHE[n] = perm
    return perm


def get_ntt_context(ring_degree: int, prime: int, backend: str = "auto") -> "NttContext":
    """Shared, cached :class:`NttContext` for ``(ring_degree, prime, backend)``."""
    resolved = resolve_ntt_backend(backend)
    key = (ring_degree, prime, resolved)
    cached = _CONTEXT_CACHE.get(key)
    if cached is None:
        cached = NttContext(ring_degree, prime, backend=resolved)
        _CONTEXT_CACHE[key] = cached
    return cached


def get_ntt_plan(ring_degree: int, primes: "list[int] | tuple[int, ...]", backend: str = "auto") -> "NttPlan":
    """Shared, cached :class:`NttPlan` for ``(ring_degree, prime-set, backend)``."""
    resolved = resolve_ntt_backend(backend)
    key = (ring_degree, tuple(primes), resolved)
    cached = _PLAN_CACHE.get(key)
    if cached is None:
        cached = NttPlan(ring_degree, primes, backend=resolved)
        _PLAN_CACHE[key] = cached
    return cached


class NttContext:
    """Forward/inverse negacyclic NTT modulo a single prime.

    Transforms accept arrays of shape ``(..., n)`` and operate along the last
    axis, so a batch of polynomials (the four fresh samples of one encryption,
    the rows of a packed model) costs one vectorised pass instead of one
    Python-level call per polynomial.

    ``backend`` selects the butterfly implementation: ``numpy`` (default,
    reference) or ``numba`` (compiled, bit-identical output).  Only the
    backend *name* is stored — never a compiled dispatcher — so contexts stay
    picklable across shard-worker boundaries.
    """

    def __init__(self, ring_degree: int, prime: int, backend: str = "auto") -> None:
        if ring_degree <= 1 or ring_degree & (ring_degree - 1):
            raise ParameterError("ring degree must be a power of two > 1")
        if (prime - 1) % (2 * ring_degree) != 0:
            raise ParameterError("prime is not NTT-friendly for this ring degree")
        self.n = ring_degree
        self.prime = prime
        self.backend = resolve_ntt_backend(backend)
        psi = find_primitive_root_of_unity(2 * ring_degree, prime)
        omega = (psi * psi) % prime
        self._psi_powers = self._power_table(psi, ring_degree, prime)
        self._psi_inv_powers = self._power_table(invmod(psi, prime), ring_degree, prime)
        self._omega_powers = self._power_table(omega, ring_degree // 2, prime)
        self._omega_inv_powers = self._power_table(invmod(omega, prime), ring_degree // 2, prime)
        self._n_inverse = invmod(ring_degree, prime)
        self._bitrev = _bit_reverse_permutation(ring_degree)
        # Spectra of the monomials x^k, filled on demand by monomial_spectrum.
        self._monomial_cache: dict[int, np.ndarray] = {}

    @staticmethod
    def _power_table(base: int, count: int, prime: int) -> np.ndarray:
        table = np.zeros(count, dtype=np.int64)
        value = 1
        for index in range(count):
            table[index] = value
            value = (value * base) % prime
        return table

    def _cyclic_transform(self, values: np.ndarray, twiddles: np.ndarray) -> np.ndarray:
        """Iterative cyclic NTT along the last axis of ``values`` (shape (..., n)).

        Butterfly sums are reduced *lazily*: only the multiplication operand is
        reduced per stage (products must stay below 2^63), while the add/sub
        results are left to grow.  Magnitudes after stage ``k`` are bounded by
        ``(k + 1) * prime`` < 2^35 for the ≤ 2^31 primes and ≤ 2^10 stages used
        here, so nothing overflows before the single final reduction.

        With the ``numba`` backend the same butterflies run as compiled loops
        (eagerly reduced); both paths end in canonical residues, so the
        results are bit-identical.
        """
        prime = self.prime
        data = values[..., self._bitrev].astype(np.int64)
        batch_shape = data.shape[:-1]
        data = data.reshape(-1, self.n)
        if self.backend == "numba":
            compiled = ntt_compiled.kernels()
            if compiled is None:  # numba vanished since resolution (unlikely)
                raise ParameterError("numba NTT backend is unavailable")
            data = np.ascontiguousarray(data)
            compiled.cyclic_ntt_inplace(data, twiddles, prime)
            return data.reshape(*batch_shape, self.n)
        length = 2
        while length <= self.n:
            half = length // 2
            stride = self.n // length
            stage_twiddles = twiddles[: half * stride : stride]
            reshaped = data.reshape(data.shape[0], -1, length)
            left = reshaped[:, :, :half]
            right = reshaped[:, :, half:] % prime * stage_twiddles % prime
            upper = left + right
            lower = left - right
            reshaped[:, :, :half] = upper
            reshaped[:, :, half:] = lower
            data = reshaped.reshape(data.shape[0], self.n)
            length *= 2
        return (data % prime).reshape(*batch_shape, self.n)

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Negacyclic forward transform of a coefficient vector (length n)."""
        if coefficients.shape != (self.n,):
            raise ParameterError("coefficient vector has the wrong length")
        return self.forward_many(coefficients)

    def inverse(self, spectrum: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward`."""
        if spectrum.shape != (self.n,):
            raise ParameterError("spectrum vector has the wrong length")
        return self.inverse_many(spectrum)

    def forward_many(self, coefficients: np.ndarray) -> np.ndarray:
        """Forward transform along the last axis of an ``(..., n)`` array."""
        if coefficients.shape[-1] != self.n:
            raise ParameterError("coefficient vectors have the wrong length")
        weighted = (coefficients.astype(np.int64) % self.prime * self._psi_powers) % self.prime
        return self._cyclic_transform(weighted, self._omega_powers)

    def inverse_many(self, spectra: np.ndarray) -> np.ndarray:
        """Inverse transform along the last axis of an ``(..., n)`` array."""
        if spectra.shape[-1] != self.n:
            raise ParameterError("spectrum vectors have the wrong length")
        data = self._cyclic_transform(spectra.astype(np.int64), self._omega_inv_powers)
        data = (data * self._n_inverse) % self.prime
        return (data * self._psi_inv_powers) % self.prime

    def multiply(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Negacyclic polynomial product of two coefficient vectors."""
        left_spectrum = self.forward(left)
        right_spectrum = self.forward(right)
        product = (left_spectrum * right_spectrum) % self.prime
        return self.inverse(product)

    def monomial_spectrum(self, exponent: int) -> np.ndarray:
        """Spectrum of ``x^exponent`` (exponent taken mod 2n; ``x^n = -1``).

        Pointwise multiplication by this vector shifts slots entirely in the
        evaluation domain — the homomorphic "left shift" of §4.2 without any
        transform.  Results are cached (and marked read-only) per exponent.
        """
        exponent %= 2 * self.n
        cached = self._monomial_cache.get(exponent)
        if cached is None:
            one_hot = np.zeros(self.n, dtype=np.int64)
            one_hot[exponent % self.n] = 1
            cached = self.forward(one_hot)
            if exponent >= self.n:
                cached = (-cached) % self.prime
            cached.setflags(write=False)
            self._monomial_cache[exponent] = cached
        return cached


class NttPlan:
    """All reusable transform state for one ``(ring_degree, prime-set)``.

    A plan bundles the per-prime :class:`NttContext` objects (twiddle tables,
    bit-reversal permutation, backend choice) with the *stacked* monomial
    spectra used by batched evaluation-domain slot shifts, so everything that
    depends only on the parameter set is computed once per process and shared
    by every :class:`~repro.crypto.ringlwe.RingContext` (and therefore every
    scheme instance) over the same primes.  Obtain plans via
    :func:`get_ntt_plan`, which caches them per (degree, prime-set, backend).
    """

    def __init__(self, ring_degree: int, primes: "list[int] | tuple[int, ...]", backend: str = "auto") -> None:
        if not primes:
            raise ParameterError("an NTT plan needs at least one prime")
        self.n = ring_degree
        self.primes = tuple(primes)
        self.backend = resolve_ntt_backend(backend)
        self.contexts = [
            get_ntt_context(ring_degree, prime, self.backend) for prime in self.primes
        ]
        # Stacked (num_primes, n) spectra of x^k, filled on demand.
        self._monomial_cache: dict[int, np.ndarray] = {}

    # -- batched transforms (shape (..., num_primes, n)) ----------------------
    def forward(self, residues: np.ndarray) -> np.ndarray:
        """Per-prime forward NTT of a ``(..., num_primes, n)`` residue array."""
        spectra = np.empty_like(residues)
        for index, context in enumerate(self.contexts):
            spectra[..., index, :] = context.forward_many(residues[..., index, :])
        return spectra

    def inverse(self, spectra: np.ndarray) -> np.ndarray:
        """Per-prime inverse NTT of a ``(..., num_primes, n)`` spectrum array."""
        residues = np.empty_like(spectra)
        for index, context in enumerate(self.contexts):
            residues[..., index, :] = context.inverse_many(spectra[..., index, :])
        return residues

    # -- monomial spectra -----------------------------------------------------
    def monomial_spectra(self, exponent: int) -> np.ndarray:
        """Stacked per-prime spectra of ``x^exponent``, shape ``(num_primes, n)``."""
        exponent %= 2 * self.n
        cached = self._monomial_cache.get(exponent)
        if cached is None:
            cached = np.stack(
                [context.monomial_spectrum(exponent) for context in self.contexts]
            )
            cached.setflags(write=False)
            self._monomial_cache[exponent] = cached
        return cached

    def monomial_spectra_many(self, exponents: "list[int] | tuple[int, ...]") -> np.ndarray:
        """Stacked spectra of many monomials, shape ``(len(exponents), num_primes, n)``.

        This is the batched-shift table: multiplying a ``(B, num_primes, n)``
        ciphertext-component stack by it applies ``x^{exponents[i]}`` to row
        ``i`` in one pointwise pass.  Per-exponent spectra come from the plan
        cache, so repeated shift patterns only pay the ``np.stack`` gather.
        """
        return np.stack([self.monomial_spectra(exponent) for exponent in exponents])


def negacyclic_multiply_reference(left: np.ndarray, right: np.ndarray, prime: int) -> np.ndarray:
    """O(n²) schoolbook negacyclic product, used by tests to validate the NTT."""
    n = len(left)
    result = np.zeros(n, dtype=object)
    for i in range(n):
        if left[i] == 0:
            continue
        for j in range(n):
            index = i + j
            term = int(left[i]) * int(right[j])
            if index >= n:
                result[index - n] -= term
            else:
                result[index] += term
    return np.array([int(value) % prime for value in result], dtype=np.int64)
