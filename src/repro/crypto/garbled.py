"""Garbled-circuit construction and evaluation (Yao's protocol core, §3.2).

Classic point-and-permute garbling with the free-XOR optimisation:

* every wire ``w`` has two 16-byte labels; the label for value 1 is always
  ``label0 XOR R`` for a circuit-global offset ``R`` whose lowest bit is 1, so
  the lowest bit of a label doubles as the permute (colour) bit;
* XOR gates are free (output label = XOR of input labels);
* NOT gates are free (the output's 0-label is the input's 1-label);
* AND gates carry a four-row garbled table; each row encrypts the correct
  output label under ``H(label_a, label_b, gate_index)`` and rows are ordered
  by the inputs' colour bits, so the evaluator decrypts exactly one row
  without learning anything about the plaintext values.

The paper's prototype uses Obliv-C with an actively-secure variant [71, 77];
here we implement the standard passively-secure construction plus the
correctness checks a malicious evaluator/garbler would be caught by at the
protocol layer (output-label authentication), which is the level of fidelity
the cost model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256
from repro.crypto.circuits import Circuit, GateKind
from repro.exceptions import CircuitError, ProtocolAbort, WireFormatError
from repro.utils.bitops import xor_bytes
from repro.utils.rand import secure_bytes
from repro.utils.serialization import ByteReader, ByteWriter

LABEL_BYTES = 16


def _colour(label: bytes) -> int:
    """Permute (colour) bit of a label: its lowest bit."""
    return label[-1] & 1


def _hash_gate(label_a: bytes, label_b: bytes, gate_index: int) -> bytes:
    return sha256(b"garble-gate", label_a, label_b, gate_index.to_bytes(4, "big"))[:LABEL_BYTES]


@dataclass
class GarbledGate:
    """Four-row encrypted truth table for an AND gate (rows indexed by colours)."""

    gate_index: int
    rows: list[bytes]  # 4 entries of LABEL_BYTES bytes


@dataclass
class GarbledTables:
    """Everything the evaluator needs apart from input labels."""

    and_gates: dict[int, GarbledGate]  # keyed by position in circuit.gates
    output_decode: list[tuple[bytes, bytes]]  # per output wire: (hash of 0-label, hash of 1-label)

    def size_bytes(self) -> int:
        table_bytes = sum(4 * LABEL_BYTES for _ in self.and_gates)
        decode_bytes = len(self.output_decode) * 2 * LABEL_BYTES
        return table_bytes + decode_bytes

    # -- wire codec (the garbled-tables message of Yao's protocol) ------------
    def to_bytes(self) -> bytes:
        """Exact wire encoding: gate positions + rows, then the decode digests."""
        writer = ByteWriter()
        writer.u32(len(self.and_gates))
        for position in sorted(self.and_gates):
            gate = self.and_gates[position]
            if len(gate.rows) != 4 or any(len(row) != LABEL_BYTES for row in gate.rows):
                raise CircuitError("garbled AND gate must carry four label-sized rows")
            writer.u32(position)
            for row in gate.rows:
                writer.raw(row)
        writer.u32(len(self.output_decode))
        for digest0, digest1 in self.output_decode:
            if len(digest0) != LABEL_BYTES or len(digest1) != LABEL_BYTES:
                raise CircuitError("output decode digests must be label-sized")
            writer.raw(digest0)
            writer.raw(digest1)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "GarbledTables":
        reader = ByteReader(data)
        and_gates: dict[int, GarbledGate] = {}
        for _ in range(reader.u32()):
            position = reader.u32()
            if position in and_gates:
                raise WireFormatError(f"duplicate garbled gate at position {position}")
            rows = [reader.raw(LABEL_BYTES) for _ in range(4)]
            and_gates[position] = GarbledGate(gate_index=position, rows=rows)
        output_decode = [
            (reader.raw(LABEL_BYTES), reader.raw(LABEL_BYTES)) for _ in range(reader.u32())
        ]
        reader.expect_end()
        return cls(and_gates=and_gates, output_decode=output_decode)


@dataclass
class GarblingResult:
    """Garbler-side result: tables to send plus the secret label assignments."""

    tables: GarbledTables
    wire_zero_labels: dict[int, bytes]
    free_xor_offset: bytes

    def labels_for(self, wire: int, value: int) -> bytes:
        zero = self.wire_zero_labels[wire]
        return zero if value == 0 else xor_bytes(zero, self.free_xor_offset)

    def input_labels(self, wires: list[int], bits: list[int]) -> list[bytes]:
        if len(wires) != len(bits):
            raise CircuitError("wire/bit count mismatch when selecting input labels")
        return [self.labels_for(wire, bit) for wire, bit in zip(wires, bits)]

    def label_pairs(self, wires: list[int]) -> list[tuple[bytes, bytes]]:
        """(0-label, 1-label) pairs for the given wires — the OT sender inputs."""
        return [
            (self.wire_zero_labels[wire], xor_bytes(self.wire_zero_labels[wire], self.free_xor_offset))
            for wire in wires
        ]


def _output_digest(label: bytes, wire: int) -> bytes:
    return sha256(b"garble-output", label, wire.to_bytes(4, "big"))[:LABEL_BYTES]


def garble(circuit: Circuit, seed: bytes | None = None) -> GarblingResult:
    """Garble *circuit*; deterministic given *seed*.

    A garbler session draws one secret PRG seed and garbles from it, so its
    snapshot needs only the seed to reproduce every label and table
    bit-identically on restore; ``None`` draws fresh system randomness.
    """
    if seed is None:
        rand = lambda: secure_bytes(LABEL_BYTES)  # noqa: E731 - tiny closure
    else:
        from repro.crypto.prg import Prg

        prg = Prg(seed, domain=b"garble-labels")
        rand = lambda: prg.read(LABEL_BYTES)  # noqa: E731
    offset = bytearray(rand())
    offset[-1] |= 1  # ensure the colour bits of a 0/1 label pair differ
    free_xor_offset = bytes(offset)

    zero_labels: dict[int, bytes] = {}
    for wire in circuit.garbler_inputs + circuit.evaluator_inputs:
        zero_labels[wire] = rand()

    and_gates: dict[int, GarbledGate] = {}
    for position, gate in enumerate(circuit.gates):
        if gate.kind is GateKind.XOR:
            zero_labels[gate.output] = xor_bytes(
                zero_labels[gate.input_a], zero_labels[gate.input_b]
            )
            continue
        if gate.kind is GateKind.NOT:
            # The output 0-label is the input 1-label; evaluation passes the
            # active label through unchanged.
            zero_labels[gate.output] = xor_bytes(zero_labels[gate.input_a], free_xor_offset)
            continue
        # AND gate: build the four-row table ordered by input colour bits.
        zero_labels[gate.output] = rand()
        a0 = zero_labels[gate.input_a]
        b0 = zero_labels[gate.input_b]
        out0 = zero_labels[gate.output]
        rows: list[bytes | None] = [None] * 4
        for value_a in (0, 1):
            label_a = a0 if value_a == 0 else xor_bytes(a0, free_xor_offset)
            for value_b in (0, 1):
                label_b = b0 if value_b == 0 else xor_bytes(b0, free_xor_offset)
                out_value = value_a & value_b
                out_label = out0 if out_value == 0 else xor_bytes(out0, free_xor_offset)
                row_index = (_colour(label_a) << 1) | _colour(label_b)
                pad = _hash_gate(label_a, label_b, position)
                rows[row_index] = xor_bytes(pad, out_label)
        and_gates[position] = GarbledGate(gate_index=position, rows=[row for row in rows if row is not None])
        if len(and_gates[position].rows) != 4:
            raise CircuitError("internal garbling error: colour-bit collision")

    output_decode = []
    for wire in circuit.outputs:
        zero = zero_labels[wire]
        one = xor_bytes(zero, free_xor_offset)
        output_decode.append((_output_digest(zero, wire), _output_digest(one, wire)))

    tables = GarbledTables(and_gates=and_gates, output_decode=output_decode)
    return GarblingResult(tables=tables, wire_zero_labels=zero_labels, free_xor_offset=free_xor_offset)


def evaluate(
    circuit: Circuit,
    tables: GarbledTables,
    garbler_input_labels: list[bytes],
    evaluator_input_labels: list[bytes],
) -> list[bytes]:
    """Evaluate a garbled circuit; returns the active labels of the output wires."""
    if len(garbler_input_labels) != len(circuit.garbler_inputs):
        raise ProtocolAbort("wrong number of garbler input labels")
    if len(evaluator_input_labels) != len(circuit.evaluator_inputs):
        raise ProtocolAbort("wrong number of evaluator input labels")
    active: dict[int, bytes] = {}
    for wire, label in zip(circuit.garbler_inputs, garbler_input_labels):
        active[wire] = label
    for wire, label in zip(circuit.evaluator_inputs, evaluator_input_labels):
        active[wire] = label
    for position, gate in enumerate(circuit.gates):
        if gate.kind is GateKind.XOR:
            active[gate.output] = xor_bytes(active[gate.input_a], active[gate.input_b])
        elif gate.kind is GateKind.NOT:
            active[gate.output] = active[gate.input_a]
        else:
            garbled = tables.and_gates.get(position)
            if garbled is None:
                raise ProtocolAbort(f"missing garbled table for AND gate at position {position}")
            label_a = active[gate.input_a]
            label_b = active[gate.input_b]
            row_index = (_colour(label_a) << 1) | _colour(label_b)
            pad = _hash_gate(label_a, label_b, position)
            active[gate.output] = xor_bytes(pad, garbled.rows[row_index])
    return [active[wire] for wire in circuit.outputs]


def decode_outputs(circuit: Circuit, tables: GarbledTables, output_labels: list[bytes]) -> list[int]:
    """Map output labels to cleartext bits using the decode table.

    Raises :class:`ProtocolAbort` if a label matches neither digest — which is
    what happens if the evaluator tampered with the evaluation or the garbler
    sent inconsistent tables.
    """
    if len(output_labels) != len(circuit.outputs):
        raise ProtocolAbort("wrong number of output labels to decode")
    bits = []
    for wire, label, (digest0, digest1) in zip(circuit.outputs, output_labels, tables.output_decode):
        digest = _output_digest(label, wire)
        if digest == digest0:
            bits.append(0)
        elif digest == digest1:
            bits.append(1)
        else:
            raise ProtocolAbort("output label does not decode to either truth value")
    return bits
