"""The additively homomorphic Ring-LWE cryptosystem ("XPIR-BV", §4.1).

Pretzel replaces Paillier with the Brakerski–Vaikuntanathan scheme as
implemented in the XPIR library.  We implement the additive-only variant over
``R_q = Z_q[x]/(x^n + 1)`` with plaintext modulus ``t = 2**slot_bits``:

* secret key ``s`` — ternary ring element;
* public key ``(p0, p1)`` with ``p1`` uniform and ``p0 = -(p1·s) + t·e``;
* ``Enc(m) = (p0·u + t·e1 + m,  p1·u + t·e2)`` for ternary ``u`` and small
  noise ``e1, e2``;
* ``Dec(c0, c1) = ((c0 + c1·s) mod q, centered) mod t``.

The ``n`` plaintext polynomial coefficients are the packing *slots* of §4.2:
ciphertext addition adds slot-wise, multiplication by an integer constant
scales every slot, and multiplication by the monomial ``x^k`` shifts slots —
this last operation is what the across-row packing and the candidate-topic
protocol (Fig. 5) use to realign and extract dot products.

Performance model (the client hot path of Figs. 6–7): ciphertexts are kept
resident in the **evaluation (NTT) domain**.  Key material is transformed
once at key generation, encryption batches the four fresh samples through one
vectorised forward pass per prime and finishes with pointwise products, and
every homomorphic operation — addition, scalar multiplication, slot shifts,
and the batched dot-product accumulator behind
:meth:`BVScheme.combine_stacked` — is pointwise on int64 arrays with lazy
modular reduction.  Only decryption runs inverse transforms, followed by one
vectorised CRT reconstruction.

Ciphertext size with the default parameters (n = 1024, two 31-bit RNS primes)
is ~16 KB, matching the 16 KB XPIR-BV ciphertexts reported in §4.1.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.crypto.ahe import (
    AHECiphertext,
    AHEKeyPair,
    AHEPublicKey,
    AHEScheme,
    AHESecretKey,
)
from repro.crypto.prg import Prg
from repro.crypto.ringlwe import RingContext, RingPolynomial
from repro.exceptions import NoiseBudgetExceeded, ParameterError, WireFormatError
from repro.utils.rand import secure_bytes
from typing import Sequence


@dataclass(frozen=True)
class BVParameters:
    """Public parameters of the XPIR-BV scheme."""

    ring_degree: int = 1024
    prime_bits: int = 31
    prime_count: int = 2
    slot_bits: int = 32
    noise_bound: int = 4

    def __post_init__(self) -> None:
        if self.ring_degree <= 1 or self.ring_degree & (self.ring_degree - 1):
            raise ParameterError("ring_degree must be a power of two > 1")
        if self.slot_bits <= 0:
            raise ParameterError("slot_bits must be positive")
        total_q_bits = self.prime_bits * self.prime_count
        if self.slot_bits >= total_q_bits - 8:
            raise ParameterError(
                "slot_bits leaves no room for noise under the ciphertext modulus"
            )

    @classmethod
    def test_parameters(cls) -> "BVParameters":
        """Small, fast parameters for unit tests (reduced ring degree)."""
        return cls(ring_degree=256, prime_bits=31, prime_count=2, slot_bits=32, noise_bound=4)


@dataclass
class BVPublic:
    p0: RingPolynomial
    p1: RingPolynomial


@dataclass
class BVSecret:
    s: RingPolynomial


@dataclass
class BVCiphertextPayload:
    c0: RingPolynomial
    c1: RingPolynomial


@dataclass
class BVCiphertextStack:
    """A batch of ciphertexts as dense evaluation-domain int64 arrays.

    ``c0``/``c1`` have shape ``(count, num_primes, n)``; rows are the stacked
    spectra of the individual ciphertexts, in order.  This is the layout the
    vectorised dot-product accumulator indexes per email.
    """

    c0: np.ndarray
    c1: np.ndarray


class BVScheme(AHEScheme):
    """Additive Ring-LWE AHE with coefficient-slot packing."""

    name = "xpir-bv"

    def __init__(self, parameters: BVParameters | None = None) -> None:
        self.parameters = parameters or BVParameters()
        self.ring = RingContext.create(
            ring_degree=self.parameters.ring_degree,
            prime_bits=self.parameters.prime_bits,
            prime_count=self.parameters.prime_count,
        )
        self._plain_modulus = 1 << self.parameters.slot_bits
        # t reduced per prime, shaped for broadcasting against (primes, n).
        self._t_column = self.ring.reduce_scalar(self._plain_modulus)

    # -- AHEScheme properties ------------------------------------------------
    @property
    def slot_bits(self) -> int:
        return self.parameters.slot_bits

    @property
    def num_slots(self) -> int:
        return self.parameters.ring_degree

    @property
    def supports_slot_shift(self) -> bool:
        return True

    @property
    def supports_batched_accumulation(self) -> bool:
        return True

    # -- key management --------------------------------------------------------
    def generate_keypair(self, seed: bytes | None = None) -> AHEKeyPair:
        """Generate a key pair.

        When *seed* is supplied, the public uniform element ``p1`` is derived
        from it deterministically, implementing the jointly-randomised
        parameter generation of §3.3 footnote 3 (both parties contribute to
        the seed via DH, so neither controls ``p1``).  The secret key and the
        noise are always drawn from fresh local randomness.
        """
        t = self._plain_modulus
        if seed is None:
            p1 = RingPolynomial.sample_uniform(self.ring)
        else:
            p1 = RingPolynomial.sample_uniform(self.ring, Prg(seed, domain=b"bv-public-a"))
        s = RingPolynomial.sample_ternary(self.ring)
        noise = RingPolynomial.sample_noise(self.ring, self.parameters.noise_bound)
        p0 = p1.multiply(s).negate().add(noise.scalar_multiply(t))
        # Pin the evaluation-domain forms now: every later encryption and
        # decryption reuses these spectra instead of re-running forward NTTs.
        p0.spectra
        p1.spectra
        s.spectra
        public = BVPublic(p0=p0, p1=p1)
        public_size = 2 * p0.serialized_size_bytes()
        return AHEKeyPair(
            public=AHEPublicKey(self.name, public, public_size),
            secret=AHESecretKey(self.name, BVSecret(s=s)),
        )

    # -- encryption / decryption ------------------------------------------------
    def encrypt_slots(
        self, public_key: AHEPublicKey, values: Sequence[int], prg: Prg | None = None
    ) -> AHECiphertext:
        """Encrypt one slot vector.

        When *prg* is supplied, the encryption randomness is drawn from that
        shared stream in a fixed order — ``n`` bytes of ternary ``u``, then
        ``2n`` bytes each for ``e1`` and ``e2`` — which is exactly the
        per-ciphertext chunk layout of :meth:`encrypt_slots_many`; the batched
        path is pinned bit-identical to a loop over this method on the same
        stream.  With ``prg=None`` each sample draws fresh local randomness.
        """
        public: BVPublic = public_key.payload
        checked = self._check_slot_values(values)
        ring = self.ring
        primes_column = ring.primes_column
        # from_int_coefficients vectorises the per-prime reduction and falls
        # back to exact Python arithmetic for slot values beyond int64.
        message = RingPolynomial.from_int_coefficients(ring, checked).residues
        u = RingPolynomial.sample_ternary(ring, prg)
        e1 = RingPolynomial.sample_noise(ring, self.parameters.noise_bound, prg)
        e2 = RingPolynomial.sample_noise(ring, self.parameters.noise_bound, prg)
        # The NTT is linear mod each prime, so ``t·e1 + m`` and ``t·e2`` fold
        # in the coefficient domain first: one batched forward pass over
        # *three* fresh polynomials instead of four, identical output.
        t_column = self._t_column
        a = (t_column * e1.residues % primes_column + message) % primes_column
        b = t_column * e2.residues % primes_column
        stacked = np.stack([u.residues, a, b])
        u_s, a_s, b_s = ring.forward_transform(stacked)
        c0 = (public.p0.spectra * u_s % primes_column + a_s) % primes_column
        c1 = (public.p1.spectra * u_s % primes_column + b_s) % primes_column
        payload = BVCiphertextPayload(
            c0=RingPolynomial.from_spectra(ring, c0),
            c1=RingPolynomial.from_spectra(ring, c1),
        )
        return AHECiphertext(self.name, payload, self.ciphertext_size_bytes())

    def encrypt_slots_many(
        self,
        public_key: AHEPublicKey,
        vectors: Sequence[Sequence[int]],
        prg: Prg | None = None,
    ) -> list[AHECiphertext]:
        """Encrypt ``B`` slot vectors with one stacked ``(3B, primes, n)`` NTT pass.

        This is the ciphertext-fabrication analogue of the batched decrypt:
        all randomness for the batch is one bulk read (per-ciphertext chunks
        of ``5n`` bytes: ``n`` ternary + ``2n`` + ``2n`` noise, matching
        :meth:`encrypt_slots` on a shared stream byte for byte), the ternary
        and noise interpretation is one vectorised pass over the whole block,
        and the fresh polynomials of the batch go through a single stacked
        forward transform.  *vectors* may be a ``(B, ≤n)`` integer ndarray —
        the fabrication hot paths pass their noise matrices directly, skipping
        per-value Python validation.  The per-ciphertext outputs are
        bit-identical to an :meth:`encrypt_slots` loop on the same stream.
        """
        if len(vectors) == 0:
            return []
        public: BVPublic = public_key.payload
        ring = self.ring
        n = ring.n
        batch = len(vectors)
        primes_column = ring.primes_column
        messages = self._message_residues_many(vectors)
        # One randomness block for the whole batch; chunk b serves ciphertext
        # b.  Without a caller stream the bytes come straight from the OS
        # CSPRNG (one cheap bulk read); a caller-supplied PRG replays the
        # exact per-ciphertext layout of :meth:`encrypt_slots`.
        chunk = 5 * n
        raw = secure_bytes(chunk * batch) if prg is None else prg.read(chunk * batch)
        block = np.frombuffer(raw, dtype=np.uint8).reshape(batch, chunk)
        bound = self.parameters.noise_bound
        spread = np.uint16(2 * bound + 1)
        u_signed = (block[:, :n] % np.uint8(3)).astype(np.int64) - 1
        e1_raw = np.ascontiguousarray(block[:, n : 3 * n]).view(">u2")
        e2_raw = np.ascontiguousarray(block[:, 3 * n :]).view(">u2")
        e1_signed = (e1_raw % spread).astype(np.int64) - bound
        e2_signed = (e2_raw % spread).astype(np.int64) - bound
        # (B, n) signed vectors -> (B, primes, n) residues.  ``t·e + m`` folds
        # in the coefficient domain (the NTT is linear mod each prime), so the
        # stacked forward pass covers 3B fresh polynomials, not 4B.
        t_column = self._t_column
        e1_res = e1_signed[:, None, :] % primes_column
        e2_res = e2_signed[:, None, :] % primes_column
        stacked = np.concatenate(
            [
                u_signed[:, None, :] % primes_column,
                (t_column * e1_res % primes_column + messages) % primes_column,
                t_column * e2_res % primes_column,
            ]
        )
        transformed = ring.forward_transform(stacked)
        u_s = transformed[:batch]
        a_s = transformed[batch : 2 * batch]
        b_s = transformed[2 * batch :]
        c0 = (public.p0.spectra * u_s % primes_column + a_s) % primes_column
        c1 = (public.p1.spectra * u_s % primes_column + b_s) % primes_column
        size = self.ciphertext_size_bytes()
        return [
            AHECiphertext(
                self.name,
                BVCiphertextPayload(
                    c0=RingPolynomial.from_spectra(ring, c0[b]),
                    c1=RingPolynomial.from_spectra(ring, c1[b]),
                ),
                size,
            )
            for b in range(batch)
        ]

    def _message_residues_many(self, vectors) -> np.ndarray:
        """Per-prime message residues for a batch, shape ``(B, primes, n)``.

        A ``(B, ≤n)`` integer ndarray takes a fully vectorised path (one range
        check, one broadcast reduction); anything else runs the per-vector
        validation and reduction of :meth:`encrypt_slots`.
        """
        ring = self.ring
        if isinstance(vectors, np.ndarray):
            if vectors.ndim != 2 or vectors.shape[1] > ring.n:
                raise ParameterError(
                    f"slot matrix of shape {vectors.shape} does not fit "
                    f"(batch, <= {ring.n}) slots"
                )
            if not np.issubdtype(vectors.dtype, np.integer):
                raise ParameterError("slot matrix must have an integer dtype")
            if vectors.size and (
                int(vectors.min()) < 0 or int(vectors.max()) >= self.slot_modulus
            ):
                raise ParameterError(f"slot value outside [0, 2^{self.slot_bits})")
            width = vectors.shape[1]
            residues = np.zeros((len(vectors), len(ring.primes), ring.n), dtype=np.int64)
            residues[:, :, :width] = vectors.astype(np.int64)[:, None, :] % ring.primes_column
            return residues
        return np.stack(
            [
                RingPolynomial.from_int_coefficients(ring, self._check_slot_values(v)).residues
                for v in vectors
            ]
        )

    def _phase_slots(self, phase_residues: np.ndarray) -> list:
        """CRT-reconstruct decryption phases (shape ``(..., primes, n)``) to slots."""
        t = self._plain_modulus
        centered = self.ring.crt_reconstruct_array(phase_residues)
        budget = self.ring.modulus // 2
        if (np.abs(centered) >= budget).any():
            raise NoiseBudgetExceeded("BV ciphertext noise exceeded q/2 during decryption")
        return (centered % t).tolist()

    def decrypt_slots(self, keypair: AHEKeyPair, ciphertext: AHECiphertext) -> list[int]:
        secret: BVSecret = keypair.secret.payload
        payload: BVCiphertextPayload = ciphertext.payload
        primes_column = self.ring.primes_column
        phase = (payload.c0.spectra + payload.c1.spectra * secret.s.spectra % primes_column) % primes_column
        return self._phase_slots(self.ring.inverse_transform(phase))

    def decrypt_slots_many(
        self, keypair: AHEKeyPair, ciphertexts: Sequence[AHECiphertext]
    ) -> list[list[int]]:
        """Decrypt a batch in one vectorised pass (provider hot path, Figs. 7/10)."""
        if not ciphertexts:
            return []
        secret: BVSecret = keypair.secret.payload
        stack = self.stack_ciphertexts(ciphertexts)
        primes_column = self.ring.primes_column
        phases = (stack.c0 + stack.c1 * secret.s.spectra % primes_column) % primes_column
        return self._phase_slots(self.ring.inverse_transform(phases))

    # -- homomorphic operations ----------------------------------------------------
    def add(self, left: AHECiphertext, right: AHECiphertext) -> AHECiphertext:
        lp: BVCiphertextPayload = left.payload
        rp: BVCiphertextPayload = right.payload
        payload = BVCiphertextPayload(c0=lp.c0.add(rp.c0), c1=lp.c1.add(rp.c1))
        return AHECiphertext(self.name, payload, self.ciphertext_size_bytes())

    def scalar_mul(self, ciphertext: AHECiphertext, scalar: int) -> AHECiphertext:
        if scalar < 0:
            raise ParameterError("scalar must be non-negative")
        payload: BVCiphertextPayload = ciphertext.payload
        result = BVCiphertextPayload(
            c0=payload.c0.scalar_multiply(scalar),
            c1=payload.c1.scalar_multiply(scalar),
        )
        return AHECiphertext(self.name, result, self.ciphertext_size_bytes())

    def add_many(
        self, lefts: Sequence[AHECiphertext], rights: Sequence[AHECiphertext]
    ) -> list[AHECiphertext]:
        """Pairwise addition as one stacked ``(B, primes, n)`` array pass."""
        if len(lefts) != len(rights):
            raise ParameterError("add_many requires equal-length batches")
        if not lefts:
            return []
        left_stack = self.stack_ciphertexts(lefts)
        right_stack = self.stack_ciphertexts(rights)
        primes_column = self.ring.primes_column
        c0 = (left_stack.c0 + right_stack.c0) % primes_column
        c1 = (left_stack.c1 + right_stack.c1) % primes_column
        return [self._wrap_spectra(c0[b], c1[b]) for b in range(len(lefts))]

    def extract_shift_many(
        self,
        ciphertexts: Sequence[AHECiphertext],
        indices: Sequence[int],
        shifts: Sequence[int],
    ) -> list[AHECiphertext]:
        """Gather + shift a whole candidate batch in one spectrum-domain pass.

        The sources are stacked once, the gather is one fancy-index, and all
        shifts apply as a single batched multiply against the plan's cached
        monomial spectra — no per-candidate Python work beyond wrapping the
        result rows.  Bit-identical to the base-class :meth:`shift_up` loop.
        """
        if len(indices) != len(shifts):
            raise ParameterError("extract_shift_many requires equal-length indices/shifts")
        if not indices:
            return []
        for shift in shifts:
            if shift < 0:
                raise ParameterError("shift amount must be non-negative")
        stack = self.stack_ciphertexts(ciphertexts)
        idx = np.asarray(indices, dtype=np.intp)
        mono = self.ring.monomial_spectra_many(list(shifts))
        primes_column = self.ring.primes_column
        c0 = stack.c0[idx] * mono % primes_column
        c1 = stack.c1[idx] * mono % primes_column
        return [self._wrap_spectra(c0[b], c1[b]) for b in range(len(indices))]

    def shift_up(self, ciphertext: AHECiphertext, positions: int) -> AHECiphertext:
        """Move slot ``i`` to slot ``i + positions`` via multiplication by ``x^positions``.

        Slots pushed past the top wrap to the bottom *negated* (``x^n = -1``);
        callers must treat the low slots as garbage after a shift, exactly as
        the across-row packing protocol does (§4.2).
        """
        if positions < 0:
            raise ParameterError("shift amount must be non-negative")
        payload: BVCiphertextPayload = ciphertext.payload
        result = BVCiphertextPayload(
            c0=payload.c0.monomial_multiply(positions),
            c1=payload.c1.monomial_multiply(positions),
        )
        return AHECiphertext(self.name, result, self.ciphertext_size_bytes())

    # -- batched accumulation (the client dot-product hot path, §4.2) ------------
    def stack_ciphertexts(self, ciphertexts: Sequence[AHECiphertext]) -> BVCiphertextStack:
        """Stack ciphertext spectra into ``(count, primes, n)`` arrays."""
        c0 = np.stack([ct.payload.c0.spectra for ct in ciphertexts])
        c1 = np.stack([ct.payload.c1.spectra for ct in ciphertexts])
        return BVCiphertextStack(c0=c0, c1=c1)

    def _wrap_spectra(self, c0: np.ndarray, c1: np.ndarray) -> AHECiphertext:
        payload = BVCiphertextPayload(
            c0=RingPolynomial.from_spectra(self.ring, c0),
            c1=RingPolynomial.from_spectra(self.ring, c1),
        )
        return AHECiphertext(self.name, payload, self.ciphertext_size_bytes())

    def combine_stacked(
        self, stack: BVCiphertextStack, rows: Sequence[int], scalars: Sequence[int]
    ) -> AHECiphertext:
        """Compute ``Σ_i scalars[i] · stack[rows[i]]`` in one vectorised pass.

        Scalars are reduced per prime once; the accumulation then runs in raw
        int64 with *lazy* modular reduction — partial sums are reduced only
        when another chunk could overflow 63 bits, which for the small
        frequencies of Fig. 3's quantisation means exactly once, at the end.
        """
        if len(rows) != len(scalars):
            raise ParameterError("rows and scalars must have equal length")
        primes_column = self.ring.primes_column
        num_primes, n = len(self.ring.primes), self.ring.n
        if not rows:
            zeros = np.zeros((num_primes, n), dtype=np.int64)
            return self._wrap_spectra(zeros, zeros.copy())
        row_index = np.asarray(rows, dtype=np.intp)
        # (terms, primes): each scalar reduced modulo each prime.
        reduced = np.asarray(
            [[scalar % prime for prime in self.ring.primes] for scalar in scalars],
            dtype=np.int64,
        )
        # Largest unreduced per-term product; spectra values are < 2^31.
        per_term = int(reduced.max(initial=0)) * ((1 << 31) - 1)
        chunk = max(1, ((1 << 62) - 1) // max(1, per_term))
        acc0 = np.zeros((num_primes, n), dtype=np.int64)
        acc1 = np.zeros((num_primes, n), dtype=np.int64)
        for start in range(0, len(rows), chunk):
            idx = row_index[start : start + chunk]
            weights = reduced[start : start + chunk]
            acc0 = (acc0 + np.einsum("mkn,mk->kn", stack.c0[idx], weights)) % primes_column
            acc1 = (acc1 + np.einsum("mkn,mk->kn", stack.c1[idx], weights)) % primes_column
        return self._wrap_spectra(acc0, acc1)

    def combine_stacked_shifted(
        self, stack: BVCiphertextStack, terms: Sequence[tuple[int, int, int]]
    ) -> AHECiphertext:
        """Compute ``Σ scalar · x^shift · stack[row]`` for ``(row, scalar, shift)`` terms.

        All terms hitting the same stacked ciphertext ``C`` are folded into a
        single combining polynomial ``P(x) = Σ scalar · x^shift``, so the whole
        shift-and-add chain of §4.2 collapses to one spectrum-domain product
        ``C · P`` per distinct ciphertext: one forward NTT of ``P`` (or a cached
        monomial spectrum when ``P`` is a lone monomial) replaces one shift and
        one addition *per feature*.
        """
        primes_column = self.ring.primes_column
        num_primes, n = len(self.ring.primes), self.ring.n
        combining: dict[int, dict[int, int]] = {}
        for row, scalar, shift in terms:
            if not 0 <= shift < n:
                raise ParameterError("combining shifts must lie in [0, ring degree)")
            poly = combining.setdefault(row, {})
            poly[shift] = poly.get(shift, 0) + scalar
        acc0 = np.zeros((num_primes, n), dtype=np.int64)
        acc1 = np.zeros((num_primes, n), dtype=np.int64)
        pending = 0
        for row, poly in combining.items():
            if len(poly) == 1:
                ((shift, scalar),) = poly.items()
                mono = self.ring.monomial_spectra(shift)
                spectrum = mono * self.ring.reduce_scalar(scalar) % primes_column
            else:
                coefficients = np.zeros((num_primes, n), dtype=np.int64)
                for shift, scalar in poly.items():
                    coefficients[:, shift] = (
                        np.array([scalar % prime for prime in self.ring.primes], dtype=np.int64)
                    )
                spectrum = self.ring.forward_transform(coefficients)
            # Each product is reduced below 2^31, so up to 2^32 terms can
            # accumulate lazily before a reduction is needed.
            acc0 += stack.c0[row] * spectrum % primes_column
            acc1 += stack.c1[row] * spectrum % primes_column
            pending += 1
            if pending >= (1 << 31):
                acc0 %= primes_column
                acc1 %= primes_column
                pending = 0
        acc0 %= primes_column
        acc1 %= primes_column
        return self._wrap_spectra(acc0, acc1)

    # -- wire codec ---------------------------------------------------------------------
    _WIRE_HEADER = ">IB"  # ring degree (u32), RNS prime count (u8)

    def serialize_ciphertext(self, ciphertext: AHECiphertext) -> bytes:
        """Exact wire bytes: header + the (c0, c1) evaluation-domain residues.

        Ciphertexts are NTT-resident (see the module docstring), and the NTT
        for a fixed parameter set is a bijection both parties share, so the
        spectra *are* the canonical wire form — serialization never pays a
        transform.  Each residue is a u32 (< 2^31 prime), so the encoding is
        ``5 + 8·primes·n`` bytes and round-trips bit-identically.
        """
        if ciphertext.scheme_name != self.name:
            raise ParameterError(f"cannot serialize a {ciphertext.scheme_name!r} ciphertext")
        payload: BVCiphertextPayload = ciphertext.payload
        header = struct.pack(self._WIRE_HEADER, self.ring.n, len(self.ring.primes))
        return (
            header
            + payload.c0.spectra.astype(">u4").tobytes()
            + payload.c1.spectra.astype(">u4").tobytes()
        )

    def deserialize_ciphertext(
        self, data: bytes, public_key: AHEPublicKey | None = None
    ) -> AHECiphertext:
        if len(data) != self.ciphertext_size_bytes():
            raise WireFormatError(
                f"BV ciphertext frame is {len(data)} bytes, expected "
                f"{self.ciphertext_size_bytes()}"
            )
        n, num_primes = struct.unpack_from(self._WIRE_HEADER, data)
        if n != self.ring.n or num_primes != len(self.ring.primes):
            raise WireFormatError(
                f"BV ciphertext parameters (n={n}, primes={num_primes}) do not match "
                f"the scheme (n={self.ring.n}, primes={len(self.ring.primes)})"
            )
        body = np.frombuffer(data, dtype=">u4", offset=struct.calcsize(self._WIRE_HEADER))
        halves = body.astype(np.int64).reshape(2, num_primes, n)
        if (halves >= self.ring.primes_column).any():
            raise WireFormatError("BV ciphertext residue exceeds its RNS prime")
        payload = BVCiphertextPayload(
            c0=RingPolynomial.from_spectra(self.ring, halves[0]),
            c1=RingPolynomial.from_spectra(self.ring, halves[1]),
        )
        return AHECiphertext(self.name, payload, self.ciphertext_size_bytes())

    # -- sizes -------------------------------------------------------------------------
    def ciphertext_size_bytes(self) -> int:
        """Exact serialized size: the wire-codec header plus 2·primes·n u32 residues."""
        return struct.calcsize(self._WIRE_HEADER) + 8 * len(self.ring.primes) * self.ring.n

    # -- misc ---------------------------------------------------------------------------
    def encrypt_zero(self, public_key: AHEPublicKey) -> AHECiphertext:
        """Fresh encryption of the all-zero slot vector (used for re-randomisation)."""
        return self.encrypt_slots(public_key, [])
