"""The additively homomorphic Ring-LWE cryptosystem ("XPIR-BV", §4.1).

Pretzel replaces Paillier with the Brakerski–Vaikuntanathan scheme as
implemented in the XPIR library.  We implement the additive-only variant over
``R_q = Z_q[x]/(x^n + 1)`` with plaintext modulus ``t = 2**slot_bits``:

* secret key ``s`` — ternary ring element;
* public key ``(p0, p1)`` with ``p1`` uniform and ``p0 = -(p1·s) + t·e``;
* ``Enc(m) = (p0·u + t·e1 + m,  p1·u + t·e2)`` for ternary ``u`` and small
  noise ``e1, e2``;
* ``Dec(c0, c1) = ((c0 + c1·s) mod q, centered) mod t``.

The ``n`` plaintext polynomial coefficients are the packing *slots* of §4.2:
ciphertext addition adds slot-wise, multiplication by an integer constant
scales every slot, and multiplication by the monomial ``x^k`` shifts slots —
this last operation is what the across-row packing and the candidate-topic
protocol (Fig. 5) use to realign and extract dot products.

Ciphertext size with the default parameters (n = 1024, two 31-bit RNS primes)
is ~16 KB, matching the 16 KB XPIR-BV ciphertexts reported in §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ahe import (
    AHECiphertext,
    AHEKeyPair,
    AHEPublicKey,
    AHEScheme,
    AHESecretKey,
)
from repro.crypto.prg import Prg
from repro.crypto.ringlwe import RingContext, RingPolynomial
from repro.exceptions import NoiseBudgetExceeded, ParameterError
from repro.utils.rand import secure_bytes
from typing import Sequence


@dataclass(frozen=True)
class BVParameters:
    """Public parameters of the XPIR-BV scheme."""

    ring_degree: int = 1024
    prime_bits: int = 31
    prime_count: int = 2
    slot_bits: int = 32
    noise_bound: int = 4

    def __post_init__(self) -> None:
        if self.ring_degree <= 1 or self.ring_degree & (self.ring_degree - 1):
            raise ParameterError("ring_degree must be a power of two > 1")
        if self.slot_bits <= 0:
            raise ParameterError("slot_bits must be positive")
        total_q_bits = self.prime_bits * self.prime_count
        if self.slot_bits >= total_q_bits - 8:
            raise ParameterError(
                "slot_bits leaves no room for noise under the ciphertext modulus"
            )

    @classmethod
    def test_parameters(cls) -> "BVParameters":
        """Small, fast parameters for unit tests (reduced ring degree)."""
        return cls(ring_degree=256, prime_bits=31, prime_count=2, slot_bits=32, noise_bound=4)


@dataclass
class BVPublic:
    p0: RingPolynomial
    p1: RingPolynomial


@dataclass
class BVSecret:
    s: RingPolynomial


@dataclass
class BVCiphertextPayload:
    c0: RingPolynomial
    c1: RingPolynomial


class BVScheme(AHEScheme):
    """Additive Ring-LWE AHE with coefficient-slot packing."""

    name = "xpir-bv"

    def __init__(self, parameters: BVParameters | None = None) -> None:
        self.parameters = parameters or BVParameters()
        self.ring = RingContext.create(
            ring_degree=self.parameters.ring_degree,
            prime_bits=self.parameters.prime_bits,
            prime_count=self.parameters.prime_count,
        )
        self._plain_modulus = 1 << self.parameters.slot_bits

    # -- AHEScheme properties ------------------------------------------------
    @property
    def slot_bits(self) -> int:
        return self.parameters.slot_bits

    @property
    def num_slots(self) -> int:
        return self.parameters.ring_degree

    @property
    def supports_slot_shift(self) -> bool:
        return True

    # -- key management --------------------------------------------------------
    def generate_keypair(self, seed: bytes | None = None) -> AHEKeyPair:
        """Generate a key pair.

        When *seed* is supplied, the public uniform element ``p1`` is derived
        from it deterministically, implementing the jointly-randomised
        parameter generation of §3.3 footnote 3 (both parties contribute to
        the seed via DH, so neither controls ``p1``).  The secret key and the
        noise are always drawn from fresh local randomness.
        """
        t = self._plain_modulus
        if seed is None:
            p1 = RingPolynomial.sample_uniform(self.ring)
        else:
            p1 = RingPolynomial.sample_uniform(self.ring, Prg(seed, domain=b"bv-public-a"))
        s = RingPolynomial.sample_ternary(self.ring)
        noise = RingPolynomial.sample_noise(self.ring, self.parameters.noise_bound)
        p0 = p1.multiply(s).negate().add(noise.scalar_multiply(t))
        public = BVPublic(p0=p0, p1=p1)
        public_size = 2 * p0.serialized_size_bytes()
        return AHEKeyPair(
            public=AHEPublicKey(self.name, public, public_size),
            secret=AHESecretKey(self.name, BVSecret(s=s)),
        )

    # -- encryption / decryption ------------------------------------------------
    def encrypt_slots(self, public_key: AHEPublicKey, values: Sequence[int]) -> AHECiphertext:
        public: BVPublic = public_key.payload
        checked = self._check_slot_values(values)
        t = self._plain_modulus
        message = RingPolynomial.from_int_coefficients(self.ring, checked)
        u = RingPolynomial.sample_ternary(self.ring)
        e1 = RingPolynomial.sample_noise(self.ring, self.parameters.noise_bound)
        e2 = RingPolynomial.sample_noise(self.ring, self.parameters.noise_bound)
        c0 = public.p0.multiply(u).add(e1.scalar_multiply(t)).add(message)
        c1 = public.p1.multiply(u).add(e2.scalar_multiply(t))
        payload = BVCiphertextPayload(c0=c0, c1=c1)
        return AHECiphertext(self.name, payload, self.ciphertext_size_bytes())

    def decrypt_slots(self, keypair: AHEKeyPair, ciphertext: AHECiphertext) -> list[int]:
        secret: BVSecret = keypair.secret.payload
        payload: BVCiphertextPayload = ciphertext.payload
        t = self._plain_modulus
        phase = payload.c0.add(payload.c1.multiply(secret.s))
        centered = phase.to_centered_coefficients()
        # A correct ciphertext satisfies |t*E + m| < q/2; if accumulated noise
        # has come close to the modulus the centered coefficients are
        # meaningless, so flag blatant overflows instead of returning garbage.
        budget = self.ring.modulus // 2
        slots = []
        for coefficient in centered:
            if abs(coefficient) >= budget:
                raise NoiseBudgetExceeded("BV ciphertext noise exceeded q/2 during decryption")
            slots.append(coefficient % t)
        return slots

    # -- homomorphic operations ----------------------------------------------------
    def add(self, left: AHECiphertext, right: AHECiphertext) -> AHECiphertext:
        lp: BVCiphertextPayload = left.payload
        rp: BVCiphertextPayload = right.payload
        payload = BVCiphertextPayload(c0=lp.c0.add(rp.c0), c1=lp.c1.add(rp.c1))
        return AHECiphertext(self.name, payload, self.ciphertext_size_bytes())

    def scalar_mul(self, ciphertext: AHECiphertext, scalar: int) -> AHECiphertext:
        if scalar < 0:
            raise ParameterError("scalar must be non-negative")
        payload: BVCiphertextPayload = ciphertext.payload
        result = BVCiphertextPayload(
            c0=payload.c0.scalar_multiply(scalar),
            c1=payload.c1.scalar_multiply(scalar),
        )
        return AHECiphertext(self.name, result, self.ciphertext_size_bytes())

    def shift_up(self, ciphertext: AHECiphertext, positions: int) -> AHECiphertext:
        """Move slot ``i`` to slot ``i + positions`` via multiplication by ``x^positions``.

        Slots pushed past the top wrap to the bottom *negated* (``x^n = -1``);
        callers must treat the low slots as garbage after a shift, exactly as
        the across-row packing protocol does (§4.2).
        """
        if positions < 0:
            raise ParameterError("shift amount must be non-negative")
        payload: BVCiphertextPayload = ciphertext.payload
        result = BVCiphertextPayload(
            c0=payload.c0.monomial_multiply(positions),
            c1=payload.c1.monomial_multiply(positions),
        )
        return AHECiphertext(self.name, result, self.ciphertext_size_bytes())

    # -- sizes -------------------------------------------------------------------------
    def ciphertext_size_bytes(self) -> int:
        coefficient_bits = self.ring.modulus_bits
        return 2 * ((self.parameters.ring_degree * coefficient_bits + 7) // 8)

    # -- misc ---------------------------------------------------------------------------
    def encrypt_zero(self, public_key: AHEPublicKey) -> AHECiphertext:
        """Fresh encryption of the all-zero slot vector (used for re-randomisation)."""
        return self.encrypt_slots(public_key, [])
