"""The additively homomorphic Ring-LWE cryptosystem ("XPIR-BV", §4.1).

Pretzel replaces Paillier with the Brakerski–Vaikuntanathan scheme as
implemented in the XPIR library.  We implement the additive-only variant over
``R_q = Z_q[x]/(x^n + 1)`` with plaintext modulus ``t = 2**slot_bits``:

* secret key ``s`` — ternary ring element;
* public key ``(p0, p1)`` with ``p1`` uniform and ``p0 = -(p1·s) + t·e``;
* ``Enc(m) = (p0·u + t·e1 + m,  p1·u + t·e2)`` for ternary ``u`` and small
  noise ``e1, e2``;
* ``Dec(c0, c1) = ((c0 + c1·s) mod q, centered) mod t``.

The ``n`` plaintext polynomial coefficients are the packing *slots* of §4.2:
ciphertext addition adds slot-wise, multiplication by an integer constant
scales every slot, and multiplication by the monomial ``x^k`` shifts slots —
this last operation is what the across-row packing and the candidate-topic
protocol (Fig. 5) use to realign and extract dot products.

Performance model (the client hot path of Figs. 6–7): ciphertexts are kept
resident in the **evaluation (NTT) domain**.  Key material is transformed
once at key generation, encryption batches the four fresh samples through one
vectorised forward pass per prime and finishes with pointwise products, and
every homomorphic operation — addition, scalar multiplication, slot shifts,
and the batched dot-product accumulator behind
:meth:`BVScheme.combine_stacked` — is pointwise on int64 arrays with lazy
modular reduction.  Only decryption runs inverse transforms, followed by one
vectorised CRT reconstruction.

Ciphertext size with the default parameters (n = 1024, two 31-bit RNS primes)
is ~16 KB, matching the 16 KB XPIR-BV ciphertexts reported in §4.1.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.crypto.ahe import (
    AHECiphertext,
    AHEKeyPair,
    AHEPublicKey,
    AHEScheme,
    AHESecretKey,
)
from repro.crypto.prg import Prg
from repro.crypto.ringlwe import RingContext, RingPolynomial
from repro.exceptions import NoiseBudgetExceeded, ParameterError, WireFormatError
from repro.utils.rand import secure_bytes
from typing import Sequence


@dataclass(frozen=True)
class BVParameters:
    """Public parameters of the XPIR-BV scheme."""

    ring_degree: int = 1024
    prime_bits: int = 31
    prime_count: int = 2
    slot_bits: int = 32
    noise_bound: int = 4

    def __post_init__(self) -> None:
        if self.ring_degree <= 1 or self.ring_degree & (self.ring_degree - 1):
            raise ParameterError("ring_degree must be a power of two > 1")
        if self.slot_bits <= 0:
            raise ParameterError("slot_bits must be positive")
        total_q_bits = self.prime_bits * self.prime_count
        if self.slot_bits >= total_q_bits - 8:
            raise ParameterError(
                "slot_bits leaves no room for noise under the ciphertext modulus"
            )

    @classmethod
    def test_parameters(cls) -> "BVParameters":
        """Small, fast parameters for unit tests (reduced ring degree)."""
        return cls(ring_degree=256, prime_bits=31, prime_count=2, slot_bits=32, noise_bound=4)


@dataclass
class BVPublic:
    p0: RingPolynomial
    p1: RingPolynomial


@dataclass
class BVSecret:
    s: RingPolynomial


@dataclass
class BVCiphertextPayload:
    c0: RingPolynomial
    c1: RingPolynomial


@dataclass
class BVCiphertextStack:
    """A batch of ciphertexts as dense evaluation-domain int64 arrays.

    ``c0``/``c1`` have shape ``(count, num_primes, n)``; rows are the stacked
    spectra of the individual ciphertexts, in order.  This is the layout the
    vectorised dot-product accumulator indexes per email.
    """

    c0: np.ndarray
    c1: np.ndarray


class BVScheme(AHEScheme):
    """Additive Ring-LWE AHE with coefficient-slot packing."""

    name = "xpir-bv"

    def __init__(self, parameters: BVParameters | None = None) -> None:
        self.parameters = parameters or BVParameters()
        self.ring = RingContext.create(
            ring_degree=self.parameters.ring_degree,
            prime_bits=self.parameters.prime_bits,
            prime_count=self.parameters.prime_count,
        )
        self._plain_modulus = 1 << self.parameters.slot_bits
        # t reduced per prime, shaped for broadcasting against (primes, n).
        self._t_column = self.ring.reduce_scalar(self._plain_modulus)

    # -- AHEScheme properties ------------------------------------------------
    @property
    def slot_bits(self) -> int:
        return self.parameters.slot_bits

    @property
    def num_slots(self) -> int:
        return self.parameters.ring_degree

    @property
    def supports_slot_shift(self) -> bool:
        return True

    @property
    def supports_batched_accumulation(self) -> bool:
        return True

    # -- key management --------------------------------------------------------
    def generate_keypair(self, seed: bytes | None = None) -> AHEKeyPair:
        """Generate a key pair.

        When *seed* is supplied, the public uniform element ``p1`` is derived
        from it deterministically, implementing the jointly-randomised
        parameter generation of §3.3 footnote 3 (both parties contribute to
        the seed via DH, so neither controls ``p1``).  The secret key and the
        noise are always drawn from fresh local randomness.
        """
        t = self._plain_modulus
        if seed is None:
            p1 = RingPolynomial.sample_uniform(self.ring)
        else:
            p1 = RingPolynomial.sample_uniform(self.ring, Prg(seed, domain=b"bv-public-a"))
        s = RingPolynomial.sample_ternary(self.ring)
        noise = RingPolynomial.sample_noise(self.ring, self.parameters.noise_bound)
        p0 = p1.multiply(s).negate().add(noise.scalar_multiply(t))
        # Pin the evaluation-domain forms now: every later encryption and
        # decryption reuses these spectra instead of re-running forward NTTs.
        p0.spectra
        p1.spectra
        s.spectra
        public = BVPublic(p0=p0, p1=p1)
        public_size = 2 * p0.serialized_size_bytes()
        return AHEKeyPair(
            public=AHEPublicKey(self.name, public, public_size),
            secret=AHESecretKey(self.name, BVSecret(s=s)),
        )

    # -- encryption / decryption ------------------------------------------------
    def encrypt_slots(self, public_key: AHEPublicKey, values: Sequence[int]) -> AHECiphertext:
        public: BVPublic = public_key.payload
        checked = self._check_slot_values(values)
        ring = self.ring
        primes_column = ring.primes_column
        # from_int_coefficients vectorises the per-prime reduction and falls
        # back to exact Python arithmetic for slot values beyond int64.
        message = RingPolynomial.from_int_coefficients(ring, checked).residues
        u = RingPolynomial.sample_ternary(ring)
        e1 = RingPolynomial.sample_noise(ring, self.parameters.noise_bound)
        e2 = RingPolynomial.sample_noise(ring, self.parameters.noise_bound)
        # One batched forward pass per prime over the four fresh polynomials.
        stacked = np.stack([u.residues, e1.residues, e2.residues, message])
        u_s, e1_s, e2_s, m_s = ring.forward_transform(stacked)
        t_column = self._t_column
        c0 = (public.p0.spectra * u_s % primes_column + t_column * e1_s % primes_column + m_s) % primes_column
        c1 = (public.p1.spectra * u_s % primes_column + t_column * e2_s % primes_column) % primes_column
        payload = BVCiphertextPayload(
            c0=RingPolynomial.from_spectra(ring, c0),
            c1=RingPolynomial.from_spectra(ring, c1),
        )
        return AHECiphertext(self.name, payload, self.ciphertext_size_bytes())

    def _phase_slots(self, phase_residues: np.ndarray) -> list:
        """CRT-reconstruct decryption phases (shape ``(..., primes, n)``) to slots."""
        t = self._plain_modulus
        centered = self.ring.crt_reconstruct_array(phase_residues)
        budget = self.ring.modulus // 2
        if (np.abs(centered) >= budget).any():
            raise NoiseBudgetExceeded("BV ciphertext noise exceeded q/2 during decryption")
        return (centered % t).tolist()

    def decrypt_slots(self, keypair: AHEKeyPair, ciphertext: AHECiphertext) -> list[int]:
        secret: BVSecret = keypair.secret.payload
        payload: BVCiphertextPayload = ciphertext.payload
        primes_column = self.ring.primes_column
        phase = (payload.c0.spectra + payload.c1.spectra * secret.s.spectra % primes_column) % primes_column
        return self._phase_slots(self.ring.inverse_transform(phase))

    def decrypt_slots_many(
        self, keypair: AHEKeyPair, ciphertexts: Sequence[AHECiphertext]
    ) -> list[list[int]]:
        """Decrypt a batch in one vectorised pass (provider hot path, Figs. 7/10)."""
        if not ciphertexts:
            return []
        secret: BVSecret = keypair.secret.payload
        stack = self.stack_ciphertexts(ciphertexts)
        primes_column = self.ring.primes_column
        phases = (stack.c0 + stack.c1 * secret.s.spectra % primes_column) % primes_column
        return self._phase_slots(self.ring.inverse_transform(phases))

    # -- homomorphic operations ----------------------------------------------------
    def add(self, left: AHECiphertext, right: AHECiphertext) -> AHECiphertext:
        lp: BVCiphertextPayload = left.payload
        rp: BVCiphertextPayload = right.payload
        payload = BVCiphertextPayload(c0=lp.c0.add(rp.c0), c1=lp.c1.add(rp.c1))
        return AHECiphertext(self.name, payload, self.ciphertext_size_bytes())

    def scalar_mul(self, ciphertext: AHECiphertext, scalar: int) -> AHECiphertext:
        if scalar < 0:
            raise ParameterError("scalar must be non-negative")
        payload: BVCiphertextPayload = ciphertext.payload
        result = BVCiphertextPayload(
            c0=payload.c0.scalar_multiply(scalar),
            c1=payload.c1.scalar_multiply(scalar),
        )
        return AHECiphertext(self.name, result, self.ciphertext_size_bytes())

    def shift_up(self, ciphertext: AHECiphertext, positions: int) -> AHECiphertext:
        """Move slot ``i`` to slot ``i + positions`` via multiplication by ``x^positions``.

        Slots pushed past the top wrap to the bottom *negated* (``x^n = -1``);
        callers must treat the low slots as garbage after a shift, exactly as
        the across-row packing protocol does (§4.2).
        """
        if positions < 0:
            raise ParameterError("shift amount must be non-negative")
        payload: BVCiphertextPayload = ciphertext.payload
        result = BVCiphertextPayload(
            c0=payload.c0.monomial_multiply(positions),
            c1=payload.c1.monomial_multiply(positions),
        )
        return AHECiphertext(self.name, result, self.ciphertext_size_bytes())

    # -- batched accumulation (the client dot-product hot path, §4.2) ------------
    def stack_ciphertexts(self, ciphertexts: Sequence[AHECiphertext]) -> BVCiphertextStack:
        """Stack ciphertext spectra into ``(count, primes, n)`` arrays."""
        c0 = np.stack([ct.payload.c0.spectra for ct in ciphertexts])
        c1 = np.stack([ct.payload.c1.spectra for ct in ciphertexts])
        return BVCiphertextStack(c0=c0, c1=c1)

    def _wrap_spectra(self, c0: np.ndarray, c1: np.ndarray) -> AHECiphertext:
        payload = BVCiphertextPayload(
            c0=RingPolynomial.from_spectra(self.ring, c0),
            c1=RingPolynomial.from_spectra(self.ring, c1),
        )
        return AHECiphertext(self.name, payload, self.ciphertext_size_bytes())

    def combine_stacked(
        self, stack: BVCiphertextStack, rows: Sequence[int], scalars: Sequence[int]
    ) -> AHECiphertext:
        """Compute ``Σ_i scalars[i] · stack[rows[i]]`` in one vectorised pass.

        Scalars are reduced per prime once; the accumulation then runs in raw
        int64 with *lazy* modular reduction — partial sums are reduced only
        when another chunk could overflow 63 bits, which for the small
        frequencies of Fig. 3's quantisation means exactly once, at the end.
        """
        if len(rows) != len(scalars):
            raise ParameterError("rows and scalars must have equal length")
        primes_column = self.ring.primes_column
        num_primes, n = len(self.ring.primes), self.ring.n
        if not rows:
            zeros = np.zeros((num_primes, n), dtype=np.int64)
            return self._wrap_spectra(zeros, zeros.copy())
        row_index = np.asarray(rows, dtype=np.intp)
        # (terms, primes): each scalar reduced modulo each prime.
        reduced = np.asarray(
            [[scalar % prime for prime in self.ring.primes] for scalar in scalars],
            dtype=np.int64,
        )
        # Largest unreduced per-term product; spectra values are < 2^31.
        per_term = int(reduced.max(initial=0)) * ((1 << 31) - 1)
        chunk = max(1, ((1 << 62) - 1) // max(1, per_term))
        acc0 = np.zeros((num_primes, n), dtype=np.int64)
        acc1 = np.zeros((num_primes, n), dtype=np.int64)
        for start in range(0, len(rows), chunk):
            idx = row_index[start : start + chunk]
            weights = reduced[start : start + chunk]
            acc0 = (acc0 + np.einsum("mkn,mk->kn", stack.c0[idx], weights)) % primes_column
            acc1 = (acc1 + np.einsum("mkn,mk->kn", stack.c1[idx], weights)) % primes_column
        return self._wrap_spectra(acc0, acc1)

    def combine_stacked_shifted(
        self, stack: BVCiphertextStack, terms: Sequence[tuple[int, int, int]]
    ) -> AHECiphertext:
        """Compute ``Σ scalar · x^shift · stack[row]`` for ``(row, scalar, shift)`` terms.

        All terms hitting the same stacked ciphertext ``C`` are folded into a
        single combining polynomial ``P(x) = Σ scalar · x^shift``, so the whole
        shift-and-add chain of §4.2 collapses to one spectrum-domain product
        ``C · P`` per distinct ciphertext: one forward NTT of ``P`` (or a cached
        monomial spectrum when ``P`` is a lone monomial) replaces one shift and
        one addition *per feature*.
        """
        primes_column = self.ring.primes_column
        num_primes, n = len(self.ring.primes), self.ring.n
        combining: dict[int, dict[int, int]] = {}
        for row, scalar, shift in terms:
            if not 0 <= shift < n:
                raise ParameterError("combining shifts must lie in [0, ring degree)")
            poly = combining.setdefault(row, {})
            poly[shift] = poly.get(shift, 0) + scalar
        acc0 = np.zeros((num_primes, n), dtype=np.int64)
        acc1 = np.zeros((num_primes, n), dtype=np.int64)
        pending = 0
        for row, poly in combining.items():
            if len(poly) == 1:
                ((shift, scalar),) = poly.items()
                mono = self.ring.monomial_spectra(shift)
                spectrum = mono * self.ring.reduce_scalar(scalar) % primes_column
            else:
                coefficients = np.zeros((num_primes, n), dtype=np.int64)
                for shift, scalar in poly.items():
                    coefficients[:, shift] = (
                        np.array([scalar % prime for prime in self.ring.primes], dtype=np.int64)
                    )
                spectrum = self.ring.forward_transform(coefficients)
            # Each product is reduced below 2^31, so up to 2^32 terms can
            # accumulate lazily before a reduction is needed.
            acc0 += stack.c0[row] * spectrum % primes_column
            acc1 += stack.c1[row] * spectrum % primes_column
            pending += 1
            if pending >= (1 << 31):
                acc0 %= primes_column
                acc1 %= primes_column
                pending = 0
        acc0 %= primes_column
        acc1 %= primes_column
        return self._wrap_spectra(acc0, acc1)

    # -- wire codec ---------------------------------------------------------------------
    _WIRE_HEADER = ">IB"  # ring degree (u32), RNS prime count (u8)

    def serialize_ciphertext(self, ciphertext: AHECiphertext) -> bytes:
        """Exact wire bytes: header + the (c0, c1) evaluation-domain residues.

        Ciphertexts are NTT-resident (see the module docstring), and the NTT
        for a fixed parameter set is a bijection both parties share, so the
        spectra *are* the canonical wire form — serialization never pays a
        transform.  Each residue is a u32 (< 2^31 prime), so the encoding is
        ``5 + 8·primes·n`` bytes and round-trips bit-identically.
        """
        if ciphertext.scheme_name != self.name:
            raise ParameterError(f"cannot serialize a {ciphertext.scheme_name!r} ciphertext")
        payload: BVCiphertextPayload = ciphertext.payload
        header = struct.pack(self._WIRE_HEADER, self.ring.n, len(self.ring.primes))
        return (
            header
            + payload.c0.spectra.astype(">u4").tobytes()
            + payload.c1.spectra.astype(">u4").tobytes()
        )

    def deserialize_ciphertext(
        self, data: bytes, public_key: AHEPublicKey | None = None
    ) -> AHECiphertext:
        if len(data) != self.ciphertext_size_bytes():
            raise WireFormatError(
                f"BV ciphertext frame is {len(data)} bytes, expected "
                f"{self.ciphertext_size_bytes()}"
            )
        n, num_primes = struct.unpack_from(self._WIRE_HEADER, data)
        if n != self.ring.n or num_primes != len(self.ring.primes):
            raise WireFormatError(
                f"BV ciphertext parameters (n={n}, primes={num_primes}) do not match "
                f"the scheme (n={self.ring.n}, primes={len(self.ring.primes)})"
            )
        body = np.frombuffer(data, dtype=">u4", offset=struct.calcsize(self._WIRE_HEADER))
        halves = body.astype(np.int64).reshape(2, num_primes, n)
        if (halves >= self.ring.primes_column).any():
            raise WireFormatError("BV ciphertext residue exceeds its RNS prime")
        payload = BVCiphertextPayload(
            c0=RingPolynomial.from_spectra(self.ring, halves[0]),
            c1=RingPolynomial.from_spectra(self.ring, halves[1]),
        )
        return AHECiphertext(self.name, payload, self.ciphertext_size_bytes())

    # -- sizes -------------------------------------------------------------------------
    def ciphertext_size_bytes(self) -> int:
        """Exact serialized size: the wire-codec header plus 2·primes·n u32 residues."""
        return struct.calcsize(self._WIRE_HEADER) + 8 * len(self.ring.primes) * self.ring.n

    # -- misc ---------------------------------------------------------------------------
    def encrypt_zero(self, public_key: AHEPublicKey) -> AHECiphertext:
        """Fresh encryption of the all-zero slot vector (used for re-randomisation)."""
        return self.encrypt_slots(public_key, [])
