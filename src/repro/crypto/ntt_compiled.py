"""Optional compiled NTT butterfly kernels (numba ``@njit``).

The pure-NumPy transforms in :mod:`repro.crypto.ntt` are the default and the
correctness reference; this module provides a drop-in compiled implementation
of the cyclic butterfly loops for machines where :mod:`numba` happens to be
installed.  Nothing here is required: when numba is absent every probe
returns ``None``/``False`` and the numpy path runs unchanged.

Both implementations produce canonical residues in ``[0, prime)`` after every
transform, so their outputs are *bit-identical* — the backend-parity tests
pin that — and the backend choice is invisible above the
:class:`~repro.crypto.ntt.NttContext` plan interface.

Design constraint: contexts and ring elements are pickled across shard-worker
process boundaries (registration replay), so no compiled dispatcher is ever
stored on a context — callers fetch the kernels from this module at call
time via :func:`kernels`.
"""

from __future__ import annotations

_KERNELS = None
_PROBED = False
_AVAILABLE = False


def available() -> bool:
    """Whether the numba backend can be imported on this machine."""
    global _PROBED, _AVAILABLE
    if not _PROBED:
        try:
            import numba  # noqa: F401
        except ImportError:
            _AVAILABLE = False
        else:
            _AVAILABLE = True
        _PROBED = True
    return _AVAILABLE


class _CompiledKernels:
    """Holder for the jitted entry points (built once, lazily)."""

    def __init__(self, cyclic_ntt_inplace) -> None:
        self.cyclic_ntt_inplace = cyclic_ntt_inplace


def kernels() -> _CompiledKernels | None:
    """Return the compiled kernels, building them on first use.

    Returns ``None`` when numba is not importable.  The first call pays the
    JIT compilation (cached on disk by numba where possible); later calls are
    a module-global lookup.
    """
    global _KERNELS
    if _KERNELS is not None:
        return _KERNELS
    if not available():
        return None

    import numba

    @numba.njit(cache=True, nogil=True)
    def cyclic_ntt_inplace(data, twiddles, prime):  # pragma: no cover - exercised only with numba
        """Iterative cyclic NTT over each row of ``data`` (shape (batch, n)).

        ``data`` must already be bit-reversed; rows are transformed in place
        and every value is reduced to the canonical residue in ``[0, prime)``
        at every stage (numba's ``%`` follows Python sign semantics), so the
        final rows equal the lazily-reduced numpy path bit for bit.
        """
        batch, n = data.shape
        for row in range(batch):
            length = 2
            while length <= n:
                half = length >> 1
                stride = n // length
                for start in range(0, n, length):
                    for k in range(half):
                        twiddle = twiddles[k * stride]
                        low = data[row, start + k]
                        high = data[row, start + k + half] % prime * twiddle % prime
                        data[row, start + k] = (low + high) % prime
                        data[row, start + k + half] = (low - high) % prime
                length <<= 1

    _KERNELS = _CompiledKernels(cyclic_ntt_inplace)
    return _KERNELS
