"""Number-theoretic primitives: modular arithmetic, primality, prime generation.

These routines back the Paillier cryptosystem (§3.3 of the paper), the
Diffie–Hellman parameter agreement (§3.3 footnote 3), the discrete-log based
e2e primitives, and the NTT-friendly prime search used by the Ring-LWE
cryptosystem (§4.1).
"""

from __future__ import annotations

import math

from repro.exceptions import ParameterError
from repro.utils.rand import secure_randbelow, secure_randbits

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
    233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313,
]


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def invmod(a: int, modulus: int) -> int:
    """Modular inverse of *a* modulo *modulus*; raises if it does not exist."""
    if modulus <= 0:
        raise ParameterError("modulus must be positive")
    g, x, _ = egcd(a % modulus, modulus)
    if g != 1:
        raise ParameterError(f"{a} has no inverse modulo {modulus} (gcd={g})")
    return x % modulus


def crt_pair(residue_p: int, p: int, residue_q: int, q: int) -> int:
    """Chinese-remainder combine for two coprime moduli."""
    q_inv = invmod(q, p)
    diff = (residue_p - residue_q) % p
    return (residue_q + q * ((diff * q_inv) % p)) % (p * q)


def is_probable_prime(candidate: int, rounds: int = 40) -> bool:
    """Miller–Rabin probabilistic primality test."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = 2 + secure_randbelow(candidate - 3)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int) -> int:
    """Generate a random prime of exactly *bits* bits."""
    if bits < 8:
        raise ParameterError("refusing to generate a prime smaller than 8 bits")
    while True:
        candidate = secure_randbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate


def generate_safe_prime(bits: int, max_attempts: int = 200000) -> tuple[int, int]:
    """Generate a safe prime ``p = 2q + 1``; returns ``(p, q)``.

    Safe primes give prime-order subgroups for Diffie–Hellman, Schnorr and
    ElGamal.  Generation is slow for large sizes; the test suite uses small
    parameters and the benchmarks use cached groups (see
    :data:`repro.crypto.dh.RFC3526_GROUP_2048`).
    """
    if bits < 16:
        raise ParameterError("safe prime must be at least 16 bits")
    for _ in range(max_attempts):
        q = generate_prime(bits - 1)
        p = 2 * q + 1
        if is_probable_prime(p):
            return p, q
    raise ParameterError(f"failed to find a {bits}-bit safe prime in {max_attempts} attempts")


def generate_distinct_primes(bits: int) -> tuple[int, int]:
    """Generate two distinct primes of the same bit length (for Paillier/RSA-style moduli)."""
    p = generate_prime(bits)
    while True:
        q = generate_prime(bits)
        if p != q:
            return p, q


def find_ntt_prime(bits: int, order: int) -> int:
    """Find a prime ``q`` with ``q ≡ 1 (mod order)`` of roughly *bits* bits.

    Such primes admit a primitive *order*-th root of unity, which the
    negacyclic NTT (``order = 2n``) requires.
    """
    if order <= 0 or order & (order - 1):
        raise ParameterError("order must be a positive power of two")
    candidate = ((1 << bits) // order) * order + 1
    while candidate.bit_length() <= bits + 1:
        if candidate.bit_length() >= bits - 1 and is_probable_prime(candidate):
            return candidate
        candidate += order
    # Walk downward if the upward walk crossed the size budget.
    candidate = ((1 << bits) // order) * order + 1 - order
    while candidate > order:
        if is_probable_prime(candidate):
            return candidate
        candidate -= order
    raise ParameterError(f"no NTT-friendly prime of ~{bits} bits with order {order}")


def find_primitive_root_of_unity(order: int, modulus: int) -> int:
    """Find a primitive *order*-th root of unity modulo a prime *modulus*."""
    if (modulus - 1) % order != 0:
        raise ParameterError("modulus - 1 must be divisible by order")
    cofactor = (modulus - 1) // order
    for base in range(2, modulus):
        candidate = pow(base, cofactor, modulus)
        if candidate == 1:
            continue
        # candidate has order dividing `order`; check it is exactly `order`
        # by verifying candidate^(order/p) != 1 for every prime p | order.
        # `order` is a power of two here, so the only prime divisor is 2.
        if pow(candidate, order // 2, modulus) != 1:
            return candidate
    raise ParameterError("no primitive root of unity found")


def find_generator(p: int, q: int) -> int:
    """Find a generator of the order-*q* subgroup of Z_p^*, with ``p = 2q + 1``."""
    if p != 2 * q + 1:
        raise ParameterError("expected a safe prime p = 2q + 1")
    while True:
        h = 2 + secure_randbelow(p - 3)
        g = pow(h, 2, p)
        if g not in (1, p - 1):
            return g


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    return a // math.gcd(a, b) * b


def isqrt(value: int) -> int:
    """Integer square root (floor)."""
    if value < 0:
        raise ParameterError("isqrt of a negative number")
    return math.isqrt(value)
