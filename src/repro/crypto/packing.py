"""Model-matrix packing: the GLLM layout and Pretzel's across-row layout (§4.2).

The provider's model is a matrix with one row per feature and one column per
category (plus one extra "prior/bias" row).  The setup phase of the protocol
(Fig. 2, step 1) encrypts this matrix column-slot-wise so that the client can
later compute, per category ``j``, the dot product ``d_j = Σ_i x_i · v_{i,j}``
entirely in cipherspace (Fig. 2, step 2).

Two layouts are implemented:

* **Within-row (legacy GLLM / "NoOptimPack")** — each row is packed on its
  own: ``ceil(B / p)`` ciphertexts per row, where ``p`` is the number of slots
  per ciphertext.  When ``B`` is much smaller than ``p`` (spam filtering has
  B = 2 while XPIR-BV offers ~1024 slots), most of every ciphertext is wasted;
  Fig. 8's "Pretzel-NoOptimPack" row quantifies that waste.

* **Across-row (Pretzel, §4.2)** — column segments of exactly ``p`` columns
  are packed as above; the final segment with ``k = B mod p < p`` columns
  packs ``m = floor(p / k)`` *rows* per ciphertext in row-major order (Fig. 4).
  During the dot-product computation, each row's contribution is realigned to
  a common *output region* (the slots of the last row position) using the
  homomorphic slot shift, then accumulated.  Slots outside the output region
  end up holding garbage and must be blinded before the ciphertext leaves the
  client (the protocols in :mod:`repro.twopc` do that).

The dot-product consumer API is :meth:`PackedLinearModel.dot_products`, which
returns one :class:`DotProductCiphertexts` holding the encrypted ``d_j`` for
all ``B`` columns together with the slot position of each column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.crypto.ahe import AHECiphertext, AHEKeyPair, AHEPublicKey, AHEScheme
from repro.exceptions import PackingError, ParameterError


@dataclass(frozen=True)
class PackingLayout:
    """Geometry of a packed model."""

    num_columns: int            # B: categories
    num_rows: int               # feature rows + 1 prior/bias row
    slots_per_ciphertext: int   # p
    across_rows: bool           # Pretzel packing (§4.2) vs legacy GLLM packing

    @property
    def full_segments(self) -> int:
        """Number of column segments that occupy a whole ciphertext width."""
        return self.num_columns // self.slots_per_ciphertext

    @property
    def leftover_columns(self) -> int:
        """Columns in the final, partially filled segment (0 if B divides p)."""
        return self.num_columns % self.slots_per_ciphertext

    @property
    def rows_per_leftover_ciphertext(self) -> int:
        """How many matrix rows share one ciphertext in the leftover segment."""
        if self.leftover_columns == 0:
            return 0
        if not self.across_rows:
            return 1
        return self.slots_per_ciphertext // self.leftover_columns

    @property
    def leftover_output_offset(self) -> int:
        """Slot index where the leftover segment's dot products accumulate.

        The output region is the slot range of the *last* row position inside
        a leftover ciphertext, so that shifting any earlier row up never
        pushes its payload past the top of the ciphertext.
        """
        if self.leftover_columns == 0:
            return 0
        return (self.rows_per_leftover_ciphertext - 1) * self.leftover_columns

    def ciphertext_count(self) -> int:
        """Total ciphertexts needed to store the encrypted model."""
        count = self.full_segments * self.num_rows
        if self.leftover_columns:
            if self.across_rows:
                rows_per_ct = self.rows_per_leftover_ciphertext
                count += -(-self.num_rows // rows_per_ct)
            else:
                count += self.num_rows
        return count

    def column_location(self, column: int) -> tuple[str, int]:
        """Where a column's dot product ends up: ("segment", index) or ("leftover", slot)."""
        if not 0 <= column < self.num_columns:
            raise ParameterError(f"column {column} out of range")
        segment = column // self.slots_per_ciphertext
        if segment < self.full_segments:
            return "segment", segment
        return "leftover", self.leftover_output_offset + (column % self.slots_per_ciphertext)


@dataclass
class EncryptedModelColumnSegment:
    """One full-width column segment: one ciphertext per model row."""

    segment_index: int
    row_ciphertexts: list[AHECiphertext]


@dataclass
class EncryptedModelLeftover:
    """The final (narrow) column segment, possibly packed across rows."""

    ciphertexts: list[AHECiphertext]


@dataclass
class DotProductCiphertexts:
    """Encrypted dot products for all columns, as produced by the client."""

    layout: PackingLayout
    segment_results: list[AHECiphertext]
    leftover_result: AHECiphertext | None

    def all_ciphertexts(self) -> list[AHECiphertext]:
        results = list(self.segment_results)
        if self.leftover_result is not None:
            results.append(self.leftover_result)
        return results

    def network_bytes(self) -> int:
        return sum(ct.size_bytes for ct in self.all_ciphertexts())


class PackedLinearModel:
    """An encrypted linear model plus the client-side dot-product evaluator.

    The provider constructs this object during the setup phase and ships it to
    the client (it contains only public-key material and ciphertexts).  The
    client calls :meth:`dot_products` per email.
    """

    def __init__(
        self,
        scheme: AHEScheme,
        public_key: AHEPublicKey,
        layout: PackingLayout,
        segments: list[EncryptedModelColumnSegment],
        leftover: EncryptedModelLeftover | None,
    ) -> None:
        self.scheme = scheme
        self.public_key = public_key
        self.layout = layout
        self.segments = segments
        self.leftover = leftover
        # Scheme-specific dense batches of the encrypted model (one per full
        # segment plus one for the leftover), built lazily on the first
        # dot-product evaluation when the scheme supports batched accumulation.
        self._segment_stacks: list | None = None
        self._leftover_stack = None
        self._column_slot_map: dict[int, tuple[int, int]] | None = None

    # -- construction (provider side, setup phase) -------------------------
    @classmethod
    def encrypt(
        cls,
        scheme: AHEScheme,
        public_key: AHEPublicKey,
        matrix_rows: Sequence[Sequence[int]],
        across_rows: bool = True,
    ) -> "PackedLinearModel":
        """Encrypt a quantized model matrix (rows = features + prior row).

        Every entry must be a non-negative integer that fits in a slot after
        accounting for the dot-product growth (the caller — see
        :mod:`repro.classify.model` — quantizes with the ``bin``/``fin``/``log L``
        budget of Fig. 3).
        """
        if not matrix_rows:
            raise PackingError("cannot pack an empty model matrix")
        num_rows = len(matrix_rows)
        num_columns = len(matrix_rows[0])
        for index, row in enumerate(matrix_rows):
            if len(row) != num_columns:
                raise PackingError(f"row {index} has {len(row)} columns, expected {num_columns}")
        if across_rows and not scheme.supports_slot_shift and num_columns % scheme.num_slots:
            # Across-row packing needs slot shifts at dot-product time; fall
            # back to the legacy layout on schemes that cannot shift (Paillier).
            across_rows = False
        layout = PackingLayout(
            num_columns=num_columns,
            num_rows=num_rows,
            slots_per_ciphertext=scheme.num_slots,
            across_rows=across_rows,
        )
        # Collect every slot vector of the packed model first, then fabricate
        # all ciphertexts in one batched call: for XPIR-BV the whole model is
        # one stacked forward-NTT pass and one vectorised randomness draw.
        p = scheme.num_slots
        vectors: list[list[int]] = []
        for segment_index in range(layout.full_segments):
            start = segment_index * p
            vectors.extend(list(row[start : start + p]) for row in matrix_rows)
        k = layout.leftover_columns
        leftover_count = 0
        if k:
            start = layout.full_segments * p
            if across_rows:
                rows_per_ct = layout.rows_per_leftover_ciphertext
                for first_row in range(0, num_rows, rows_per_ct):
                    block_rows = matrix_rows[first_row : first_row + rows_per_ct]
                    packed: list[int] = []
                    for row in block_rows:
                        packed.extend(int(v) for v in row[start : start + k])
                    vectors.append(packed)
                    leftover_count += 1
            else:
                for row in matrix_rows:
                    vectors.append(list(row[start : start + k]))
                    leftover_count += 1
        encrypted = scheme.encrypt_slots_many(public_key, vectors)
        segments = [
            EncryptedModelColumnSegment(
                segment_index,
                encrypted[segment_index * num_rows : (segment_index + 1) * num_rows],
            )
            for segment_index in range(layout.full_segments)
        ]
        leftover = None
        if k:
            leftover = EncryptedModelLeftover(encrypted[len(encrypted) - leftover_count :])
        return cls(scheme, public_key, layout, segments, leftover)

    # -- sizes --------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Client-side storage for the encrypted model (Fig. 8 / Fig. 12)."""
        count = sum(len(segment.row_ciphertexts) for segment in self.segments)
        if self.leftover is not None:
            count += len(self.leftover.ciphertexts)
        return count * self.scheme.ciphertext_size_bytes()

    def ciphertext_count(self) -> int:
        count = sum(len(segment.row_ciphertexts) for segment in self.segments)
        if self.leftover is not None:
            count += len(self.leftover.ciphertexts)
        return count

    # -- client-side evaluation (computation phase) ---------------------------
    def dot_products(self, sparse_features: Iterable[tuple[int, int]]) -> DotProductCiphertexts:
        """Homomorphically compute ``d_j = Σ_i x_i · v_{i,j}`` for every column.

        *sparse_features* yields ``(row_index, frequency)`` pairs for the
        non-zero entries of the email's feature vector; the prior/bias row
        (the last row of the matrix) is always added with frequency 1, as in
        expressions (1) and (2) of the paper.

        When the scheme supports batched accumulation (XPIR-BV), the whole
        evaluation is a handful of vectorised array operations over the
        stacked encrypted model; otherwise it falls back to the generic
        ``scalar_mul``/``shift_up``/``add`` chain (Paillier).
        """
        features = []
        for row_index, frequency in sparse_features:
            if not 0 <= row_index < self.layout.num_rows:
                raise PackingError(f"feature row {row_index} outside the model")
            if frequency <= 0:
                continue
            features.append((row_index, int(frequency)))
        features.append((self.layout.num_rows - 1, 1))  # prior/bias row
        if self.scheme.supports_batched_accumulation:
            return self._dot_products_batched(features)
        return self._dot_products_generic(features)

    def _dot_products_generic(self, features: list[tuple[int, int]]) -> DotProductCiphertexts:
        """Reference per-feature accumulation chain (also the Paillier path)."""
        segment_accumulators: list[AHECiphertext | None] = [None] * self.layout.full_segments
        leftover_accumulator: AHECiphertext | None = None
        for row_index, frequency in features:
            for segment in self.segments:
                term = segment.row_ciphertexts[row_index]
                if frequency != 1:
                    term = self.scheme.scalar_mul(term, frequency)
                current = segment_accumulators[segment.segment_index]
                segment_accumulators[segment.segment_index] = (
                    term if current is None else self.scheme.add(current, term)
                )
            if self.leftover is not None:
                term = self._leftover_term(row_index, frequency)
                leftover_accumulator = (
                    term
                    if leftover_accumulator is None
                    else self.scheme.add(leftover_accumulator, term)
                )
        segment_results = [ct for ct in segment_accumulators if ct is not None]
        if len(segment_results) != self.layout.full_segments:
            raise PackingError("internal error: missing segment accumulator")
        return DotProductCiphertexts(
            layout=self.layout,
            segment_results=segment_results,
            leftover_result=leftover_accumulator,
        )

    def ensure_stacks(self) -> None:
        """Pre-build the dense model stacks (the per-sender row cache).

        The first dot-product evaluation normally pays this; a serving loop
        can call it when a mailbox is registered so that no email in a burst
        is charged the one-time stacking cost.  No-op for schemes without
        batched accumulation.
        """
        if self.scheme.supports_batched_accumulation:
            self._ensure_stacks()

    def _ensure_stacks(self) -> None:
        if self._segment_stacks is None:
            self._segment_stacks = [
                self.scheme.stack_ciphertexts(segment.row_ciphertexts)
                for segment in self.segments
            ]
            if self.leftover is not None:
                self._leftover_stack = self.scheme.stack_ciphertexts(self.leftover.ciphertexts)

    def _dot_products_batched(self, features: list[tuple[int, int]]) -> DotProductCiphertexts:
        """Vectorised evaluation over the stacked encrypted model."""
        self._ensure_stacks()
        rows = [row for row, _ in features]
        scalars = [frequency for _, frequency in features]
        segment_results = [
            self.scheme.combine_stacked(stack, rows, scalars)
            for stack in self._segment_stacks
        ]
        leftover_result = None
        if self.leftover is not None:
            if self.layout.across_rows:
                rows_per_ct = self.layout.rows_per_leftover_ciphertext
                k = self.layout.leftover_columns
                # Fold every row's realignment shift (§4.2) into one combining
                # polynomial per leftover ciphertext; the scheme evaluates each
                # as a single spectrum-domain product.
                terms = [
                    (
                        row // rows_per_ct,
                        frequency,
                        (rows_per_ct - 1 - row % rows_per_ct) * k,
                    )
                    for row, frequency in features
                ]
                leftover_result = self.scheme.combine_stacked_shifted(self._leftover_stack, terms)
            else:
                leftover_result = self.scheme.combine_stacked(self._leftover_stack, rows, scalars)
        return DotProductCiphertexts(
            layout=self.layout,
            segment_results=segment_results,
            leftover_result=leftover_result,
        )

    def _leftover_term(self, row_index: int, frequency: int) -> AHECiphertext:
        assert self.leftover is not None
        k = self.layout.leftover_columns
        if not self.layout.across_rows:
            term = self.leftover.ciphertexts[row_index]
            if frequency != 1:
                term = self.scheme.scalar_mul(term, frequency)
            return term
        rows_per_ct = self.layout.rows_per_leftover_ciphertext
        ciphertext_index = row_index // rows_per_ct
        position_in_ct = row_index % rows_per_ct
        term = self.leftover.ciphertexts[ciphertext_index]
        if frequency != 1:
            term = self.scheme.scalar_mul(term, frequency)
        # Realign this row's k values onto the common output region (the last
        # row position): this is the homomorphic "left shift and add" of §4.2.
        shift = (rows_per_ct - 1 - position_in_ct) * k
        if shift:
            term = self.scheme.shift_up(term, shift)
        return term

    # -- result interpretation (provider side, after decryption) ---------------
    def result_ciphertext_count(self) -> int:
        """How many ciphertexts one dot-product result carries on the wire."""
        return self.layout.full_segments + (1 if self.layout.leftover_columns else 0)

    def column_slot_map(self) -> dict[int, tuple[int, int]]:
        """Map column j -> (result ciphertext index, slot index).

        Result ciphertext indices follow :meth:`DotProductCiphertexts.all_ciphertexts`
        ordering: full segments first, leftover last.  The map depends only on
        the layout, so it is computed once and cached (the provider consults
        it per email).
        """
        if self._column_slot_map is None:
            mapping = {}
            p = self.layout.slots_per_ciphertext
            for column in range(self.layout.num_columns):
                kind, where = self.layout.column_location(column)
                if kind == "segment":
                    mapping[column] = (where, column % p)
                else:
                    mapping[column] = (self.layout.full_segments, where)
            self._column_slot_map = mapping
        return self._column_slot_map


def decrypt_dot_products(
    scheme: AHEScheme,
    keypair: AHEKeyPair,
    result: DotProductCiphertexts,
) -> list[int]:
    """Decrypt a dot-product result into the per-column values (testing helper).

    The real protocols never decrypt unblinded results at the provider — the
    client blinds first (Fig. 2, step 2) — but unit tests use this to check
    that packing preserves the plaintext dot products exactly.
    """
    layout = result.layout
    ciphertexts = result.all_ciphertexts()
    decrypted = scheme.decrypt_slots_many(keypair, ciphertexts)
    values = []
    p = layout.slots_per_ciphertext
    for column in range(layout.num_columns):
        kind, where = layout.column_location(column)
        if kind == "segment":
            values.append(decrypted[column // p][column % p])
        else:
            values.append(decrypted[layout.full_segments][where])
    return values
