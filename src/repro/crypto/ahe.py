"""Common interface for additively homomorphic encryption (AHE) with slots.

The paper's protocols (Figures 2 and 5) are written against an abstract AHE
scheme ``(Gen, Enc, Dec)`` supporting addition of ciphertexts and
multiplication of a ciphertext by a plaintext constant.  Pretzel's packing
optimisation (§4.2) additionally treats the plaintext space as an array of
fixed-width *slots* and needs the ability to shift slots around.

This module defines that contract once so the baseline cryptosystem
(Paillier, §3.3) and Pretzel's cryptosystem (Ring-LWE "XPIR-BV", §4.1) are
interchangeable in every protocol:

* a plaintext is a list of non-negative integers, one per slot, each smaller
  than ``2**slot_bits``;
* ``add`` adds ciphertexts slot-wise;
* ``scalar_mul`` multiplies every slot by the same non-negative constant;
* ``shift_up`` moves slot ``i`` to slot ``i + k``; whatever enters the vacated
  low slots is unspecified (callers must treat those slots as garbage and
  blind them before revealing a ciphertext).

Slot arithmetic is *not* modular from the caller's perspective: protocols
choose ``slot_bits`` large enough (``log2 L + bin + fin`` plus blinding guard
bits, Fig. 3) that sums never overflow a slot, exactly as the paper requires
("the individual sums cannot overflow b bits", §4.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.exceptions import ParameterError


@dataclass
class AHECiphertext:
    """An opaque ciphertext produced by an :class:`AHEScheme`.

    ``payload`` is scheme-specific.  ``size_bytes`` is the serialized size on
    the wire, which the benchmark harness uses for network accounting.
    """

    scheme_name: str
    payload: Any
    size_bytes: int


@dataclass
class AHEPublicKey:
    scheme_name: str
    payload: Any
    size_bytes: int


@dataclass
class AHESecretKey:
    scheme_name: str
    payload: Any


@dataclass
class AHEKeyPair:
    public: AHEPublicKey
    secret: AHESecretKey


class AHEScheme(ABC):
    """Abstract additively homomorphic scheme with slotted plaintexts."""

    #: human-readable scheme name ("paillier", "xpir-bv")
    name: str = "abstract"

    @property
    @abstractmethod
    def slot_bits(self) -> int:
        """Width of each plaintext slot in bits."""

    @property
    @abstractmethod
    def num_slots(self) -> int:
        """Number of slots available in a single ciphertext."""

    @property
    def slot_modulus(self) -> int:
        """Upper bound (exclusive) on a slot value: ``2**slot_bits``."""
        return 1 << self.slot_bits

    @property
    @abstractmethod
    def supports_slot_shift(self) -> bool:
        """Whether :meth:`shift_up` is available (needed by §4.2 across-row packing)."""

    # -- key management -------------------------------------------------
    @abstractmethod
    def generate_keypair(self, seed: bytes | None = None) -> AHEKeyPair:
        """Generate a key pair; *seed* (if given) injects joint randomness (§3.3 fn. 3)."""

    # -- core operations -------------------------------------------------
    @abstractmethod
    def encrypt_slots(self, public_key: AHEPublicKey, values: Sequence[int]) -> AHECiphertext:
        """Encrypt up to :attr:`num_slots` slot values (slot 0 first, rest zero)."""

    def encrypt_slots_many(
        self, public_key: AHEPublicKey, vectors: Sequence[Sequence[int]]
    ) -> list[AHECiphertext]:
        """Encrypt a batch of slot vectors; schemes may override with a batched path.

        The ciphertext fabrication hot paths (blinding noise, model packing)
        call this so that schemes with array ciphertexts (XPIR-BV) can run one
        stacked transform pass and one vectorised randomness draw for the
        whole batch.  *vectors* may also be a ``(B, slots)`` integer ndarray.
        The default is the per-vector loop (Paillier).
        """
        rows = vectors.tolist() if isinstance(vectors, np.ndarray) else vectors
        return [self.encrypt_slots(public_key, vector) for vector in rows]

    @abstractmethod
    def decrypt_slots(self, keypair: AHEKeyPair, ciphertext: AHECiphertext) -> list[int]:
        """Decrypt and return all :attr:`num_slots` slot values."""

    def decrypt_slots_many(
        self, keypair: AHEKeyPair, ciphertexts: Sequence[AHECiphertext]
    ) -> list[list[int]]:
        """Decrypt a batch of ciphertexts; schemes may override with a vectorised path."""
        return [self.decrypt_slots(keypair, ciphertext) for ciphertext in ciphertexts]

    @abstractmethod
    def add(self, left: AHECiphertext, right: AHECiphertext) -> AHECiphertext:
        """Slot-wise homomorphic addition."""

    @abstractmethod
    def scalar_mul(self, ciphertext: AHECiphertext, scalar: int) -> AHECiphertext:
        """Multiply every slot by a non-negative plaintext constant."""

    def shift_up(self, ciphertext: AHECiphertext, positions: int) -> AHECiphertext:
        """Move slot ``i`` to slot ``i + positions`` (low slots become garbage)."""
        raise ParameterError(f"{self.name} does not support slot shifts")

    def add_many(
        self, lefts: Sequence[AHECiphertext], rights: Sequence[AHECiphertext]
    ) -> list[AHECiphertext]:
        """Pairwise :meth:`add` over two equal-length batches.

        Schemes with array ciphertexts may override with one stacked addition;
        the override must stay bit-identical to this loop.
        """
        if len(lefts) != len(rights):
            raise ParameterError("add_many requires equal-length batches")
        return [self.add(left, right) for left, right in zip(lefts, rights)]

    def extract_shift_many(
        self,
        ciphertexts: Sequence[AHECiphertext],
        indices: Sequence[int],
        shifts: Sequence[int],
    ) -> list[AHECiphertext]:
        """Gather ``ciphertexts[indices[k]]`` and shift each up by ``shifts[k]``.

        This is the candidate-extraction primitive of §4.3: the same source
        ciphertext may be gathered many times with different shifts.  The
        default is a per-candidate :meth:`shift_up` loop; slot-shifting array
        schemes override it with one stacked gather and a batched
        monomial-spectra multiply (bit-identical to the loop).
        """
        if len(indices) != len(shifts):
            raise ParameterError("extract_shift_many requires equal-length indices/shifts")
        return [self.shift_up(ciphertexts[index], shift) for index, shift in zip(indices, shifts)]

    # -- batched accumulation (optional fast path) -------------------------
    @property
    def supports_batched_accumulation(self) -> bool:
        """Whether the stacked linear-combination fast path below is available.

        Schemes whose ciphertexts are fixed-shape integer arrays (XPIR-BV)
        can stack an encrypted model once and evaluate every per-email
        homomorphic dot product as a vectorised sum with lazy modular
        reduction, instead of a Python-level ``scalar_mul``/``add`` chain.
        """
        return False

    def stack_ciphertexts(self, ciphertexts: Sequence[AHECiphertext]) -> Any:
        """Pack ciphertexts into a scheme-specific dense batch for repeated use."""
        raise ParameterError(f"{self.name} does not support batched accumulation")

    def combine_stacked(
        self, stack: Any, rows: Sequence[int], scalars: Sequence[int]
    ) -> AHECiphertext:
        """Homomorphically compute ``Σ_i scalars[i] · stack[rows[i]]``."""
        raise ParameterError(f"{self.name} does not support batched accumulation")

    def combine_stacked_shifted(
        self, stack: Any, terms: Sequence[tuple[int, int, int]]
    ) -> AHECiphertext:
        """Compute ``Σ scalar · x^shift · stack[row]`` over ``(row, scalar, shift)`` terms."""
        raise ParameterError(f"{self.name} does not support batched accumulation")

    # -- wire codecs -------------------------------------------------------
    @abstractmethod
    def serialize_ciphertext(self, ciphertext: AHECiphertext) -> bytes:
        """Encode a ciphertext into its exact wire bytes.

        The protocol frames of :mod:`repro.twopc.wire` call this for every
        ciphertext that crosses parties, so ``len(serialize_ciphertext(ct))``
        — not an estimate — is what network accounting charges.  The encoding
        must round-trip bit-identically through :meth:`deserialize_ciphertext`
        and must have length :meth:`ciphertext_size_bytes` for every
        ciphertext under a fixed parameter set.
        """

    @abstractmethod
    def deserialize_ciphertext(
        self, data: bytes, public_key: AHEPublicKey | None = None
    ) -> AHECiphertext:
        """Decode wire bytes produced by :meth:`serialize_ciphertext`.

        Schemes whose ciphertext payloads carry key material (Paillier) need
        *public_key* to reattach it; schemes with self-contained ciphertexts
        (XPIR-BV) ignore it.
        """

    # -- sizes -----------------------------------------------------------
    @abstractmethod
    def ciphertext_size_bytes(self) -> int:
        """Serialized size of one ciphertext (constant for a fixed parameter set)."""

    # -- helpers shared by implementations --------------------------------
    def _check_slot_values(self, values: Sequence[int]) -> list[int]:
        if len(values) > self.num_slots:
            raise ParameterError(
                f"{len(values)} slot values exceed capacity {self.num_slots}"
            )
        limit = self.slot_modulus
        checked = list(values)
        if not checked:
            return checked
        # Vectorised fast path: slot vectors are often num_slots long (blinding
        # noise), so a Python-level per-value loop is measurable per email.
        # The exact-type scan keeps the strict typing of the slow path (bools
        # and numpy scalars are rejected there); huge ints fall through too.
        if limit <= 1 << 63 and all(type(value) is int for value in checked):
            try:
                array = np.asarray(checked, dtype=np.int64)
            except OverflowError:
                array = None
            if array is not None:
                if array.min() < 0 or array.max() >= limit:
                    raise ParameterError(f"slot value outside [0, 2^{self.slot_bits})")
                return checked
        for index, value in enumerate(checked):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ParameterError(f"slot {index} value must be an int, got {type(value)!r}")
            if not 0 <= value < limit:
                raise ParameterError(
                    f"slot {index} value {value} outside [0, 2^{self.slot_bits})"
                )
        return checked

    def encrypt_single(self, public_key: AHEPublicKey, value: int) -> AHECiphertext:
        """Convenience: encrypt a single value in slot 0."""
        return self.encrypt_slots(public_key, [value])

    def decrypt_single(self, keypair: AHEKeyPair, ciphertext: AHECiphertext) -> int:
        """Convenience: decrypt slot 0."""
        return self.decrypt_slots(keypair, ciphertext)[0]
