"""Pseudorandom generation: HMAC-DRBG style PRG and a simple PRF.

The IKNP OT extension (used to make Yao's protocol practical, §3.2) stretches
short seeds into long pseudorandom bit strings; the garbled-circuit layer
derives wire labels from a master seed; the BV cryptosystem samples its noise
and its uniform polynomials from a seeded PRG so that ciphertexts can be
regenerated deterministically in tests.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.exceptions import ParameterError
from repro.utils.bitops import bytes_to_bits


class Prg:
    """Deterministic byte stream from a seed (HMAC-SHA256 in counter mode)."""

    def __init__(self, seed: bytes, domain: bytes = b"repro-prg") -> None:
        if not seed:
            raise ParameterError("PRG seed must be non-empty")
        self._key = hmac.new(domain, seed, hashlib.sha256).digest()
        self._counter = 0
        self._buffer = b""

    def read(self, length: int) -> bytes:
        """Return the next *length* pseudorandom bytes."""
        if length < 0:
            raise ParameterError("length must be non-negative")
        if len(self._buffer) < length:
            # hmac.digest is a one-shot C path (~3x faster than hmac.new) and
            # the block list avoids quadratic bytes concatenation; the output
            # stream is identical.
            blocks = [self._buffer]
            produced = len(self._buffer)
            while produced < length:
                block = hmac.digest(
                    self._key, self._counter.to_bytes(8, "big"), hashlib.sha256
                )
                self._counter += 1
                blocks.append(block)
                produced += len(block)
            self._buffer = b"".join(blocks)
        out, self._buffer = self._buffer[:length], self._buffer[length:]
        return out

    def read_bits(self, count: int) -> list[int]:
        """Return the next *count* pseudorandom bits (little-endian per byte)."""
        data = self.read((count + 7) // 8)
        return bytes_to_bits(data, count)

    def read_int(self, upper: int) -> int:
        """Uniform-ish integer in ``[0, upper)`` via rejection-free modular reduction.

        The modulo bias is negligible because we draw 16 extra bytes beyond
        the size of *upper*.
        """
        if upper <= 0:
            raise ParameterError("upper must be positive")
        width = (upper.bit_length() + 7) // 8 + 16
        return int.from_bytes(self.read(width), "big") % upper

    def read_signed_int(self, bound: int) -> int:
        """Uniform integer in ``[-bound, bound]`` (noise sampling helper)."""
        if bound < 0:
            raise ParameterError("bound must be non-negative")
        return self.read_int(2 * bound + 1) - bound


def prf(key: bytes, message: bytes, length: int = 32) -> bytes:
    """Fixed-length PRF output, ``HMAC(key, message)`` truncated/expanded to *length*."""
    if length <= 0:
        raise ParameterError("length must be positive")
    out = b""
    counter = 0
    while len(out) < length:
        out += hmac.new(
            key, message + counter.to_bytes(4, "big"), hashlib.sha256
        ).digest()
        counter += 1
    return out[:length]
