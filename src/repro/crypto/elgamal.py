"""ElGamal key-encapsulation mechanism (KEM).

The e2e module encrypts each email under a fresh symmetric key; that key is
wrapped for the recipient with this KEM (the reproduction's stand-in for the
public-key layer of GPG — see DESIGN.md).  We use the hashed-ElGamal / DHIES
style KEM: the sender sends an ephemeral public share and both sides derive
the data-encryption key via HKDF of the DH shared value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.dh import DHGroup, DHKeyPair
from repro.crypto.hashes import hkdf
from repro.exceptions import ParameterError


@dataclass
class ElGamalPublicKey:
    """Recipient's long-term public key."""

    group: DHGroup
    element: int

    def __post_init__(self) -> None:
        if not self.group.is_valid_element(self.element):
            raise ParameterError("ElGamal public key is not a valid group element")


@dataclass
class ElGamalPrivateKey:
    """Recipient's long-term private key."""

    group: DHGroup
    exponent: int

    def public_key(self) -> ElGamalPublicKey:
        return ElGamalPublicKey(self.group, self.group.power(self.group.g, self.exponent))


@dataclass
class ElGamalKeyPair:
    public: ElGamalPublicKey
    private: ElGamalPrivateKey

    @classmethod
    def generate(cls, group: DHGroup) -> "ElGamalKeyPair":
        dh = DHKeyPair.generate(group)
        private = ElGamalPrivateKey(group, dh.secret)
        return cls(public=ElGamalPublicKey(group, dh.public), private=private)


@dataclass
class KemCiphertext:
    """Encapsulation: the ephemeral public share."""

    ephemeral: int

    def encoded_size(self, group: DHGroup) -> int:
        return group.element_bytes


def encapsulate(public_key: ElGamalPublicKey, key_length: int = 32, info: bytes = b"pretzel-e2e-kem") -> tuple[KemCiphertext, bytes]:
    """Generate a fresh symmetric key and its encapsulation for *public_key*."""
    group = public_key.group
    ephemeral = DHKeyPair.generate(group)
    shared = group.power(public_key.element, ephemeral.secret)
    transcript = group.encode_element(ephemeral.public) + group.encode_element(shared)
    key = hkdf(transcript, info, key_length)
    return KemCiphertext(ephemeral=ephemeral.public), key


def decapsulate(private_key: ElGamalPrivateKey, ciphertext: KemCiphertext, key_length: int = 32, info: bytes = b"pretzel-e2e-kem") -> bytes:
    """Recover the symmetric key from an encapsulation."""
    group = private_key.group
    if not group.is_valid_element(ciphertext.ephemeral):
        raise ParameterError("KEM ephemeral share is not a valid group element")
    shared = group.power(ciphertext.ephemeral, private_key.exponent)
    transcript = group.encode_element(ciphertext.ephemeral) + group.encode_element(shared)
    return hkdf(transcript, info, key_length)
