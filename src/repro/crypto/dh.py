"""Diffie–Hellman groups, key exchange, and joint parameter agreement.

Two roles in the paper:

* The e2e module's public-key primitives (ElGamal KEM, Schnorr signatures)
  operate in a prime-order subgroup of Z_p^* described by :class:`DHGroup`.
* §3.3 (footnote 3) requires that the AHE public parameters not be chosen
  unilaterally by one party: "Pretzel determines these parameters with
  Diffie–Hellman key exchange, so that both parties inject randomness into
  these parameters."  :func:`joint_parameter_seed` implements that step: both
  parties contribute a random share, run DH, and hash the transcript into a
  seed from which the AHE scheme derives its public randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256
from repro.crypto.numtheory import find_generator, generate_safe_prime, is_probable_prime
from repro.exceptions import ParameterError, ProtocolAbort
from repro.utils.rand import secure_randbelow

# RFC 3526 MODP group 14 (2048-bit), a well-known safe-prime group.  Using a
# fixed vetted group avoids minutes-long safe-prime generation at import time
# while remaining faithful to deployments (GPG and TLS use such groups).
_RFC3526_PRIME_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)


@dataclass(frozen=True)
class DHGroup:
    """A prime-order-q subgroup of Z_p^* with generator g (p = 2q + 1)."""

    p: int
    q: int
    g: int

    def __post_init__(self) -> None:
        if self.p != 2 * self.q + 1:
            raise ParameterError("DHGroup requires a safe prime p = 2q + 1")
        if not 1 < self.g < self.p:
            raise ParameterError("generator out of range")
        if pow(self.g, self.q, self.p) != 1:
            raise ParameterError("generator does not have order q")

    @property
    def element_bytes(self) -> int:
        """Byte length of a serialized group element."""
        return (self.p.bit_length() + 7) // 8

    def random_exponent(self) -> int:
        """Uniform secret exponent in [1, q)."""
        return 1 + secure_randbelow(self.q - 1)

    def power(self, base: int, exponent: int) -> int:
        """Group exponentiation ``base^exponent mod p``."""
        return pow(base, exponent, self.p)

    def is_valid_element(self, element: int) -> bool:
        """Check that *element* lies in the order-q subgroup (subgroup-membership check).

        This is the standard defence against small-subgroup attacks: an
        actively adversarial party could otherwise send an element of order 2.
        """
        if not 1 <= element < self.p:
            return False
        return pow(element, self.q, self.p) == 1

    def encode_element(self, element: int) -> bytes:
        """Fixed-width big-endian encoding of a group element."""
        return element.to_bytes(self.element_bytes, "big")


def rfc3526_group_2048() -> DHGroup:
    """The RFC 3526 2048-bit MODP group with generator 4 (a quadratic residue)."""
    p = _RFC3526_PRIME_2048
    q = (p - 1) // 2
    # g=2 generates the full group for this prime; squaring it lands in the
    # order-q subgroup of quadratic residues.
    return DHGroup(p=p, q=q, g=4)


def generate_group(bits: int) -> DHGroup:
    """Generate a fresh safe-prime group (slow; intended for small test sizes)."""
    p, q = generate_safe_prime(bits)
    g = find_generator(p, q)
    return DHGroup(p=p, q=q, g=g)


def default_group(security: str = "test") -> DHGroup:
    """Return a group sized for the requested profile.

    ``"test"`` uses a small (fast) freshly generated group; ``"standard"``
    returns the vetted 2048-bit RFC 3526 group used by the benchmarks.
    """
    if security == "standard":
        return rfc3526_group_2048()
    if security == "test":
        return generate_group(256)
    raise ParameterError(f"unknown security profile {security!r}")


@dataclass
class DHKeyPair:
    """An ephemeral or long-term DH key pair."""

    group: DHGroup
    secret: int
    public: int

    @classmethod
    def generate(cls, group: DHGroup) -> "DHKeyPair":
        secret = group.random_exponent()
        return cls(group=group, secret=secret, public=group.power(group.g, secret))

    def shared_secret(self, peer_public: int) -> bytes:
        """Raw DH shared secret with subgroup validation of the peer share."""
        if not self.group.is_valid_element(peer_public):
            raise ProtocolAbort("peer DH share failed subgroup-membership validation")
        shared = self.group.power(peer_public, self.secret)
        return self.group.encode_element(shared)


def joint_parameter_seed(
    group: DHGroup,
    own_keypair: DHKeyPair,
    peer_public: int,
    own_nonce: bytes,
    peer_nonce: bytes,
    context: bytes = b"pretzel-ahe-parameters",
) -> bytes:
    """Derive a jointly random 32-byte seed for AHE public parameters.

    Both parties contribute a nonce and a DH share; the seed is a hash of the
    full transcript, so neither party can steer the resulting parameters
    (§3.3 footnote 3).  The ordering of nonces in the hash is canonicalised
    (lexicographic) so both parties compute the same value.
    """
    shared = own_keypair.shared_secret(peer_public)
    first, second = sorted([own_nonce, peer_nonce])
    return sha256(context, shared, first, second)


def validate_group(group: DHGroup) -> None:
    """Re-validate a group received from a peer (defence against rigged parameters)."""
    if not is_probable_prime(group.p) or not is_probable_prime(group.q):
        raise ProtocolAbort("received DH group with composite modulus or order")
    if pow(group.g, group.q, group.p) != 1 or group.g in (0, 1, group.p - 1):
        raise ProtocolAbort("received DH group with invalid generator")
