"""The Paillier cryptosystem — the baseline AHE of §3.3.

Paillier [96 in the paper] is the additively homomorphic scheme used by the
prior Yao+GLLM systems the paper builds on.  Pretzel replaces it with the
Ring-LWE scheme of §4.1; we keep both so the benchmark harness can reproduce
the Baseline vs Pretzel comparisons of Figures 6–12.

Plaintexts are integers modulo ``N``; slots are fixed-width bit fields packed
inside that integer (the GLLM packing of §4.2).  Slot shifts are not
supported: the baseline only ever packs within a matrix row, which never
requires realigning rows (§4.2, "Prior work").

Decryption uses the CRT speed-up (decrypt modulo ``p**2`` and ``q**2``
separately) — the same optimisation real deployments use, so the
Paillier-vs-XPIR-BV microbenchmark comparison (Fig. 6) is fair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.crypto.ahe import (
    AHECiphertext,
    AHEKeyPair,
    AHEPublicKey,
    AHEScheme,
    AHESecretKey,
)
from repro.crypto.numtheory import crt_pair, generate_distinct_primes, invmod
from repro.crypto.prg import Prg
from repro.exceptions import DecryptionError, ParameterError, WireFormatError
from repro.utils.bitops import pack_fields, unpack_fields
from repro.utils.rand import secure_randbelow


@dataclass
class PaillierPublic:
    n: int
    n_squared: int
    generator: int  # fixed to n + 1

    @property
    def modulus_bits(self) -> int:
        return self.n.bit_length()


@dataclass
class PaillierSecret:
    p: int
    q: int
    # Precomputed CRT values.
    p_squared: int
    q_squared: int
    hp: int  # L_p(g^{p-1} mod p^2)^{-1} mod p
    hq: int


class PaillierScheme(AHEScheme):
    """Textbook Paillier with CRT decryption and slot packing."""

    name = "paillier"

    def __init__(self, modulus_bits: int = 1024, slot_bits: int = 40) -> None:
        if modulus_bits < 64:
            raise ParameterError("Paillier modulus must be at least 64 bits")
        if slot_bits <= 0 or slot_bits >= modulus_bits - 2:
            raise ParameterError("slot_bits must be positive and smaller than the modulus")
        self._modulus_bits = modulus_bits
        self._slot_bits = slot_bits
        # Leave two guard bits so packed values can never reach N even when a
        # slot carries into the next position due to caller error.
        self._num_slots = max(1, (modulus_bits - 2) // slot_bits)

    # -- AHEScheme properties --------------------------------------------
    @property
    def slot_bits(self) -> int:
        return self._slot_bits

    @property
    def num_slots(self) -> int:
        return self._num_slots

    @property
    def supports_slot_shift(self) -> bool:
        return False

    @property
    def modulus_bits(self) -> int:
        return self._modulus_bits

    # -- key management ---------------------------------------------------
    def generate_keypair(self, seed: bytes | None = None) -> AHEKeyPair:
        """Generate a Paillier key pair.

        When *seed* is provided the primes are derived deterministically from
        it; the Pretzel protocols pass a jointly computed DH seed here so
        neither party unilaterally controls the public parameters
        (§3.3 footnote 3).
        """
        half_bits = self._modulus_bits // 2
        if seed is None:
            p, q = generate_distinct_primes(half_bits)
        else:
            p, q = self._derive_primes(seed, half_bits)
        n = p * q
        n_squared = n * n
        public = PaillierPublic(n=n, n_squared=n_squared, generator=n + 1)
        p_squared = p * p
        q_squared = q * q
        hp = invmod(self._l_function(pow(public.generator, p - 1, p_squared), p), p)
        hq = invmod(self._l_function(pow(public.generator, q - 1, q_squared), q), q)
        secret = PaillierSecret(p=p, q=q, p_squared=p_squared, q_squared=q_squared, hp=hp, hq=hq)
        public_size = (n.bit_length() + 7) // 8
        return AHEKeyPair(
            public=AHEPublicKey(self.name, public, public_size),
            secret=AHESecretKey(self.name, secret),
        )

    @staticmethod
    def _derive_primes(seed: bytes, half_bits: int) -> tuple[int, int]:
        from repro.crypto.numtheory import is_probable_prime

        prg = Prg(seed, domain=b"paillier-prime-derivation")
        primes: list[int] = []
        while len(primes) < 2:
            candidate = prg.read_int(1 << half_bits) | (1 << (half_bits - 1)) | 1
            if is_probable_prime(candidate) and candidate not in primes:
                primes.append(candidate)
        return primes[0], primes[1]

    @staticmethod
    def _l_function(value: int, modulus: int) -> int:
        return (value - 1) // modulus

    # -- encryption / decryption ------------------------------------------
    def _encrypt_integer(self, public: PaillierPublic, message: int) -> int:
        if not 0 <= message < public.n:
            raise ParameterError("Paillier plaintext out of range")
        while True:
            r = secure_randbelow(public.n)
            if r != 0 and math.gcd(r, public.n) == 1:
                break
        # (1 + n)^m = 1 + n*m (mod n^2): avoids one full-width modexp.
        g_m = (1 + public.n * message) % public.n_squared
        return (g_m * pow(r, public.n, public.n_squared)) % public.n_squared

    def _decrypt_integer(self, public: PaillierPublic, secret: PaillierSecret, ciphertext: int) -> int:
        if not 0 <= ciphertext < public.n_squared:
            raise DecryptionError("Paillier ciphertext out of range")
        mp = (
            self._l_function(pow(ciphertext, secret.p - 1, secret.p_squared), secret.p)
            * secret.hp
        ) % secret.p
        mq = (
            self._l_function(pow(ciphertext, secret.q - 1, secret.q_squared), secret.q)
            * secret.hq
        ) % secret.q
        return crt_pair(mp, secret.p, mq, secret.q)

    def encrypt_slots(self, public_key: AHEPublicKey, values: Sequence[int]) -> AHECiphertext:
        public: PaillierPublic = public_key.payload
        checked = self._check_slot_values(values)
        message = pack_fields(checked, self._slot_bits)
        ciphertext = self._encrypt_integer(public, message)
        return AHECiphertext(self.name, (ciphertext, public), self.ciphertext_size_bytes())

    def decrypt_slots(self, keypair: AHEKeyPair, ciphertext: AHECiphertext) -> list[int]:
        public: PaillierPublic = keypair.public.payload
        secret: PaillierSecret = keypair.secret.payload
        value, _ = ciphertext.payload
        message = self._decrypt_integer(public, secret, value)
        return unpack_fields(message, self._slot_bits, self._num_slots)

    # -- homomorphic operations --------------------------------------------
    def add(self, left: AHECiphertext, right: AHECiphertext) -> AHECiphertext:
        left_value, public = left.payload
        right_value, other_public = right.payload
        if public.n != other_public.n:
            raise ParameterError("cannot add Paillier ciphertexts under different keys")
        combined = (left_value * right_value) % public.n_squared
        return AHECiphertext(self.name, (combined, public), self.ciphertext_size_bytes())

    def scalar_mul(self, ciphertext: AHECiphertext, scalar: int) -> AHECiphertext:
        if scalar < 0:
            raise ParameterError("scalar must be non-negative")
        value, public = ciphertext.payload
        result = pow(value, scalar, public.n_squared)
        return AHECiphertext(self.name, (result, public), self.ciphertext_size_bytes())

    # -- wire codec ----------------------------------------------------------
    def serialize_ciphertext(self, ciphertext: AHECiphertext) -> bytes:
        """Exact wire bytes: the Z_{N^2} element, fixed-width big-endian."""
        if ciphertext.scheme_name != self.name:
            raise ParameterError(f"cannot serialize a {ciphertext.scheme_name!r} ciphertext")
        value, _ = ciphertext.payload
        return value.to_bytes(self._element_bytes(), "big")

    def deserialize_ciphertext(
        self, data: bytes, public_key: AHEPublicKey | None = None
    ) -> AHECiphertext:
        if public_key is None:
            raise WireFormatError("Paillier ciphertext decoding needs the public key")
        if len(data) != self._element_bytes():
            raise WireFormatError(
                f"Paillier ciphertext frame is {len(data)} bytes, expected "
                f"{self._element_bytes()}"
            )
        public: PaillierPublic = public_key.payload
        value = int.from_bytes(data, "big")
        if value >= public.n_squared:
            raise WireFormatError("Paillier ciphertext exceeds N^2")
        return AHECiphertext(self.name, (value, public), self.ciphertext_size_bytes())

    # -- sizes ---------------------------------------------------------------
    def _element_bytes(self) -> int:
        # A Paillier ciphertext is an element of Z_{N^2}: 2·modulus_bits wide.
        return (2 * self._modulus_bits + 7) // 8

    def ciphertext_size_bytes(self) -> int:
        return self._element_bytes()
