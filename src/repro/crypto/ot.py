"""Oblivious transfer: base OT plus the IKNP OT extension.

In Yao's protocol the evaluator must obtain the wire labels corresponding to
its own private input bits without the garbler learning those bits and
without the evaluator learning the other labels — exactly a 1-out-of-2
oblivious transfer per input bit.

* :class:`BaseOT` is a Chou–Orlandi style DH-based OT ("simplest OT") over a
  safe-prime group.  Each transfer costs a few modular exponentiations.
* :class:`OTExtension` implements the IKNP extension [71 in the paper,
  "Extending oblivious transfers efficiently"]: a small constant number of
  base OTs (128) in the reverse direction is stretched, with only symmetric
  operations, into as many OTs as the circuit needs.  This is what makes the
  per-email Yao step affordable, and is the mechanism the paper's cost model
  charges as ``y_per-in`` / ``sz_per-in`` (Fig. 3).

Both are expressed as message-passing state machines over a
:class:`repro.twopc.channel.TwoPartyChannel`-compatible duplex pair so the
protocol drivers can account for network bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.dh import DHGroup
from repro.crypto.hashes import hash_to_group_element, sha256
from repro.crypto.prg import Prg, prf
from repro.exceptions import OTError
from repro.utils.bitops import bits_to_bytes, bytes_to_bits, xor_bytes
from repro.utils.rand import secure_bytes

SECURITY_PARAMETER = 128  # number of base OTs backing the extension


# ---------------------------------------------------------------------------
# Base OT (Chou–Orlandi style, DH-based)
# ---------------------------------------------------------------------------
@dataclass
class BaseOTSenderSetup:
    group: DHGroup
    secret: int
    public: int  # A = g^a


def base_ot_sender_setup(group: DHGroup) -> BaseOTSenderSetup:
    secret = group.random_exponent()
    return BaseOTSenderSetup(group=group, secret=secret, public=group.power(group.g, secret))


def base_ot_receiver_respond(
    group: DHGroup, sender_public: int, choice_bit: int
) -> tuple[int, bytes]:
    """Receiver step: returns (response element B, derived key for the chosen message)."""
    if not group.is_valid_element(sender_public):
        raise OTError("base OT sender share failed validation")
    b = group.random_exponent()
    g_b = group.power(group.g, b)
    if choice_bit == 0:
        response = g_b
    else:
        response = (sender_public * g_b) % group.p
    shared = group.power(sender_public, b)
    key = sha256(b"base-ot-key", group.encode_element(shared))
    return response, key


def base_ot_sender_keys(setup: BaseOTSenderSetup, receiver_response: int) -> tuple[bytes, bytes]:
    """Sender step: derive the two message keys from the receiver's response."""
    group = setup.group
    if not 1 <= receiver_response < group.p:
        raise OTError("base OT receiver response out of range")
    key0_shared = group.power(receiver_response, setup.secret)
    # B / A = B * A^{-1}; exponentiating gives the key for choice 1.
    a_inverse = pow(setup.public, group.p - 2, group.p)
    key1_shared = group.power((receiver_response * a_inverse) % group.p, setup.secret)
    key0 = sha256(b"base-ot-key", group.encode_element(key0_shared))
    key1 = sha256(b"base-ot-key", group.encode_element(key1_shared))
    return key0, key1


def _ot_encrypt(key: bytes, message: bytes, index: int) -> bytes:
    pad = prf(key, b"base-ot-pad" + index.to_bytes(4, "big"), len(message))
    return xor_bytes(pad, message)


def base_ot_batch_send(
    group: DHGroup,
    message_pairs: list[tuple[bytes, bytes]],
    responses: list[int],
    setups: list[BaseOTSenderSetup],
) -> list[tuple[bytes, bytes]]:
    """Encrypt every message pair under the receiver-specific derived keys."""
    if not (len(message_pairs) == len(responses) == len(setups)):
        raise OTError("base OT batch length mismatch")
    encrypted = []
    for index, ((m0, m1), response, setup) in enumerate(zip(message_pairs, responses, setups)):
        key0, key1 = base_ot_sender_keys(setup, response)
        encrypted.append((_ot_encrypt(key0, m0, index), _ot_encrypt(key1, m1, index)))
    return encrypted


# ---------------------------------------------------------------------------
# Whole-protocol helpers (run both parties in-process over a channel object)
# ---------------------------------------------------------------------------
class ObliviousTransfer:
    """Batch 1-out-of-2 OT of fixed-length messages.

    ``mode="base"`` runs one DH-based OT per transfer; ``mode="iknp"`` runs
    :data:`SECURITY_PARAMETER` base OTs and extends.  The interface is
    synchronous and in-process (both parties are objects in the same Python
    process), but every byte that would cross the network goes through the
    *channel*, so transfer accounting matches a real deployment.
    """

    def __init__(self, group: DHGroup, mode: str = "iknp") -> None:
        if mode not in ("base", "iknp"):
            raise OTError(f"unknown OT mode {mode!r}")
        self.group = group
        self.mode = mode

    # The channel interface used below is intentionally tiny: .send(party, obj)
    # returns the serialized byte count and .receive(party) returns the object.
    def run(
        self,
        channel,
        sender_pairs: list[tuple[bytes, bytes]],
        receiver_choices: list[int],
    ) -> list[bytes]:
        if len(sender_pairs) != len(receiver_choices):
            raise OTError("sender and receiver disagree on the number of transfers")
        if not sender_pairs:
            return []
        if self.mode == "base":
            return self._run_base(channel, sender_pairs, receiver_choices)
        return self._run_iknp(channel, sender_pairs, receiver_choices)

    # -- direct base OTs ------------------------------------------------------
    def _run_base(self, channel, sender_pairs, receiver_choices) -> list[bytes]:
        setups = [base_ot_sender_setup(self.group) for _ in sender_pairs]
        channel.send("sender", [setup.public for setup in setups])
        sender_publics = channel.receive("receiver")
        responses = []
        receiver_keys = []
        for public, choice in zip(sender_publics, receiver_choices):
            response, key = base_ot_receiver_respond(self.group, public, choice)
            responses.append(response)
            receiver_keys.append(key)
        channel.send("receiver", responses)
        responses_at_sender = channel.receive("sender")
        encrypted = base_ot_batch_send(self.group, sender_pairs, responses_at_sender, setups)
        channel.send("sender", encrypted)
        encrypted_at_receiver = channel.receive("receiver")
        results = []
        for index, (pair, choice, key) in enumerate(
            zip(encrypted_at_receiver, receiver_choices, receiver_keys)
        ):
            results.append(_ot_encrypt(key, pair[choice], index))
        return results

    # -- IKNP extension ----------------------------------------------------------
    def _run_iknp(self, channel, sender_pairs, receiver_choices) -> list[bytes]:
        kappa = SECURITY_PARAMETER
        count = len(sender_pairs)
        message_length = len(sender_pairs[0][0])
        for m0, m1 in sender_pairs:
            if len(m0) != message_length or len(m1) != message_length:
                raise OTError("IKNP requires equal-length messages")

        # Step 1: the *sender* of the extension acts as base-OT *receiver*
        # with a random choice vector s of length kappa.
        s_bits = bytes_to_bits(secure_bytes(kappa // 8), kappa)

        # Step 2: the extension receiver picks kappa seed pairs and runs the
        # base OTs in the reverse direction.
        seed_pairs = [(secure_bytes(16), secure_bytes(16)) for _ in range(kappa)]
        base = ObliviousTransfer(self.group, mode="base")
        received_seeds = base._run_base(channel, seed_pairs, s_bits)

        # Step 3: the receiver stretches both seeds per column; T is the matrix
        # of PRG(seed0) columns, and it sends U = PRG(seed0) XOR PRG(seed1) XOR r,
        # where r is its choice vector.
        column_bytes = (count + 7) // 8
        choice_vector = bits_to_bytes(receiver_choices)
        t_columns = []
        u_columns = []
        for seed0, seed1 in seed_pairs:
            t_col = Prg(seed0, domain=b"iknp-column").read(column_bytes)
            g1 = Prg(seed1, domain=b"iknp-column").read(column_bytes)
            t_columns.append(t_col)
            u_columns.append(xor_bytes(xor_bytes(t_col, g1), choice_vector))
        channel.send("receiver", u_columns)
        u_at_sender = channel.receive("sender")

        # Step 4: the sender reconstructs its matrix Q column by column:
        # Q_j = PRG(received_seed_j) XOR (s_j * U_j).
        q_columns = []
        for j in range(kappa):
            column = Prg(received_seeds[j], domain=b"iknp-column").read(column_bytes)
            if s_bits[j]:
                column = xor_bytes(column, u_at_sender[j])
            q_columns.append(column)

        # Step 5: per transfer i, the sender's row q_i satisfies
        # q_i = t_i XOR (r_i * s).  It derives pads H(i, q_i) and H(i, q_i XOR s)
        # and encrypts (m0, m1); the receiver can recompute only H(i, t_i).
        def row_bits(columns: list[bytes], row: int) -> list[int]:
            return [(columns[j][row // 8] >> (row % 8)) & 1 for j in range(kappa)]

        s_bytes = bits_to_bytes(s_bits)
        encrypted_pairs = []
        for i in range(count):
            q_row = bits_to_bytes(row_bits(q_columns, i))
            pad0 = prf(sha256(b"iknp-pad", i.to_bytes(4, "big"), q_row), b"0", message_length)
            pad1 = prf(
                sha256(b"iknp-pad", i.to_bytes(4, "big"), xor_bytes(q_row, s_bytes)),
                b"1",
                message_length,
            )
            m0, m1 = sender_pairs[i]
            encrypted_pairs.append((xor_bytes(pad0, m0), xor_bytes(pad1, m1)))
        channel.send("sender", encrypted_pairs)
        pairs_at_receiver = channel.receive("receiver")

        results = []
        for i in range(count):
            t_row = bits_to_bytes(row_bits(t_columns, i))
            pad = prf(sha256(b"iknp-pad", i.to_bytes(4, "big"), t_row), bytes([48 + receiver_choices[i]]), message_length)
            results.append(xor_bytes(pad, pairs_at_receiver[i][receiver_choices[i]]))
        return results
