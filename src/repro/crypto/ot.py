"""Oblivious transfer: base OT plus the IKNP OT extension.

In Yao's protocol the evaluator must obtain the wire labels corresponding to
its own private input bits without the garbler learning those bits and
without the evaluator learning the other labels — exactly a 1-out-of-2
oblivious transfer per input bit.

* The *base* OT is a Chou–Orlandi style DH-based OT ("simplest OT") over a
  safe-prime group.  Each transfer costs a few modular exponentiations.
* The *IKNP extension* [71 in the paper, "Extending oblivious transfers
  efficiently"] stretches a small constant number of base OTs (128) run in
  the reverse direction, with only symmetric operations, into as many OTs as
  the circuit needs.  This is what makes the per-email Yao step affordable,
  and is the mechanism the paper's cost model charges as ``y_per-in`` /
  ``sz_per-in`` (Fig. 3).

Each party of each variant is an explicit frame-driven state machine
(:class:`BaseOtSenderMachine`, :class:`IknpReceiverMachine`, ...): it reacts
to typed wire frames (:mod:`repro.twopc.wire`) with response frames and never
blocks, so the machines compose into the larger Yao sessions of
:mod:`repro.crypto.yao` and multiplex across concurrent email sessions.
:class:`ObliviousTransfer` remains the in-process driver: it pumps a
sender/receiver machine pair over a framed channel, which is also how the
byte costs of an OT batch are measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.dh import DHGroup
from repro.crypto.hashes import hash_to_group_element, sha256
from repro.crypto.prg import Prg, prf
from repro.exceptions import OTError
from repro.twopc.session import (
    ProtocolSession,
    _restore_base_fields,
    decode_state_payload,
    encode_state_payload,
    run_session_pair,
)
from repro.twopc.transport import FramedChannel
from repro.twopc.wire import (
    Frame,
    OtCipherPairsFrame,
    OtExtColumnsFrame,
    OtExtPairsFrame,
    OtPublicsFrame,
    OtResponsesFrame,
    SessionState,
    SessionStateKind,
)
from repro.utils.bitops import bits_to_bytes, bytes_to_bits, xor_bytes
from repro.utils.rand import secure_bytes

SECURITY_PARAMETER = 128  # number of base OTs backing the extension


# ---------------------------------------------------------------------------
# Base OT (Chou–Orlandi style, DH-based)
# ---------------------------------------------------------------------------
@dataclass
class BaseOTSenderSetup:
    group: DHGroup
    secret: int
    public: int  # A = g^a


def base_ot_sender_setup(group: DHGroup) -> BaseOTSenderSetup:
    secret = group.random_exponent()
    return BaseOTSenderSetup(group=group, secret=secret, public=group.power(group.g, secret))


def base_ot_receiver_respond(
    group: DHGroup, sender_public: int, choice_bit: int
) -> tuple[int, bytes]:
    """Receiver step: returns (response element B, derived key for the chosen message)."""
    if not group.is_valid_element(sender_public):
        raise OTError("base OT sender share failed validation")
    b = group.random_exponent()
    g_b = group.power(group.g, b)
    if choice_bit == 0:
        response = g_b
    else:
        response = (sender_public * g_b) % group.p
    shared = group.power(sender_public, b)
    key = sha256(b"base-ot-key", group.encode_element(shared))
    return response, key


def base_ot_sender_keys(setup: BaseOTSenderSetup, receiver_response: int) -> tuple[bytes, bytes]:
    """Sender step: derive the two message keys from the receiver's response."""
    group = setup.group
    if not 1 <= receiver_response < group.p:
        raise OTError("base OT receiver response out of range")
    key0_shared = group.power(receiver_response, setup.secret)
    # B / A = B * A^{-1}; exponentiating gives the key for choice 1.
    a_inverse = pow(setup.public, group.p - 2, group.p)
    key1_shared = group.power((receiver_response * a_inverse) % group.p, setup.secret)
    key0 = sha256(b"base-ot-key", group.encode_element(key0_shared))
    key1 = sha256(b"base-ot-key", group.encode_element(key1_shared))
    return key0, key1


def _ot_encrypt(key: bytes, message: bytes, index: int) -> bytes:
    pad = prf(key, b"base-ot-pad" + index.to_bytes(4, "big"), len(message))
    return xor_bytes(pad, message)


def base_ot_batch_send(
    group: DHGroup,
    message_pairs: list[tuple[bytes, bytes]],
    responses: list[int],
    setups: list[BaseOTSenderSetup],
) -> list[tuple[bytes, bytes]]:
    """Encrypt every message pair under the receiver-specific derived keys."""
    if not (len(message_pairs) == len(responses) == len(setups)):
        raise OTError("base OT batch length mismatch")
    encrypted = []
    for index, ((m0, m1), response, setup) in enumerate(zip(message_pairs, responses, setups)):
        key0, key1 = base_ot_sender_keys(setup, response)
        encrypted.append((_ot_encrypt(key0, m0, index), _ot_encrypt(key1, m1, index)))
    return encrypted


# ---------------------------------------------------------------------------
# Frame-driven party state machines
# ---------------------------------------------------------------------------
def _row_bits(columns: list[bytes] | tuple[bytes, ...], row: int, kappa: int) -> list[int]:
    return [(columns[j][row // 8] >> (row % 8)) & 1 for j in range(kappa)]


class OtMachine(ProtocolSession):
    """Common base: an OT party as a reentrant frame handler.

    ``result`` is the receiver's list of chosen messages (``None`` for a
    sender, and until the receiver finishes).  An empty batch finishes
    immediately without emitting any frames.
    """

    def __init__(self, group: DHGroup) -> None:
        super().__init__()
        self.group = group
        self.result: list[bytes] | None = None


class BaseOtSenderMachine(OtMachine):
    """Chou–Orlandi sender: publics -> (responses) -> encrypted pairs."""

    def __init__(self, group: DHGroup, message_pairs: list[tuple[bytes, bytes]]) -> None:
        super().__init__(group)
        self.message_pairs = list(message_pairs)
        self._setups: list[BaseOTSenderSetup] = []

    def _start(self) -> list[Frame]:
        if not self.message_pairs:
            self.finished = True
            return []
        self._setups = [base_ot_sender_setup(self.group) for _ in self.message_pairs]
        return [OtPublicsFrame(tuple(setup.public for setup in self._setups))]

    def _handle(self, frame: Frame) -> list[Frame]:
        if not isinstance(frame, OtResponsesFrame):
            return self._unexpected(frame)
        if len(frame.elements) != len(self.message_pairs):
            raise OTError("base OT response count does not match the transfer batch")
        encrypted = base_ot_batch_send(
            self.group, self.message_pairs, list(frame.elements), self._setups
        )
        self.finished = True
        return [OtCipherPairsFrame(tuple(encrypted))]


class BaseOtReceiverMachine(OtMachine):
    """Chou–Orlandi receiver: (publics) -> responses -> (pairs) -> messages."""

    def __init__(self, group: DHGroup, choices: list[int]) -> None:
        super().__init__(group)
        self.choices = list(choices)
        self._keys: list[bytes] = []

    def _start(self) -> list[Frame]:
        if not self.choices:
            self.result = []
            self.finished = True
        return []

    def _handle(self, frame: Frame) -> list[Frame]:
        if isinstance(frame, OtPublicsFrame):
            if len(frame.elements) != len(self.choices):
                raise OTError("base OT public count does not match the transfer batch")
            responses = []
            for public, choice in zip(frame.elements, self.choices):
                response, key = base_ot_receiver_respond(self.group, public, choice)
                responses.append(response)
                self._keys.append(key)
            return [OtResponsesFrame(tuple(responses))]
        if isinstance(frame, OtCipherPairsFrame):
            if not self._keys:
                raise OTError("base OT pairs arrived before the sender's publics")
            if len(frame.pairs) != len(self.choices):
                raise OTError("base OT pair count does not match the transfer batch")
            self.result = [
                _ot_encrypt(key, pair[choice], index)
                for index, (pair, choice, key) in enumerate(
                    zip(frame.pairs, self.choices, self._keys)
                )
            ]
            self.finished = True
            return []
        return self._unexpected(frame)


class IknpSenderMachine(OtMachine):
    """IKNP extension sender.

    Acts as base-OT *receiver* (choice vector ``s``) for the seed transfer,
    then turns the receiver's U-columns into its Q matrix and encrypts every
    message pair under row-derived pads (step 5 of the construction).
    """

    def __init__(self, group: DHGroup, message_pairs: list[tuple[bytes, bytes]]) -> None:
        super().__init__(group)
        self.message_pairs = list(message_pairs)
        if self.message_pairs:
            self.message_length = len(self.message_pairs[0][0])
            for m0, m1 in self.message_pairs:
                if len(m0) != self.message_length or len(m1) != self.message_length:
                    raise OTError("IKNP requires equal-length messages")
        self._kappa = SECURITY_PARAMETER
        self._s_bits = bytes_to_bits(secure_bytes(self._kappa // 8), self._kappa)
        self._base = BaseOtReceiverMachine(group, self._s_bits)
        self._seeds: list[bytes] | None = None

    def _start(self) -> list[Frame]:
        if not self.message_pairs:
            self.finished = True
            return []
        return self._base.start()

    def _handle(self, frame: Frame) -> list[Frame]:
        if isinstance(frame, (OtPublicsFrame, OtCipherPairsFrame)):
            frames = self._base.handle(frame)
            if self._base.finished:
                self._seeds = self._base.result
            return frames
        if isinstance(frame, OtExtColumnsFrame):
            if self._seeds is None:
                raise OTError("IKNP columns arrived before the seed base OTs completed")
            if len(frame.columns) != self._kappa:
                raise OTError("IKNP column count does not match the security parameter")
            count = len(self.message_pairs)
            column_bytes = (count + 7) // 8
            # Q_j = PRG(seed_j) XOR (s_j * U_j).
            q_columns = []
            for j in range(self._kappa):
                column = Prg(self._seeds[j], domain=b"iknp-column").read(column_bytes)
                if len(frame.columns[j]) != column_bytes:
                    raise OTError("IKNP column length does not match the transfer batch")
                if self._s_bits[j]:
                    column = xor_bytes(column, frame.columns[j])
                q_columns.append(column)
            # Row i satisfies q_i = t_i XOR (r_i * s): derive both pads, encrypt.
            s_bytes = bits_to_bytes(self._s_bits)
            encrypted_pairs = []
            for i in range(count):
                q_row = bits_to_bytes(_row_bits(q_columns, i, self._kappa))
                pad0 = prf(
                    sha256(b"iknp-pad", i.to_bytes(4, "big"), q_row), b"0", self.message_length
                )
                pad1 = prf(
                    sha256(b"iknp-pad", i.to_bytes(4, "big"), xor_bytes(q_row, s_bytes)),
                    b"1",
                    self.message_length,
                )
                m0, m1 = self.message_pairs[i]
                encrypted_pairs.append((xor_bytes(pad0, m0), xor_bytes(pad1, m1)))
            self.finished = True
            return [OtExtPairsFrame(tuple(encrypted_pairs))]
        return self._unexpected(frame)


class IknpReceiverMachine(OtMachine):
    """IKNP extension receiver.

    Initiates the reverse-direction seed base OTs (it is the base *sender*
    with :data:`SECURITY_PARAMETER` fresh seed pairs), publishes its
    U-columns, and finally decrypts the chosen message of every pair with
    pads derived from its T-matrix rows.
    """

    def __init__(self, group: DHGroup, choices: list[int]) -> None:
        super().__init__(group)
        self.choices = list(choices)
        self._kappa = SECURITY_PARAMETER
        self._seed_pairs = [
            (secure_bytes(16), secure_bytes(16)) for _ in range(self._kappa)
        ]
        self._base = BaseOtSenderMachine(group, self._seed_pairs)
        self._t_columns: list[bytes] = []

    def _start(self) -> list[Frame]:
        if not self.choices:
            self.result = []
            self.finished = True
            return []
        return self._base.start()

    def _handle(self, frame: Frame) -> list[Frame]:
        if isinstance(frame, OtResponsesFrame):
            frames = self._base.handle(frame)
            # The seed transfer is done from this party's side; stretch both
            # seeds per column and publish U = T XOR PRG(seed1) XOR r.
            column_bytes = (len(self.choices) + 7) // 8
            choice_vector = bits_to_bytes(self.choices)
            u_columns = []
            for seed0, seed1 in self._seed_pairs:
                t_col = Prg(seed0, domain=b"iknp-column").read(column_bytes)
                g1 = Prg(seed1, domain=b"iknp-column").read(column_bytes)
                self._t_columns.append(t_col)
                u_columns.append(xor_bytes(xor_bytes(t_col, g1), choice_vector))
            return frames + [OtExtColumnsFrame(tuple(u_columns))]
        if isinstance(frame, OtExtPairsFrame):
            if not self._t_columns:
                raise OTError("IKNP pairs arrived before the seed base OTs completed")
            if len(frame.pairs) != len(self.choices):
                raise OTError("IKNP pair count does not match the transfer batch")
            results = []
            for i, choice in enumerate(self.choices):
                t_row = bits_to_bytes(_row_bits(self._t_columns, i, self._kappa))
                chosen = frame.pairs[i][choice]
                pad = prf(
                    sha256(b"iknp-pad", i.to_bytes(4, "big"), t_row),
                    bytes([48 + choice]),
                    len(chosen),
                )
                results.append(xor_bytes(pad, chosen))
            self.result = results
            self.finished = True
            return []
        return self._unexpected(frame)


# ---------------------------------------------------------------------------
# Persistent OT extension (the amortised IKNP usage)
#
# IKNP's whole point is that the expensive base OTs run *once* per party pair
# and are then stretched, with symmetric operations only, for as many
# transfers as all later executions need.  The pool below is that pair-level
# state: the extension sender keeps its secret column-choice vector ``s`` and
# the kappa received seeds; the receiver keeps the kappa seed pairs and a
# global transfer counter.  Each batch derives its T/U column chunk from a
# per-batch domain-separated PRG (keyed by the batch's global start index),
# so concurrent sessions of the same pair can extend in any arrival order,
# and every pad is bound to a globally unique transfer index.
#
# Reusing ``s`` across extensions is the standard amortised IKNP deployment
# (passively secure, like the rest of this prototype).
# ---------------------------------------------------------------------------
@dataclass
class OtExtensionSenderState:
    """The extension sender's half of the pair state (holds ``s`` + seeds).

    ``next_index`` is a high-water mark mirroring the receiver's allocation
    counter; ``claimed`` records every transfer-index range this sender has
    already extended.  Both are pad cursors that must survive a process
    restart (they ride in the pool's :class:`~repro.twopc.wire.SessionState`
    snapshot): pads are bound to global transfer indices, and encrypting two
    different message batches under the same index would hand an adversary
    the XOR of the two — which is exactly what a replayed columns frame
    tries to provoke, so :meth:`claim` rejects overlaps outright.
    """

    s_bits: list[int]
    seed_keys: list[bytes]
    next_index: int = 0
    claimed: list[tuple[int, int]] = field(default_factory=list)

    def claim(self, start: int, count: int) -> None:
        """Reserve ``[start, start + count)``; reject any overlap as a replay."""
        if start < 0:
            raise OTError("IKNP extension batch starts at a negative transfer index")
        if count <= 0:
            return
        end = start + count
        for begin, length in self.claimed:
            if start < begin + length and begin < end:
                raise OTError(
                    "IKNP extension batch overlaps already-extended transfer "
                    "indices (replayed or forged columns would reuse pads)"
                )
        self.claimed.append((start, count))
        self._coalesce()
        self.next_index = max(self.next_index, end)

    def _coalesce(self) -> None:
        """Merge adjacent claimed ranges so the ledger stays O(holes)."""
        self.claimed.sort()
        merged: list[tuple[int, int]] = []
        for begin, length in self.claimed:
            if merged and merged[-1][0] + merged[-1][1] == begin:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((begin, length))
        self.claimed = merged


@dataclass
class OtExtensionReceiverState:
    """The extension receiver's half of the pair state (holds the seed pairs)."""

    seed_pairs: list[tuple[bytes, bytes]]
    next_index: int = 0

    def allocate(self, count: int) -> int:
        """Reserve *count* globally unique transfer indices for one batch."""
        start = self.next_index
        self.next_index += count
        return start


OT_POOL_STATE_VERSION = 1


@dataclass
class OtExtensionPool:
    """Both halves of one directional pair's persistent extension state.

    In a deployment each party holds only its own half; keeping the two
    halves in one object mirrors the in-process arrangement of the rest of
    the repository.  ``ready`` becomes true after :func:`initialize_ot_pool`
    has run the one-time base OTs.

    The pool is pair-level state exactly like the encrypted model, so it is
    part of the session-persistence contract: :meth:`snapshot` captures the
    seeds and pad cursors as an ``OT_POOL`` :class:`SessionState`, and
    :meth:`restore` rebuilds a pool whose later extensions are bit-identical
    — which is what lets in-flight Yao rounds survive a worker restart.
    """

    sender_state: OtExtensionSenderState | None = None
    receiver_state: OtExtensionReceiverState | None = None

    @property
    def ready(self) -> bool:
        return self.sender_state is not None and self.receiver_state is not None

    def snapshot(self) -> SessionState:
        sender = None
        if self.sender_state is not None:
            sender = {
                "kappa": len(self.sender_state.s_bits),
                "s_bits": bits_to_bytes(self.sender_state.s_bits),
                "seed_keys": list(self.sender_state.seed_keys),
                "next_index": self.sender_state.next_index,
                "claimed": [[begin, length] for begin, length in self.sender_state.claimed],
            }
        receiver = None
        if self.receiver_state is not None:
            receiver = {
                "seed_pairs": [
                    [seed0, seed1] for seed0, seed1 in self.receiver_state.seed_pairs
                ],
                "next_index": self.receiver_state.next_index,
            }
        return SessionState(
            kind=SessionStateKind.OT_POOL,
            version=OT_POOL_STATE_VERSION,
            payload=encode_state_payload(sender=sender, receiver=receiver),
        )

    @classmethod
    def restore(cls, state: SessionState) -> "OtExtensionPool":
        payload = decode_state_payload(state, SessionStateKind.OT_POOL, OT_POOL_STATE_VERSION)
        sender_state = None
        if payload["sender"] is not None:
            sender = payload["sender"]
            sender_state = OtExtensionSenderState(
                s_bits=bytes_to_bits(sender["s_bits"], sender["kappa"]),
                seed_keys=list(sender["seed_keys"]),
                next_index=sender["next_index"],
                claimed=[(begin, length) for begin, length in sender["claimed"]],
            )
        receiver_state = None
        if payload["receiver"] is not None:
            receiver = payload["receiver"]
            receiver_state = OtExtensionReceiverState(
                seed_pairs=[(seed0, seed1) for seed0, seed1 in receiver["seed_pairs"]],
                next_index=receiver["next_index"],
            )
        return cls(sender_state=sender_state, receiver_state=receiver_state)


def _pool_column(seed: bytes, start_index: int, column_bytes: int) -> bytes:
    """The T/U column chunk for the batch starting at *start_index*."""
    domain = b"iknp-pool-column" + start_index.to_bytes(8, "big")
    return Prg(seed, domain=domain).read(column_bytes)


def _pool_pad(global_index: int, row: bytes, tag: bytes, length: int) -> bytes:
    return prf(
        sha256(b"iknp-pool-pad", global_index.to_bytes(8, "big"), row), tag, length
    )


def initialize_ot_pool(
    group: DHGroup,
    channel: FramedChannel | None = None,
    sender_name: str = "sender",
    receiver_name: str = "receiver",
) -> OtExtensionPool:
    """Run the one-time seed base OTs for a party pair and return the pool.

    *sender_name* / *receiver_name* are the channel parties acting as
    extension sender (the Yao garbler side) and receiver.  The handshake
    costs :data:`SECURITY_PARAMETER` base OTs — a pair-setup expense on the
    order of shipping the encrypted model, amortised over every later email.
    """
    channel = channel or FramedChannel.loopback(
        "ot-pool", parties=(sender_name, receiver_name)
    )
    kappa = SECURITY_PARAMETER
    s_bits = bytes_to_bits(secure_bytes(kappa // 8), kappa)
    seed_pairs = [(secure_bytes(16), secure_bytes(16)) for _ in range(kappa)]
    # The extension *sender* is the base-OT receiver of the seeds (and vice
    # versa), exactly as inside a one-shot IKNP run.
    seed_receiver = BaseOtReceiverMachine(group, s_bits)
    seed_sender = BaseOtSenderMachine(group, seed_pairs)
    run_session_pair(channel, {sender_name: seed_receiver, receiver_name: seed_sender})
    assert seed_receiver.result is not None
    return OtExtensionPool(
        sender_state=OtExtensionSenderState(s_bits=s_bits, seed_keys=seed_receiver.result),
        receiver_state=OtExtensionReceiverState(seed_pairs=seed_pairs),
    )


class PooledIknpSenderMachine(OtMachine):
    """IKNP sender against persistent pair state: no base OTs, columns in."""

    def __init__(
        self,
        group: DHGroup,
        message_pairs: list[tuple[bytes, bytes]],
        state: OtExtensionSenderState,
    ) -> None:
        super().__init__(group)
        self.message_pairs = list(message_pairs)
        self.state = state
        if self.message_pairs:
            self.message_length = len(self.message_pairs[0][0])
            for m0, m1 in self.message_pairs:
                if len(m0) != self.message_length or len(m1) != self.message_length:
                    raise OTError("IKNP requires equal-length messages")

    def _start(self) -> list[Frame]:
        if not self.message_pairs:
            self.finished = True
        return []

    POOLED_OT_STATE_VERSION = 1

    def snapshot(self) -> SessionState:
        return SessionState(
            kind=SessionStateKind.POOLED_OT_SENDER,
            version=self.POOLED_OT_STATE_VERSION,
            payload=encode_state_payload(
                started=self.started,
                finished=self.finished,
                seconds=self.seconds,
                message_pairs=[[m0, m1] for m0, m1 in self.message_pairs],
            ),
        )

    @classmethod
    def restore(
        cls, group: DHGroup, state: SessionState, pool_state: OtExtensionSenderState
    ) -> "PooledIknpSenderMachine":
        payload = decode_state_payload(
            state, SessionStateKind.POOLED_OT_SENDER, cls.POOLED_OT_STATE_VERSION
        )
        machine = cls(
            group,
            [(m0, m1) for m0, m1 in payload["message_pairs"]],
            pool_state,
        )
        _restore_base_fields(machine, payload)
        return machine

    def _handle(self, frame: Frame) -> list[Frame]:
        if not isinstance(frame, OtExtColumnsFrame):
            return self._unexpected(frame)
        kappa = SECURITY_PARAMETER
        if len(frame.columns) != kappa:
            raise OTError("IKNP column count does not match the security parameter")
        count = len(self.message_pairs)
        column_bytes = (count + 7) // 8
        start = frame.start_index
        self.state.claim(start, count)
        q_columns = []
        for j in range(kappa):
            column = _pool_column(self.state.seed_keys[j], start, column_bytes)
            if len(frame.columns[j]) != column_bytes:
                raise OTError("IKNP column length does not match the transfer batch")
            if self.state.s_bits[j]:
                column = xor_bytes(column, frame.columns[j])
            q_columns.append(column)
        s_bytes = bits_to_bytes(self.state.s_bits)
        encrypted_pairs = []
        for i in range(count):
            q_row = bits_to_bytes(_row_bits(q_columns, i, kappa))
            pad0 = _pool_pad(start + i, q_row, b"0", self.message_length)
            pad1 = _pool_pad(start + i, xor_bytes(q_row, s_bytes), b"1", self.message_length)
            m0, m1 = self.message_pairs[i]
            encrypted_pairs.append((xor_bytes(pad0, m0), xor_bytes(pad1, m1)))
        self.finished = True
        return [OtExtPairsFrame(tuple(encrypted_pairs))]


class PooledIknpReceiverMachine(OtMachine):
    """IKNP receiver against persistent pair state: allocate, extend, decrypt."""

    def __init__(
        self, group: DHGroup, choices: list[int], state: OtExtensionReceiverState
    ) -> None:
        super().__init__(group)
        self.choices = list(choices)
        self.state = state
        self._start_index = 0
        self._t_columns: list[bytes] = []

    def _start(self) -> list[Frame]:
        if not self.choices:
            self.result = []
            self.finished = True
            return []
        count = len(self.choices)
        self._start_index = self.state.allocate(count)
        column_bytes = (count + 7) // 8
        choice_vector = bits_to_bytes(self.choices)
        u_columns = []
        for seed0, seed1 in self.state.seed_pairs:
            t_col = _pool_column(seed0, self._start_index, column_bytes)
            g1 = _pool_column(seed1, self._start_index, column_bytes)
            self._t_columns.append(t_col)
            u_columns.append(xor_bytes(xor_bytes(t_col, g1), choice_vector))
        return [OtExtColumnsFrame(tuple(u_columns), start_index=self._start_index)]

    POOLED_OT_STATE_VERSION = 1

    def snapshot(self) -> SessionState:
        return SessionState(
            kind=SessionStateKind.POOLED_OT_RECEIVER,
            version=self.POOLED_OT_STATE_VERSION,
            payload=encode_state_payload(
                started=self.started,
                finished=self.finished,
                seconds=self.seconds,
                count=len(self.choices),
                choices=bits_to_bytes(self.choices) if self.choices else b"",
                start_index=self._start_index,
                result=None if self.result is None else list(self.result),
            ),
        )

    @classmethod
    def restore(
        cls, group: DHGroup, state: SessionState, pool_state: OtExtensionReceiverState
    ) -> "PooledIknpReceiverMachine":
        payload = decode_state_payload(
            state, SessionStateKind.POOLED_OT_RECEIVER, cls.POOLED_OT_STATE_VERSION
        )
        count = payload["count"]
        choices = bytes_to_bits(payload["choices"], count) if count else []
        machine = cls(group, choices, pool_state)
        _restore_base_fields(machine, payload)
        machine._start_index = payload["start_index"]
        if payload["result"] is not None:
            machine.result = list(payload["result"])
        if machine.started and not machine.finished and machine.choices:
            # Re-derive the T columns exactly as ``_start`` did — the pool
            # seeds and the batch's start index pin them bit-identically,
            # and the already-allocated index range must NOT be re-reserved.
            column_bytes = (count + 7) // 8
            for seed0, _ in pool_state.seed_pairs:
                machine._t_columns.append(
                    _pool_column(seed0, machine._start_index, column_bytes)
                )
        return machine

    def _handle(self, frame: Frame) -> list[Frame]:
        if not isinstance(frame, OtExtPairsFrame):
            return self._unexpected(frame)
        if len(frame.pairs) != len(self.choices):
            raise OTError("IKNP pair count does not match the transfer batch")
        kappa = SECURITY_PARAMETER
        results = []
        for i, choice in enumerate(self.choices):
            t_row = bits_to_bytes(_row_bits(self._t_columns, i, kappa))
            chosen = frame.pairs[i][choice]
            pad = _pool_pad(self._start_index + i, t_row, bytes([48 + choice]), len(chosen))
            results.append(xor_bytes(pad, chosen))
        self.result = results
        self.finished = True
        return []


def make_ot_sender(
    group: DHGroup,
    message_pairs: list[tuple[bytes, bytes]],
    mode: str = "iknp",
    pool: OtExtensionPool | None = None,
) -> OtMachine:
    """Build the sender-side machine for the given OT flavour.

    A ready *pool* (``mode="iknp"`` only) selects the persistent-extension
    machine: no base OTs, one round of symmetric work per batch.
    """
    if mode == "base":
        return BaseOtSenderMachine(group, message_pairs)
    if mode == "iknp":
        if pool is not None and pool.ready:
            return PooledIknpSenderMachine(group, message_pairs, pool.sender_state)
        return IknpSenderMachine(group, message_pairs)
    raise OTError(f"unknown OT mode {mode!r}")


def make_ot_receiver(
    group: DHGroup,
    choices: list[int],
    mode: str = "iknp",
    pool: OtExtensionPool | None = None,
) -> OtMachine:
    """Build the receiver-side machine for the given OT flavour."""
    if mode == "base":
        return BaseOtReceiverMachine(group, choices)
    if mode == "iknp":
        if pool is not None and pool.ready:
            return PooledIknpReceiverMachine(group, choices, pool.receiver_state)
        return IknpReceiverMachine(group, choices)
    raise OTError(f"unknown OT mode {mode!r}")


# ---------------------------------------------------------------------------
# Whole-protocol driver (pumps both machines in-process over a framed channel)
# ---------------------------------------------------------------------------
class ObliviousTransfer:
    """Batch 1-out-of-2 OT of fixed-length messages.

    ``mode="base"`` runs one DH-based OT per transfer; ``mode="iknp"`` runs
    :data:`SECURITY_PARAMETER` base OTs and extends.  :meth:`run` drives a
    sender and a receiver machine over a framed *channel*, so every byte that
    would cross the network is serialized and accounted exactly as in a real
    deployment.
    """

    def __init__(self, group: DHGroup, mode: str = "iknp") -> None:
        if mode not in ("base", "iknp"):
            raise OTError(f"unknown OT mode {mode!r}")
        self.group = group
        self.mode = mode

    def run(
        self,
        channel: FramedChannel | None,
        sender_pairs: list[tuple[bytes, bytes]],
        receiver_choices: list[int],
        sender_name: str = "sender",
        receiver_name: str = "receiver",
    ) -> list[bytes]:
        if len(sender_pairs) != len(receiver_choices):
            raise OTError("sender and receiver disagree on the number of transfers")
        if not sender_pairs:
            return []
        channel = channel or FramedChannel.loopback(
            "ot", parties=(sender_name, receiver_name)
        )
        sender = make_ot_sender(self.group, sender_pairs, self.mode)
        receiver = make_ot_receiver(self.group, receiver_choices, self.mode)
        run_session_pair(channel, {sender_name: sender, receiver_name: receiver})
        assert receiver.result is not None
        return receiver.result
