"""Polynomial-ring arithmetic for the Ring-LWE cryptosystem of §4.1.

Elements of ``R_q = Z_q[x]/(x^n + 1)`` are stored in a residue-number-system
(RNS / "double-CRT") representation: one NumPy int64 vector per 31-bit prime
factor of ``q``.  Each element carries *two* interchangeable forms:

* **coefficient domain** (``residues``) — the polynomial's coefficients mod
  each prime; and
* **evaluation domain** (``spectra``) — its negacyclic NTT per prime, where
  ring multiplication is a pointwise product.

Either form is materialised lazily from the other and cached, so key material
is transformed once at key generation and ciphertexts stay resident in the
evaluation domain across encryption, homomorphic accumulation and slot
shifts; only decryption pays an inverse transform and a (vectorised) CRT
reconstruction of full-width integers.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.ntt import get_ntt_plan, ntt_friendly_primes
from repro.crypto.numtheory import invmod
from repro.crypto.prg import Prg
from repro.exceptions import ParameterError
from repro.utils.rand import secure_bytes


class RingContext:
    """Shared parameters for polynomials in ``Z_q[x]/(x^n + 1)`` with RNS modulus q."""

    def __init__(self, ring_degree: int, primes: list[int], backend: str = "auto") -> None:
        if not primes:
            raise ParameterError("at least one RNS prime is required")
        self.n = ring_degree
        self.primes = list(primes)
        self.modulus = 1
        for prime in primes:
            self.modulus *= prime
        # All transform state (twiddles, bit-reversal, backend choice, stacked
        # monomial spectra) lives in the shared per-(degree, prime-set) plan.
        self.plan = get_ntt_plan(ring_degree, primes, backend)
        self.ntt = self.plan.contexts
        # Broadcast helper: shape (num_primes, 1) so (primes, n) arrays reduce
        # prime-wise with a single vectorised `%`.
        self.primes_column = np.array(self.primes, dtype=np.int64)[:, None]
        self.primes_column.setflags(write=False)
        # Precompute CRT reconstruction coefficients: for residues r_i,
        # value = sum_i r_i * M_i * (M_i^{-1} mod p_i) mod q, where M_i = q / p_i.
        # (Used by the object-dtype reference path and pinned by tests.)
        self._crt_terms = []
        for prime in primes:
            partial = self.modulus // prime
            self._crt_terms.append(partial * invmod(partial % prime, prime))
        # Garner mixed-radix precomputation for the int64 fast path:
        # prefix_i = p_0 * ... * p_{i-1} (prefix_0 = 1), each reduced modulo
        # every later prime, plus the inverse of prefix_j mod p_j that the
        # digit extraction divides by.
        self._garner_prefixes: list[int] = []
        prefix = 1
        for prime in primes:
            self._garner_prefixes.append(prefix)
            prefix *= prime
        self._garner_prefix_mod = [
            [self._garner_prefixes[i] % primes[j] for i in range(j)]
            for j in range(len(primes))
        ]
        self._garner_prefix_inv = [
            invmod(self._garner_prefixes[j] % primes[j], primes[j])
            for j in range(len(primes))
        ]
        # With ≤ 31-bit primes the mixed-radix digits are always int64-safe;
        # the final recombination stays int64 whenever q itself fits.
        self._int64_crt = self.modulus < (1 << 62)

    @classmethod
    def create(
        cls,
        ring_degree: int = 1024,
        prime_bits: int = 31,
        prime_count: int = 2,
        backend: str = "auto",
    ) -> "RingContext":
        """Build a context with freshly discovered NTT-friendly primes."""
        primes = ntt_friendly_primes(prime_count, prime_bits, ring_degree)
        return cls(ring_degree, primes, backend=backend)

    @property
    def modulus_bits(self) -> int:
        return self.modulus.bit_length()

    # -- transforms ----------------------------------------------------------
    def forward_transform(self, residues: np.ndarray) -> np.ndarray:
        """Per-prime forward NTT of a ``(..., num_primes, n)`` residue array."""
        return self.plan.forward(residues)

    def inverse_transform(self, spectra: np.ndarray) -> np.ndarray:
        """Per-prime inverse NTT of a ``(..., num_primes, n)`` spectrum array."""
        return self.plan.inverse(spectra)

    def monomial_spectra(self, exponent: int) -> np.ndarray:
        """Stacked per-prime spectra of ``x^exponent``, shape ``(num_primes, n)``."""
        return self.plan.monomial_spectra(exponent)

    def monomial_spectra_many(self, exponents: list[int] | tuple[int, ...]) -> np.ndarray:
        """Stacked spectra for many shifts, shape ``(len(exponents), num_primes, n)``."""
        return self.plan.monomial_spectra_many(exponents)

    def reduce_scalar(self, scalar: int) -> np.ndarray:
        """Reduce an integer modulo every prime; shape ``(num_primes, 1)``."""
        return np.array([scalar % prime for prime in self.primes], dtype=np.int64)[:, None]

    # -- CRT reconstruction ---------------------------------------------------
    def crt_reconstruct_array(self, residues: np.ndarray) -> np.ndarray:
        """Combine RNS residues (shape ``(..., num_primes, n)``) into centered integers.

        Garner's mixed-radix algorithm with the tables precomputed in
        ``__init__``: every digit extraction is a vectorised int64 pass (the
        operands are all below the 31-bit primes, so products stay under
        2^62), and the final recombination stays int64 whenever ``q`` fits —
        the default two-prime parameter set — so a whole decrypt stack never
        leaves machine words.  When ``q`` exceeds 62 bits only the single
        final combination touches object dtype (once per stack, not once per
        element).  Output values and shape ``(..., n)`` are bit-identical to
        :meth:`crt_reconstruct_array_reference`.
        """
        if residues.dtype == object:
            return self.crt_reconstruct_array_reference(residues)
        q = self.modulus
        half = q // 2
        primes = self.primes
        reduced = residues.astype(np.int64) % self.primes_column
        digits = [reduced[..., 0, :]]
        for j in range(1, len(primes)):
            prime_j = primes[j]
            partial = digits[0] % prime_j
            for i in range(1, j):
                partial = (partial + digits[i] * self._garner_prefix_mod[j][i]) % prime_j
            digits.append(
                (reduced[..., j, :] - partial) * self._garner_prefix_inv[j] % prime_j
            )
        if self._int64_crt:
            total = digits[0]
            for j in range(1, len(primes)):
                total = total + digits[j] * self._garner_prefixes[j]
        else:
            total = digits[0].astype(object)
            for j in range(1, len(primes)):
                total = total + digits[j].astype(object) * self._garner_prefixes[j]
        # Mixed-radix recombination is exact and already below q — no final
        # big-integer modulo is needed, only the centering.
        return np.where(total > half, total - q, total)

    def crt_reconstruct_array_reference(self, residues: np.ndarray) -> np.ndarray:
        """Object-dtype CRT reference (the pre-Garner implementation).

        Returns an object-dtype array of Python integers in ``(-q/2, q/2]``
        with shape ``(..., n)``.  Kept as the correctness pin for
        :meth:`crt_reconstruct_array` and as the fallback for object-dtype
        inputs wider than int64.
        """
        q = self.modulus
        half = q // 2
        stacked = residues.astype(object)
        total = stacked[..., 0, :] * self._crt_terms[0]
        for index in range(1, len(self.primes)):
            total = total + stacked[..., index, :] * self._crt_terms[index]
        total = total % q
        return np.where(total > half, total - q, total)

    def crt_reconstruct(self, residues: np.ndarray) -> list[int]:
        """Combine RNS residues (shape ``(num_primes, n)``) into centered integers.

        Returns coefficients in ``(-q/2, q/2]`` as Python integers.
        """
        return self.crt_reconstruct_array(residues).tolist()


class RingPolynomial:
    """A ring element in RNS representation with lazily cached dual domains.

    At least one of ``residues`` (coefficient domain) and ``spectra``
    (evaluation domain) is always present; accessing the missing one runs the
    per-prime (inverse) NTT once and caches the result.  Arithmetic operates
    in whichever domain both operands already inhabit, so chains of
    homomorphic operations on evaluation-domain ciphertexts never transform.
    """

    __slots__ = ("context", "_residues", "_spectra")

    def __init__(
        self,
        context: RingContext,
        residues: np.ndarray | None = None,
        spectra: np.ndarray | None = None,
    ) -> None:
        if residues is None and spectra is None:
            raise ParameterError("a ring element needs residues or spectra")
        self.context = context
        self._residues = residues
        self._spectra = spectra

    # -- domain access -----------------------------------------------------
    @property
    def residues(self) -> np.ndarray:
        """Coefficient-domain form, shape ``(num_primes, n)`` (lazily materialised)."""
        if self._residues is None:
            self._residues = self.context.inverse_transform(self._spectra)
        return self._residues

    @property
    def spectra(self) -> np.ndarray:
        """Evaluation-domain form, shape ``(num_primes, n)`` (lazily materialised)."""
        if self._spectra is None:
            self._spectra = self.context.forward_transform(self._residues)
        return self._spectra

    @property
    def in_evaluation_domain(self) -> bool:
        """Whether the evaluation-domain form is currently materialised."""
        return self._spectra is not None

    # -- constructors ------------------------------------------------------
    @classmethod
    def zero(cls, context: RingContext) -> "RingPolynomial":
        return cls(context, np.zeros((len(context.primes), context.n), dtype=np.int64))

    @classmethod
    def from_int_coefficients(cls, context: RingContext, coefficients: list[int]) -> "RingPolynomial":
        """Build from signed integer coefficients (reduced modulo each prime)."""
        if len(coefficients) > context.n:
            raise ParameterError("too many coefficients for the ring degree")
        residues = np.zeros((len(context.primes), context.n), dtype=np.int64)
        if coefficients:
            try:
                signed = np.asarray(coefficients, dtype=np.int64)
            except OverflowError:
                for prime_index, prime in enumerate(context.primes):
                    row = [coefficient % prime for coefficient in coefficients]
                    residues[prime_index, : len(row)] = row
                return cls(context, residues)
            residues[:, : len(coefficients)] = signed[None, :] % context.primes_column
        return cls(context, residues)

    @classmethod
    def from_spectra(cls, context: RingContext, spectra: np.ndarray) -> "RingPolynomial":
        """Wrap an already-reduced evaluation-domain array (no copy)."""
        return cls(context, spectra=spectra)

    @classmethod
    def sample_uniform(cls, context: RingContext, prg: Prg | None = None) -> "RingPolynomial":
        """Uniform ring element (public-key component ``a``).

        Coefficients are drawn independently per RNS prime by reducing 64-bit
        PRG words modulo each < 2^31 prime; the modulo bias is below 2^-33.
        """
        prg = prg or Prg(secure_bytes(32), domain=b"ring-uniform")
        residues = np.zeros((len(context.primes), context.n), dtype=np.int64)
        for prime_index, prime in enumerate(context.primes):
            raw = np.frombuffer(prg.read(8 * context.n), dtype=">u8")
            residues[prime_index] = (raw % np.uint64(prime)).astype(np.int64)
        return cls(context, residues)

    @classmethod
    def _from_signed_vector(cls, context: RingContext, signed: np.ndarray) -> "RingPolynomial":
        return cls(context, signed[None, :] % context.primes_column)

    @classmethod
    def sample_ternary(cls, context: RingContext, prg: Prg | None = None) -> "RingPolynomial":
        """Ternary element with coefficients in {-1, 0, 1} (secrets, encryption randomness)."""
        prg = prg or Prg(secure_bytes(32), domain=b"ring-ternary")
        raw = np.frombuffer(prg.read(context.n), dtype=np.uint8)
        signed = (raw % np.uint8(3)).astype(np.int64) - 1
        return cls._from_signed_vector(context, signed)

    @classmethod
    def sample_noise(cls, context: RingContext, bound: int = 4, prg: Prg | None = None) -> "RingPolynomial":
        """Small noise element with coefficients uniform in ``[-bound, bound]``."""
        if bound < 0:
            raise ParameterError("noise bound must be non-negative")
        prg = prg or Prg(secure_bytes(32), domain=b"ring-noise")
        raw = np.frombuffer(prg.read(2 * context.n), dtype=">u2")
        signed = (raw % np.uint16(2 * bound + 1)).astype(np.int64) - bound
        return cls._from_signed_vector(context, signed)

    # -- arithmetic ----------------------------------------------------------
    def _check_same_ring(self, other: "RingPolynomial") -> None:
        if self.context is not other.context and self.context.primes != other.context.primes:
            raise ParameterError("ring elements belong to different rings")

    def _pair_arrays(self, other: "RingPolynomial") -> tuple[np.ndarray, np.ndarray, bool]:
        """Pick the domain for a linear operation: ``(left, right, in_spectra)``.

        Linear maps commute with the NTT, so addition and negation are valid
        pointwise in either domain; prefer the one both operands already have
        (evaluation domain wins ties — that is where ciphertexts live).
        """
        if self._spectra is not None and other._spectra is not None:
            return self._spectra, other._spectra, True
        if self._residues is not None and other._residues is not None:
            return self._residues, other._residues, False
        return self.spectra, other.spectra, True

    def _wrap(self, array: np.ndarray, in_spectra: bool) -> "RingPolynomial":
        if in_spectra:
            return RingPolynomial(self.context, spectra=array)
        return RingPolynomial(self.context, residues=array)

    def add(self, other: "RingPolynomial") -> "RingPolynomial":
        self._check_same_ring(other)
        left, right, in_spectra = self._pair_arrays(other)
        return self._wrap((left + right) % self.context.primes_column, in_spectra)

    def subtract(self, other: "RingPolynomial") -> "RingPolynomial":
        self._check_same_ring(other)
        left, right, in_spectra = self._pair_arrays(other)
        return self._wrap((left - right) % self.context.primes_column, in_spectra)

    def negate(self) -> "RingPolynomial":
        in_spectra = self._spectra is not None
        array = self._spectra if in_spectra else self._residues
        return self._wrap((-array) % self.context.primes_column, in_spectra)

    def scalar_multiply(self, scalar: int) -> "RingPolynomial":
        """Multiply every coefficient by an integer constant."""
        in_spectra = self._spectra is not None
        array = self._spectra if in_spectra else self._residues
        reduced = self.context.reduce_scalar(scalar)
        return self._wrap(array * reduced % self.context.primes_column, in_spectra)

    def monomial_multiply(self, exponent: int) -> "RingPolynomial":
        """Multiply by ``x^exponent`` in the negacyclic ring.

        Coefficient ``i`` moves to ``i + exponent``; coefficients that wrap
        past ``n`` reappear at the bottom negated (because ``x^n = -1``).
        This is the homomorphic "shift" operation Pretzel's packing uses
        (§4.2, §4.3).  Evaluation-domain elements shift via a pointwise
        product with the cached spectrum of ``x^exponent`` — no transform.
        """
        n = self.context.n
        exponent %= 2 * n
        if self._spectra is not None:
            mono = self.context.monomial_spectra(exponent)
            spectra = self._spectra * mono % self.context.primes_column
            return RingPolynomial(self.context, spectra=spectra)
        effective = exponent % n
        sign_flip = (exponent // n) % 2 == 1
        residues = np.empty_like(self._residues)
        for index, prime in enumerate(self.context.primes):
            row = self._residues[index]
            if effective == 0:
                shifted = row.copy()
            else:
                shifted = np.empty_like(row)
                shifted[effective:] = row[: n - effective]
                shifted[:effective] = (-row[n - effective :]) % prime
            if sign_flip:
                shifted = (-shifted) % prime
            residues[index] = shifted
        return RingPolynomial(self.context, residues)

    def multiply(self, other: "RingPolynomial") -> "RingPolynomial":
        """Full negacyclic polynomial product — pointwise in the evaluation domain."""
        self._check_same_ring(other)
        spectra = self.spectra * other.spectra % self.context.primes_column
        return RingPolynomial(self.context, spectra=spectra)

    # -- conversions ----------------------------------------------------------
    def to_centered_coefficients(self) -> list[int]:
        """Full-precision centered coefficients in ``(-q/2, q/2]``."""
        return self.context.crt_reconstruct(self.residues)

    def copy(self) -> "RingPolynomial":
        return RingPolynomial(
            self.context,
            residues=None if self._residues is None else self._residues.copy(),
            spectra=None if self._spectra is None else self._spectra.copy(),
        )

    def serialized_size_bytes(self) -> int:
        """Wire size: n coefficients of ceil(log2 q) bits each."""
        return (self.context.n * self.context.modulus_bits + 7) // 8
