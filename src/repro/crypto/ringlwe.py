"""Polynomial-ring arithmetic for the Ring-LWE cryptosystem of §4.1.

Elements of ``R_q = Z_q[x]/(x^n + 1)`` are stored in a residue-number-system
(RNS / "double-CRT") representation: one NumPy int64 vector of coefficients
per 31-bit prime factor of ``q``.  All ring operations (addition, negation,
scalar multiplication, monomial multiplication — the "left shift" of §4.2 —
and full polynomial multiplication via the NTT) act prime-wise and stay
inside int64 arithmetic.  Only decryption reconstructs full-width integers
via the CRT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.ntt import NttContext, ntt_friendly_primes
from repro.crypto.numtheory import invmod
from repro.crypto.prg import Prg
from repro.exceptions import ParameterError
from repro.utils.rand import secure_bytes


class RingContext:
    """Shared parameters for polynomials in ``Z_q[x]/(x^n + 1)`` with RNS modulus q."""

    def __init__(self, ring_degree: int, primes: list[int]) -> None:
        if not primes:
            raise ParameterError("at least one RNS prime is required")
        self.n = ring_degree
        self.primes = list(primes)
        self.modulus = 1
        for prime in primes:
            self.modulus *= prime
        self.ntt = [NttContext(ring_degree, prime) for prime in primes]
        # Precompute CRT reconstruction coefficients: for residues r_i,
        # value = sum_i r_i * M_i * (M_i^{-1} mod p_i) mod q, where M_i = q / p_i.
        self._crt_terms = []
        for prime in primes:
            partial = self.modulus // prime
            self._crt_terms.append(partial * invmod(partial % prime, prime))

    @classmethod
    def create(cls, ring_degree: int = 1024, prime_bits: int = 31, prime_count: int = 2) -> "RingContext":
        """Build a context with freshly discovered NTT-friendly primes."""
        primes = ntt_friendly_primes(prime_count, prime_bits, ring_degree)
        return cls(ring_degree, primes)

    @property
    def modulus_bits(self) -> int:
        return self.modulus.bit_length()

    def crt_reconstruct(self, residues: np.ndarray) -> list[int]:
        """Combine RNS residues (shape ``(num_primes, n)``) into centered integers.

        Returns coefficients in ``(-q/2, q/2]`` as Python integers.
        """
        q = self.modulus
        half = q // 2
        coefficients = []
        for column in range(self.n):
            value = 0
            for prime_index in range(len(self.primes)):
                value += int(residues[prime_index, column]) * self._crt_terms[prime_index]
            value %= q
            if value > half:
                value -= q
            coefficients.append(value)
        return coefficients


@dataclass
class RingPolynomial:
    """A ring element in RNS coefficient representation."""

    context: RingContext
    residues: np.ndarray  # shape (num_primes, n), dtype int64, each row mod primes[i]

    # -- constructors ------------------------------------------------------
    @classmethod
    def zero(cls, context: RingContext) -> "RingPolynomial":
        return cls(context, np.zeros((len(context.primes), context.n), dtype=np.int64))

    @classmethod
    def from_int_coefficients(cls, context: RingContext, coefficients: list[int]) -> "RingPolynomial":
        """Build from signed integer coefficients (reduced modulo each prime)."""
        if len(coefficients) > context.n:
            raise ParameterError("too many coefficients for the ring degree")
        residues = np.zeros((len(context.primes), context.n), dtype=np.int64)
        for prime_index, prime in enumerate(context.primes):
            row = [coefficient % prime for coefficient in coefficients]
            residues[prime_index, : len(row)] = row
        return cls(context, residues)

    @classmethod
    def sample_uniform(cls, context: RingContext, prg: Prg | None = None) -> "RingPolynomial":
        """Uniform ring element (public-key component ``a``).

        Coefficients are drawn independently per RNS prime by reducing 64-bit
        PRG words modulo each < 2^31 prime; the modulo bias is below 2^-33.
        """
        prg = prg or Prg(secure_bytes(32), domain=b"ring-uniform")
        residues = np.zeros((len(context.primes), context.n), dtype=np.int64)
        for prime_index, prime in enumerate(context.primes):
            raw = np.frombuffer(prg.read(8 * context.n), dtype=">u8")
            residues[prime_index] = (raw % np.uint64(prime)).astype(np.int64)
        return cls(context, residues)

    @classmethod
    def _from_signed_vector(cls, context: RingContext, signed: np.ndarray) -> "RingPolynomial":
        residues = np.zeros((len(context.primes), context.n), dtype=np.int64)
        for prime_index, prime in enumerate(context.primes):
            residues[prime_index] = signed % prime
        return cls(context, residues)

    @classmethod
    def sample_ternary(cls, context: RingContext, prg: Prg | None = None) -> "RingPolynomial":
        """Ternary element with coefficients in {-1, 0, 1} (secrets, encryption randomness)."""
        prg = prg or Prg(secure_bytes(32), domain=b"ring-ternary")
        raw = np.frombuffer(prg.read(context.n), dtype=np.uint8)
        signed = (raw % np.uint8(3)).astype(np.int64) - 1
        return cls._from_signed_vector(context, signed)

    @classmethod
    def sample_noise(cls, context: RingContext, bound: int = 4, prg: Prg | None = None) -> "RingPolynomial":
        """Small noise element with coefficients uniform in ``[-bound, bound]``."""
        if bound < 0:
            raise ParameterError("noise bound must be non-negative")
        prg = prg or Prg(secure_bytes(32), domain=b"ring-noise")
        raw = np.frombuffer(prg.read(2 * context.n), dtype=">u2")
        signed = (raw % np.uint16(2 * bound + 1)).astype(np.int64) - bound
        return cls._from_signed_vector(context, signed)

    # -- arithmetic ----------------------------------------------------------
    def _check_same_ring(self, other: "RingPolynomial") -> None:
        if self.context is not other.context and self.context.primes != other.context.primes:
            raise ParameterError("ring elements belong to different rings")

    def add(self, other: "RingPolynomial") -> "RingPolynomial":
        self._check_same_ring(other)
        residues = np.empty_like(self.residues)
        for index, prime in enumerate(self.context.primes):
            residues[index] = (self.residues[index] + other.residues[index]) % prime
        return RingPolynomial(self.context, residues)

    def subtract(self, other: "RingPolynomial") -> "RingPolynomial":
        self._check_same_ring(other)
        residues = np.empty_like(self.residues)
        for index, prime in enumerate(self.context.primes):
            residues[index] = (self.residues[index] - other.residues[index]) % prime
        return RingPolynomial(self.context, residues)

    def negate(self) -> "RingPolynomial":
        residues = np.empty_like(self.residues)
        for index, prime in enumerate(self.context.primes):
            residues[index] = (-self.residues[index]) % prime
        return RingPolynomial(self.context, residues)

    def scalar_multiply(self, scalar: int) -> "RingPolynomial":
        """Multiply every coefficient by an integer constant."""
        residues = np.empty_like(self.residues)
        for index, prime in enumerate(self.context.primes):
            residues[index] = (self.residues[index] * (scalar % prime)) % prime
        return RingPolynomial(self.context, residues)

    def monomial_multiply(self, exponent: int) -> "RingPolynomial":
        """Multiply by ``x^exponent`` in the negacyclic ring.

        Coefficient ``i`` moves to ``i + exponent``; coefficients that wrap
        past ``n`` reappear at the bottom negated (because ``x^n = -1``).
        This is the homomorphic "shift" operation Pretzel's packing uses
        (§4.2, §4.3).
        """
        n = self.context.n
        exponent %= 2 * n
        residues = np.empty_like(self.residues)
        for index, prime in enumerate(self.context.primes):
            row = self.residues[index]
            shifted = np.empty_like(row)
            effective = exponent % n
            sign_flip = (exponent // n) % 2 == 1
            if effective == 0:
                shifted[:] = row
                wrapped = np.zeros(0, dtype=np.int64)
            else:
                shifted[effective:] = row[: n - effective]
                shifted[:effective] = (-row[n - effective :]) % prime
                wrapped = shifted[:effective]
            del wrapped
            if sign_flip:
                shifted = (-shifted) % prime
            residues[index] = shifted % prime
        return RingPolynomial(self.context, residues)

    def multiply(self, other: "RingPolynomial") -> "RingPolynomial":
        """Full negacyclic polynomial product via the NTT."""
        self._check_same_ring(other)
        residues = np.empty_like(self.residues)
        for index, ntt in enumerate(self.context.ntt):
            residues[index] = ntt.multiply(self.residues[index], other.residues[index])
        return RingPolynomial(self.context, residues)

    # -- conversions ----------------------------------------------------------
    def to_centered_coefficients(self) -> list[int]:
        """Full-precision centered coefficients in ``(-q/2, q/2]``."""
        return self.context.crt_reconstruct(self.residues)

    def copy(self) -> "RingPolynomial":
        return RingPolynomial(self.context, self.residues.copy())

    def serialized_size_bytes(self) -> int:
        """Wire size: n coefficients of ceil(log2 q) bits each."""
        return (self.context.n * self.context.modulus_bits + 7) // 8
