"""Hashing, HMAC and key-derivation helpers.

The garbled-circuit construction keys its gate "encryptions" off SHA-256; the
e2e module derives symmetric keys through HKDF; the replay-defence and the OT
extension need keyed PRFs.  Everything here wraps :mod:`hashlib`/:mod:`hmac`
from the standard library — no third-party crypto.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.exceptions import ParameterError

HASH_BYTES = 32


def sha256(*parts: bytes) -> bytes:
    """SHA-256 over the concatenation of *parts*."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.digest()


def sha256_int(*parts: bytes) -> int:
    """SHA-256 interpreted as a big-endian integer (used for Fiat–Shamir challenges)."""
    return int.from_bytes(sha256(*parts), "big")


def hmac_sha256(key: bytes, *parts: bytes) -> bytes:
    """HMAC-SHA-256 over the concatenation of *parts*."""
    mac = hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(part)
    return mac.digest()


def constant_time_equal(left: bytes, right: bytes) -> bool:
    """Constant-time comparison for MACs and tags."""
    return hmac.compare_digest(left, right)


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract (RFC 5869) with SHA-256."""
    if not salt:
        salt = b"\x00" * HASH_BYTES
    return hmac_sha256(salt, input_key_material)


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand (RFC 5869) with SHA-256."""
    if length <= 0 or length > 255 * HASH_BYTES:
        raise ParameterError("requested HKDF output length out of range")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(block) for block in blocks) < length:
        previous = hmac_sha256(pseudo_random_key, previous, info, bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(input_key_material: bytes, info: bytes, length: int, salt: bytes = b"") -> bytes:
    """One-shot HKDF (extract-then-expand)."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)


def hash_to_group_element(data: bytes, modulus: int) -> int:
    """Hash arbitrary bytes to an integer in ``[1, modulus)``.

    Used by the oblivious-transfer protocol to derive one-time pads from
    Diffie–Hellman shared values and by the DH parameter-agreement step
    (§3.3 footnote 3) to turn a joint transcript into group parameters.
    """
    if modulus <= 2:
        raise ParameterError("modulus too small")
    counter = 0
    needed_bytes = (modulus.bit_length() + 7) // 8 + 8
    stream = b""
    while len(stream) < needed_bytes:
        stream += sha256(data, counter.to_bytes(4, "big"))
        counter += 1
    return 1 + int.from_bytes(stream[:needed_bytes], "big") % (modulus - 1)
