"""Schnorr signatures over a safe-prime group.

The e2e module signs every outgoing email (§2.2 step 1 of the paper); §4.4
further notes that signatures are what make the replay/duplicate defence
meaningful ("emails have to be signed, otherwise an adversary can ... deny
service by pretending to be a sender and spuriously exhausting counters").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.dh import DHGroup, DHKeyPair
from repro.crypto.hashes import sha256_int
from repro.exceptions import SignatureError


@dataclass
class SchnorrPublicKey:
    group: DHGroup
    element: int


@dataclass
class SchnorrPrivateKey:
    group: DHGroup
    exponent: int

    def public_key(self) -> SchnorrPublicKey:
        return SchnorrPublicKey(self.group, self.group.power(self.group.g, self.exponent))


@dataclass
class SchnorrKeyPair:
    public: SchnorrPublicKey
    private: SchnorrPrivateKey

    @classmethod
    def generate(cls, group: DHGroup) -> "SchnorrKeyPair":
        dh = DHKeyPair.generate(group)
        return cls(
            public=SchnorrPublicKey(group, dh.public),
            private=SchnorrPrivateKey(group, dh.secret),
        )


@dataclass
class SchnorrSignature:
    """A (challenge, response) Fiat–Shamir Schnorr signature."""

    challenge: int
    response: int

    def encoded_size(self, group: DHGroup) -> int:
        """Approximate wire size in bytes (two exponent-sized integers)."""
        q_bytes = (group.q.bit_length() + 7) // 8
        return 2 * q_bytes


def _challenge(group: DHGroup, commitment: int, public_element: int, message: bytes) -> int:
    return sha256_int(
        b"pretzel-schnorr",
        group.encode_element(commitment),
        group.encode_element(public_element),
        message,
    ) % group.q


def sign(private_key: SchnorrPrivateKey, message: bytes) -> SchnorrSignature:
    """Sign *message* (Fiat–Shamir transformed Schnorr identification)."""
    group = private_key.group
    nonce = group.random_exponent()
    commitment = group.power(group.g, nonce)
    public_element = group.power(group.g, private_key.exponent)
    challenge = _challenge(group, commitment, public_element, message)
    response = (nonce + challenge * private_key.exponent) % group.q
    return SchnorrSignature(challenge=challenge, response=response)


def verify(public_key: SchnorrPublicKey, message: bytes, signature: SchnorrSignature) -> bool:
    """Return True iff *signature* is valid for *message* under *public_key*."""
    group = public_key.group
    if not (0 <= signature.challenge < group.q and 0 <= signature.response < group.q):
        return False
    if not group.is_valid_element(public_key.element):
        return False
    # commitment' = g^s * y^{-c}
    y_inv_c = pow(public_key.element, group.q - signature.challenge, group.p)
    commitment = (group.power(group.g, signature.response) * y_inv_c) % group.p
    expected = _challenge(group, commitment, public_key.element, message)
    return expected == signature.challenge


def verify_or_raise(public_key: SchnorrPublicKey, message: bytes, signature: SchnorrSignature) -> None:
    """Verify and raise :class:`SignatureError` on failure."""
    if not verify(public_key, message, signature):
        raise SignatureError("Schnorr signature verification failed")
