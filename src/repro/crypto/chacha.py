"""ChaCha20 stream cipher (RFC 8439), implemented from scratch.

The e2e module (§2.2 of the paper uses GPG; see DESIGN.md for the
substitution) encrypts email bodies with ChaCha20 under a per-message key
derived from an ElGamal KEM, then authenticates with HMAC-SHA256
(encrypt-then-MAC).  ChaCha20 is a pure ARX design, so a faithful and
reasonably fast pure-Python implementation is practical.
"""

from __future__ import annotations

import struct

from repro.exceptions import ParameterError

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, count: int) -> int:
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Produce one 64-byte ChaCha20 keystream block."""
    if len(key) != 32:
        raise ParameterError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ParameterError("ChaCha20 nonce must be 12 bytes")
    if not 0 <= counter < 2**32:
        raise ParameterError("ChaCha20 block counter out of range")
    state = list(_CONSTANTS)
    state += list(struct.unpack("<8L", key))
    state.append(counter)
    state += list(struct.unpack("<3L", nonce))
    working = list(state)
    for _ in range(10):
        # Column rounds.
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        # Diagonal rounds.
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    output = [(working[i] + state[i]) & _MASK32 for i in range(16)]
    return struct.pack("<16L", *output)


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, initial_counter: int = 1) -> bytes:
    """Encrypt or decrypt *data* with the ChaCha20 keystream (XOR is symmetric)."""
    out = bytearray(len(data))
    block_count = (len(data) + 63) // 64
    for block_index in range(block_count):
        keystream = chacha20_block(key, initial_counter + block_index, nonce)
        start = block_index * 64
        chunk = data[start : start + 64]
        for offset, byte in enumerate(chunk):
            out[start + offset] = byte ^ keystream[offset]
    return bytes(out)
