"""ChaCha20 stream cipher (RFC 8439), implemented from scratch.

The e2e module (§2.2 of the paper uses GPG; see DESIGN.md for the
substitution) encrypts email bodies with ChaCha20 under a per-message key
derived from an ElGamal KEM, then authenticates with HMAC-SHA256
(encrypt-then-MAC).  ChaCha20 is a pure ARX design, so a faithful and
reasonably fast pure-Python implementation is practical.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from repro.crypto.hashes import constant_time_equal, hkdf, hmac_sha256
from repro.exceptions import IntegrityError, ParameterError

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, count: int) -> int:
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Produce one 64-byte ChaCha20 keystream block."""
    if len(key) != 32:
        raise ParameterError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ParameterError("ChaCha20 nonce must be 12 bytes")
    if not 0 <= counter < 2**32:
        raise ParameterError("ChaCha20 block counter out of range")
    state = list(_CONSTANTS)
    state += list(struct.unpack("<8L", key))
    state.append(counter)
    state += list(struct.unpack("<3L", nonce))
    working = list(state)
    for _ in range(10):
        # Column rounds.
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        # Diagonal rounds.
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    output = [(working[i] + state[i]) & _MASK32 for i in range(16)]
    return struct.pack("<16L", *output)


def _quarter_round_vec(state: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    """The ARX quarter round over a (16, blocks) uint32 state matrix.

    uint32 arithmetic wraps mod 2**32 natively, so the scalar masking
    disappears; rotations are two shifts and an OR.
    """
    state[a] += state[b]
    x = state[d] ^ state[a]
    state[d] = (x << np.uint32(16)) | (x >> np.uint32(16))
    state[c] += state[d]
    x = state[b] ^ state[c]
    state[b] = (x << np.uint32(12)) | (x >> np.uint32(20))
    state[a] += state[b]
    x = state[d] ^ state[a]
    state[d] = (x << np.uint32(8)) | (x >> np.uint32(24))
    state[c] += state[d]
    x = state[b] ^ state[c]
    state[b] = (x << np.uint32(7)) | (x >> np.uint32(25))


def _keystream(key: bytes, nonce: bytes, initial_counter: int, block_count: int) -> bytes:
    """*block_count* consecutive keystream blocks, all rounds vectorized.

    Every block shares the same 20 rounds, so the whole run is 16 uint32
    lanes of length *block_count* — the same batched-transform trick the NTT
    uses.  Output is bit-identical to :func:`chacha20_block` per block.
    """
    state = np.empty((16, block_count), dtype=np.uint32)
    state[:4] = np.array(_CONSTANTS, dtype=np.uint32)[:, None]
    state[4:12] = np.frombuffer(key, dtype="<u4").astype(np.uint32)[:, None]
    state[12] = np.arange(initial_counter, initial_counter + block_count, dtype=np.uint64).astype(
        np.uint32
    )
    state[13:] = np.frombuffer(nonce, dtype="<u4").astype(np.uint32)[:, None]
    working = state.copy()
    for _ in range(10):
        # Column rounds.
        _quarter_round_vec(working, 0, 4, 8, 12)
        _quarter_round_vec(working, 1, 5, 9, 13)
        _quarter_round_vec(working, 2, 6, 10, 14)
        _quarter_round_vec(working, 3, 7, 11, 15)
        # Diagonal rounds.
        _quarter_round_vec(working, 0, 5, 10, 15)
        _quarter_round_vec(working, 1, 6, 11, 12)
        _quarter_round_vec(working, 2, 7, 8, 13)
        _quarter_round_vec(working, 3, 4, 9, 14)
    working += state
    # Serialize block-major: block i is its 16 words, each little-endian.
    return working.T.astype("<u4").tobytes()


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, initial_counter: int = 1) -> bytes:
    """Encrypt or decrypt *data* with the ChaCha20 keystream (XOR is symmetric)."""
    if len(key) != 32:
        raise ParameterError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ParameterError("ChaCha20 nonce must be 12 bytes")
    if not data:
        return b""
    block_count = (len(data) + 63) // 64
    if not (0 <= initial_counter and initial_counter + block_count <= 2**32):
        raise ParameterError("ChaCha20 block counter out of range")
    keystream = np.frombuffer(
        _keystream(key, nonce, initial_counter, block_count), dtype=np.uint8
    )
    plain = np.frombuffer(data, dtype=np.uint8)
    return (plain ^ keystream[: len(data)]).tobytes()


# ---------------------------------------------------------------------------
# A minimal sealed-blob AEAD (encrypt-then-MAC), for data at rest
# ---------------------------------------------------------------------------
#: First byte of every sealed blob.  Anything else — in particular the first
#: byte of a legacy plaintext checkpoint — is refused outright, never
#: misparsed as ciphertext.
SEALED_VERSION = 1
_NONCE_BYTES = 12
_TAG_BYTES = 32


def seal(key: bytes, plaintext: bytes, info: bytes = b"pretzel-sealed-blob") -> bytes:
    """Authenticated encryption of *plaintext* under *key* (32 bytes).

    The same encrypt-then-MAC construction the e2e mail layer uses, packaged
    for data at rest (checkpoint files): independent ChaCha20 and
    HMAC-SHA256 keys are derived from *key* via HKDF with *info* as the
    domain separator, and the blob is ``version | nonce | ciphertext | tag``
    with the version byte and nonce under the MAC.
    """
    if len(key) != 32:
        raise ParameterError("seal key must be 32 bytes")
    nonce = os.urandom(_NONCE_BYTES)
    encryption_key = hkdf(key, info + b"-enc", 32)
    mac_key = hkdf(key, info + b"-mac", 32)
    ciphertext = chacha20_xor(encryption_key, nonce, plaintext)
    tag = hmac_sha256(mac_key, bytes([SEALED_VERSION]), nonce, ciphertext)
    return bytes([SEALED_VERSION]) + nonce + ciphertext + tag


def open_sealed(key: bytes, blob: bytes, info: bytes = b"pretzel-sealed-blob") -> bytes:
    """Verify and decrypt a :func:`seal` blob; raises on any damage.

    Raises :class:`~repro.exceptions.IntegrityError` when the blob is too
    short, carries an unknown version byte (e.g. it is a legacy plaintext
    file), or fails MAC verification — the caller never sees unauthenticated
    plaintext.
    """
    if len(key) != 32:
        raise ParameterError("seal key must be 32 bytes")
    if len(blob) < 1 + _NONCE_BYTES + _TAG_BYTES:
        raise IntegrityError(f"sealed blob truncated at {len(blob)} bytes")
    if blob[0] != SEALED_VERSION:
        raise IntegrityError(
            f"unknown sealed-blob version {blob[0]} (a plaintext legacy blob is refused)"
        )
    nonce = blob[1 : 1 + _NONCE_BYTES]
    ciphertext = blob[1 + _NONCE_BYTES : -_TAG_BYTES]
    tag = blob[-_TAG_BYTES:]
    mac_key = hkdf(key, info + b"-mac", 32)
    expected = hmac_sha256(mac_key, blob[:1], nonce, ciphertext)
    if not constant_time_equal(tag, expected):
        raise IntegrityError("sealed blob failed authentication")
    encryption_key = hkdf(key, info + b"-enc", 32)
    return chacha20_xor(encryption_key, nonce, ciphertext)
