"""Randomness helpers.

Two flavours are provided:

* ``secure_*`` functions draw from :mod:`secrets` and are used by the actual
  cryptographic code (key generation, blinding noise, wire labels).
* :class:`DeterministicRandom` is a seeded, reproducible source used by the
  synthetic corpus generators and by tests/benchmarks that need repeatable
  workloads.  It is *never* used for key material.
"""

from __future__ import annotations

import hashlib
import random
import secrets

import numpy as np

from repro.exceptions import ParameterError


def secure_randbits(bits: int) -> int:
    """Uniform random integer with at most *bits* bits (cryptographic source)."""
    if bits <= 0:
        raise ParameterError("bits must be positive")
    return secrets.randbits(bits)


def secure_randbelow(upper: int) -> int:
    """Uniform random integer in ``[0, upper)`` (cryptographic source)."""
    if upper <= 0:
        raise ParameterError("upper bound must be positive")
    return secrets.randbelow(upper)


def secure_randint(low: int, high: int) -> int:
    """Uniform random integer in ``[low, high]`` inclusive (cryptographic source)."""
    if high < low:
        raise ParameterError("high must be >= low")
    return low + secrets.randbelow(high - low + 1)


def secure_bytes(length: int) -> bytes:
    """Cryptographically random byte string of the given length."""
    if length < 0:
        raise ParameterError("length must be non-negative")
    return secrets.token_bytes(length)


def secure_uniform_ints(upper: int, count: int, prg=None) -> list[int]:
    """*count* independent uniform integers in ``[0, upper)`` (cryptographic source).

    Power-of-two bounds up to 2^64 — the common case for slot-wide blinding
    noise — are drawn as the top bits of one vectorised byte-stream read
    (exactly uniform, no rejection).  Other bounds fall back to per-element
    :func:`secure_randbelow`.

    *prg* (any object with a ``read(num_bytes) -> bytes`` method, e.g.
    :class:`repro.crypto.prg.Prg`) replaces :mod:`secrets` as the byte source;
    the interpretation of the bytes is identical, so batched and sequential
    draws from one stream agree value for value — the bit-identity tests of
    the vectorised blinding path rely on this.  Deterministic draws are only
    defined for the power-of-two bounds (the rejection-free case).
    """
    if upper <= 0:
        raise ParameterError("upper bound must be positive")
    if count < 0:
        raise ParameterError("count must be non-negative")
    if count == 0:
        return []
    bits = upper.bit_length() - 1
    if upper == 1 << bits and 0 < bits <= 64:
        raw_bytes = secrets.token_bytes(8 * count) if prg is None else prg.read(8 * count)
        raw = np.frombuffer(raw_bytes, dtype="<u8")
        return (raw >> np.uint64(64 - bits)).tolist()
    if upper == 1:
        return [0] * count
    if prg is not None:
        raise ParameterError(
            "deterministic uniform draws require a power-of-two upper bound"
        )
    return [secrets.randbelow(upper) for _ in range(count)]


def secure_uniform_array(upper: int, count: int, prg=None) -> np.ndarray:
    """Like :func:`secure_uniform_ints` but returns an int64 ndarray.

    Only power-of-two bounds up to 2^63 are supported (the blinding bounds
    are always powers of two); value-for-value identical to the list variant
    on the same byte source, without the 10k-element ``tolist`` round trip the
    fabrication hot path would immediately undo.
    """
    if upper <= 0:
        raise ParameterError("upper bound must be positive")
    if count < 0:
        raise ParameterError("count must be non-negative")
    bits = upper.bit_length() - 1
    if upper != 1 << bits or bits >= 64:
        raise ParameterError("vectorised uniform draws require a power-of-two bound < 2^64")
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    if bits == 0:
        return np.zeros(count, dtype=np.int64)
    raw_bytes = secrets.token_bytes(8 * count) if prg is None else prg.read(8 * count)
    raw = np.frombuffer(raw_bytes, dtype="<u8")
    return (raw >> np.uint64(64 - bits)).astype(np.int64)


class DeterministicRandom(random.Random):
    """Seedable randomness for workload generation.

    A thin subclass of :class:`random.Random` that derives its seed from an
    arbitrary string label, so that independent generators (e.g. "spam-corpus"
    vs "topic-corpus") do not share a stream even when given the same integer
    seed by the caller.
    """

    def __init__(self, seed: int = 0, label: str = "") -> None:
        digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
        super().__init__(int.from_bytes(digest[:8], "big"))
        self._seed = seed
        self._label = label

    def fork(self, sublabel: str) -> "DeterministicRandom":
        """Derive an independent stream for a sub-component."""
        return DeterministicRandom(self._seed, f"{self._label}/{sublabel}")

    def zipf_index(self, size: int, exponent: float = 1.1) -> int:
        """Sample an index in ``[0, size)`` with a Zipf-like distribution.

        Word frequencies in natural language are approximately Zipfian; the
        synthetic corpora use this to get realistic feature sparsity.
        """
        if size <= 0:
            raise ParameterError("size must be positive")
        # Inverse-CDF sampling over a truncated zeta distribution would require
        # the normalisation constant; a rejection-free approximation that is
        # good enough for workload generation is to transform a uniform draw.
        u = self.random()
        # Map u in (0,1) to a rank with density ~ rank^-exponent.
        rank = int(size * (u ** exponent))
        return min(size - 1, rank)
