"""Canonical serialization for protocol messages.

Two-party protocol messages must have a well-defined byte size so the
benchmark harness can account for network transfers exactly as the paper does
(Figs. 3, 11, and the per-email overheads quoted in §6.1/§6.3).  We use a
small, self-contained tagged binary format rather than ``pickle`` so that the
byte counts are stable across Python versions and so that deserialization
never executes arbitrary code (these messages cross a trust boundary).

Supported value types: ``None``, ``bool``, ``int`` (arbitrary precision),
``bytes``, ``str``, ``float``, ``list``/``tuple`` and ``dict`` with string
keys.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.exceptions import ParameterError, WireFormatError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_NEGINT = b"J"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_FLOAT = b"D"
_TAG_LIST = b"L"
_TAG_DICT = b"M"


def _encode_length(length: int) -> bytes:
    return struct.pack(">Q", length)


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        magnitude = abs(value)
        payload = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        out += _TAG_NEGINT if value < 0 else _TAG_INT
        out += _encode_length(len(payload))
        out += payload
    elif isinstance(value, bytes):
        out += _TAG_BYTES
        out += _encode_length(len(value))
        out += value
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out += _TAG_STR
        out += _encode_length(len(payload))
        out += payload
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += _encode_length(len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out += _TAG_DICT
        out += _encode_length(len(value))
        for key in sorted(value):
            if not isinstance(key, str):
                raise ParameterError("dict keys must be strings for canonical encoding")
            _encode(key, out)
            _encode(value[key], out)
    else:
        raise ParameterError(f"unsupported type for canonical encoding: {type(value)!r}")


def canonical_dumps(value: Any) -> bytes:
    """Serialize *value* into canonical bytes."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise ParameterError("truncated canonical encoding")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def take_length(self) -> int:
        return struct.unpack(">Q", self.take(8))[0]


def _decode(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag in (_TAG_INT, _TAG_NEGINT):
        length = reader.take_length()
        magnitude = int.from_bytes(reader.take(length), "big")
        return -magnitude if tag == _TAG_NEGINT else magnitude
    if tag == _TAG_BYTES:
        return reader.take(reader.take_length())
    if tag == _TAG_STR:
        return reader.take(reader.take_length()).decode("utf-8")
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.take(8))[0]
    if tag == _TAG_LIST:
        count = reader.take_length()
        return [_decode(reader) for _ in range(count)]
    if tag == _TAG_DICT:
        count = reader.take_length()
        result = {}
        for _ in range(count):
            key = _decode(reader)
            result[key] = _decode(reader)
        return result
    raise ParameterError(f"unknown tag in canonical encoding: {tag!r}")


def canonical_loads(data: bytes) -> Any:
    """Deserialize canonical bytes produced by :func:`canonical_dumps`."""
    reader = _Reader(data)
    value = _decode(reader)
    if reader.offset != len(data):
        raise ParameterError("trailing bytes after canonical encoding")
    return value


def encoded_size(value: Any) -> int:
    """Byte size of the canonical encoding (used for network accounting)."""
    return len(canonical_dumps(value))


# ---------------------------------------------------------------------------
# Fixed-width wire primitives
#
# The protocol frames of :mod:`repro.twopc.wire` need a tighter encoding than
# the tagged canonical format above (no per-value tags, 1/2/4-byte lengths
# instead of 8), so the frame codecs are built on these two helpers.  Both are
# deliberately dumb: big-endian fixed-width integers, length-prefixed blobs,
# and length-prefixed unsigned big integers.  Truncation always raises
# :class:`~repro.exceptions.WireFormatError` rather than returning short data.
# ---------------------------------------------------------------------------


class ByteWriter:
    """Append-only builder for fixed-width wire encodings."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def u8(self, value: int) -> "ByteWriter":
        self._check_range(value, 1 << 8)
        self._buffer += struct.pack(">B", value)
        return self

    def u16(self, value: int) -> "ByteWriter":
        self._check_range(value, 1 << 16)
        self._buffer += struct.pack(">H", value)
        return self

    def u32(self, value: int) -> "ByteWriter":
        self._check_range(value, 1 << 32)
        self._buffer += struct.pack(">I", value)
        return self

    def raw(self, data: bytes) -> "ByteWriter":
        """Append bytes verbatim (fixed-width fields whose size both sides know)."""
        self._buffer += data
        return self

    def blob(self, data: bytes) -> "ByteWriter":
        """Append a u32-length-prefixed byte string."""
        self.u32(len(data))
        self._buffer += data
        return self

    def big_uint(self, value: int) -> "ByteWriter":
        """Append a u32-length-prefixed big-endian non-negative integer."""
        if value < 0:
            raise ParameterError("big_uint cannot encode negative integers")
        payload = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        return self.blob(payload)

    @staticmethod
    def _check_range(value: int, bound: int) -> None:
        if not 0 <= value < bound:
            raise ParameterError(f"integer {value} outside [0, {bound}) for wire field")

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class ByteReader:
    """Sequential reader matching :class:`ByteWriter`'s encodings."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def raw(self, count: int) -> bytes:
        if count < 0 or self.offset + count > len(self.data):
            raise WireFormatError("truncated wire encoding")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def u8(self) -> int:
        return struct.unpack(">B", self.raw(1))[0]

    def u16(self) -> int:
        return struct.unpack(">H", self.raw(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.raw(4))[0]

    def blob(self) -> bytes:
        return self.raw(self.u32())

    def big_uint(self) -> int:
        return int.from_bytes(self.blob(), "big")

    def remaining(self) -> int:
        return len(self.data) - self.offset

    def expect_end(self) -> None:
        if self.offset != len(self.data):
            raise WireFormatError("trailing bytes after wire encoding")
