"""Canonical serialization for protocol messages.

Two-party protocol messages must have a well-defined byte size so the
benchmark harness can account for network transfers exactly as the paper does
(Figs. 3, 11, and the per-email overheads quoted in §6.1/§6.3).  We use a
small, self-contained tagged binary format rather than ``pickle`` so that the
byte counts are stable across Python versions and so that deserialization
never executes arbitrary code (these messages cross a trust boundary).

Supported value types: ``None``, ``bool``, ``int`` (arbitrary precision),
``bytes``, ``str``, ``float``, ``list``/``tuple`` and ``dict`` with string
keys.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.exceptions import ParameterError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_NEGINT = b"J"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_FLOAT = b"D"
_TAG_LIST = b"L"
_TAG_DICT = b"M"


def _encode_length(length: int) -> bytes:
    return struct.pack(">Q", length)


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        magnitude = abs(value)
        payload = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        out += _TAG_NEGINT if value < 0 else _TAG_INT
        out += _encode_length(len(payload))
        out += payload
    elif isinstance(value, bytes):
        out += _TAG_BYTES
        out += _encode_length(len(value))
        out += value
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out += _TAG_STR
        out += _encode_length(len(payload))
        out += payload
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += _encode_length(len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out += _TAG_DICT
        out += _encode_length(len(value))
        for key in sorted(value):
            if not isinstance(key, str):
                raise ParameterError("dict keys must be strings for canonical encoding")
            _encode(key, out)
            _encode(value[key], out)
    else:
        raise ParameterError(f"unsupported type for canonical encoding: {type(value)!r}")


def canonical_dumps(value: Any) -> bytes:
    """Serialize *value* into canonical bytes."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise ParameterError("truncated canonical encoding")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def take_length(self) -> int:
        return struct.unpack(">Q", self.take(8))[0]


def _decode(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag in (_TAG_INT, _TAG_NEGINT):
        length = reader.take_length()
        magnitude = int.from_bytes(reader.take(length), "big")
        return -magnitude if tag == _TAG_NEGINT else magnitude
    if tag == _TAG_BYTES:
        return reader.take(reader.take_length())
    if tag == _TAG_STR:
        return reader.take(reader.take_length()).decode("utf-8")
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.take(8))[0]
    if tag == _TAG_LIST:
        count = reader.take_length()
        return [_decode(reader) for _ in range(count)]
    if tag == _TAG_DICT:
        count = reader.take_length()
        result = {}
        for _ in range(count):
            key = _decode(reader)
            result[key] = _decode(reader)
        return result
    raise ParameterError(f"unknown tag in canonical encoding: {tag!r}")


def canonical_loads(data: bytes) -> Any:
    """Deserialize canonical bytes produced by :func:`canonical_dumps`."""
    reader = _Reader(data)
    value = _decode(reader)
    if reader.offset != len(data):
        raise ParameterError("trailing bytes after canonical encoding")
    return value


def encoded_size(value: Any) -> int:
    """Byte size of the canonical encoding (used for network accounting)."""
    return len(canonical_dumps(value))
