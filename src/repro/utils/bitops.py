"""Bit- and byte-level helpers used throughout the crypto and packing layers.

The packing scheme of §4.2 of the paper treats an AHE plaintext as a sequence
of fixed-width fields; :func:`pack_fields` / :func:`unpack_fields` implement
that layout over Python integers.  The garbled-circuit layer uses
:func:`int_to_bits` / :func:`bits_to_int` to move between integers and the
little-endian bit lists that circuits consume.
"""

from __future__ import annotations

from repro.exceptions import PackingError, ParameterError


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative numerators."""
    if denominator <= 0:
        raise ParameterError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def bit_length(value: int) -> int:
    """Bit length of a non-negative integer; 0 has bit length 1 by convention."""
    if value < 0:
        raise ParameterError("bit_length is defined for non-negative integers only")
    return max(1, value.bit_length())


def bytes_needed(value: int) -> int:
    """Number of bytes required to hold a non-negative integer."""
    return ceil_div(bit_length(value), 8)


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Encode a non-negative integer as big-endian bytes.

    When *length* is omitted the minimal number of bytes is used (at least 1).
    """
    if value < 0:
        raise ParameterError("cannot encode a negative integer")
    if length is None:
        length = bytes_needed(value)
    if value >= 1 << (8 * length):
        raise ParameterError(f"value does not fit in {length} bytes")
    return value.to_bytes(length, "big")


def int_from_bytes(data: bytes) -> int:
    """Decode a big-endian byte string into a non-negative integer."""
    return int.from_bytes(data, "big")


def int_to_bits(value: int, width: int) -> list[int]:
    """Little-endian bit decomposition of *value*, exactly *width* bits.

    Values are reduced modulo ``2**width``; this is the convention that the
    boolean-circuit layer expects (arithmetic mod 2^width).
    """
    if width <= 0:
        raise ParameterError("width must be positive")
    value %= 1 << width
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: list[int]) -> int:
    """Inverse of :func:`int_to_bits` (little-endian bit list to integer)."""
    result = 0
    for index, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ParameterError(f"bit at index {index} is not 0/1: {bit!r}")
        result |= bit << index
    return result


def pack_fields(values: list[int], field_bits: int) -> int:
    """Pack non-negative field values into one integer, field 0 least significant.

    Each value must fit in *field_bits* bits.  This is the single-ciphertext
    layout used by the GLLM packing optimisation (§4.2): slot ``i`` occupies
    bits ``[i*field_bits, (i+1)*field_bits)``.
    """
    if field_bits <= 0:
        raise ParameterError("field_bits must be positive")
    packed = 0
    limit = 1 << field_bits
    for index, value in enumerate(values):
        if not 0 <= value < limit:
            raise PackingError(
                f"value {value} at slot {index} does not fit in {field_bits} bits"
            )
        packed |= value << (index * field_bits)
    return packed


def unpack_fields(packed: int, field_bits: int, count: int) -> list[int]:
    """Unpack *count* fields of *field_bits* bits each from an integer."""
    if field_bits <= 0:
        raise ParameterError("field_bits must be positive")
    if count < 0:
        raise ParameterError("count must be non-negative")
    mask = (1 << field_bits) - 1
    return [(packed >> (index * field_bits)) & mask for index in range(count)]


def bits_to_bytes(bits: list[int]) -> bytes:
    """Pack a little-endian bit list into bytes (final byte zero-padded)."""
    out = bytearray(ceil_div(len(bits), 8))
    for index, bit in enumerate(bits):
        if bit:
            out[index // 8] |= 1 << (index % 8)
    return bytes(out)


def bytes_to_bits(data: bytes, count: int | None = None) -> list[int]:
    """Expand bytes into a little-endian bit list, optionally truncated to *count*."""
    bits = []
    for byte in data:
        for position in range(8):
            bits.append((byte >> position) & 1)
    if count is not None:
        if count > len(bits):
            raise ParameterError("requested more bits than the data contains")
        bits = bits[:count]
    return bits


def xor_bytes(left: bytes, right: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(left) != len(right):
        raise ParameterError(
            f"xor_bytes operands differ in length: {len(left)} vs {len(right)}"
        )
    return bytes(a ^ b for a, b in zip(left, right))
