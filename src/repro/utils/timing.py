"""Timing utilities used by benchmarks, the cost model and the serving stack.

The paper's evaluation reports per-operation CPU times (Fig. 6) and per-email
CPU times (Figs. 7, 10).  :class:`Stopwatch` accumulates named intervals so a
protocol run can attribute time to the provider and the client separately,
mirroring how the paper separates provider-side and client-side costs.

The latency-SLO layer adds two more pieces: :func:`percentile` /
:func:`summarize_latencies` (the p50/p95/p99 rows every latency suite
reports) and :class:`AdaptiveWindowController` — the small control loop that
derives a decrypt-batching window from an EWMA of the observed arrival rate.
The controller lives here, away from any scheduler, because both the
synchronous :class:`~repro.core.runtime.AdaptiveDecryptScheduler` and the
asyncio :class:`~repro.twopc.session.AsyncSessionPump` drive the same law.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.obs import get_registry


@dataclass
class Stopwatch:
    """Accumulates wall-clock time under named labels."""

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager that adds the elapsed time to *label*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[label] = self.totals.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1

    def add(self, label: str, seconds: float) -> None:
        """Manually add an interval (used when timing happens elsewhere)."""
        self.totals[label] = self.totals.get(label, 0.0) + seconds
        self.counts[label] = self.counts.get(label, 0) + 1

    def total(self, label: str) -> float:
        """Total seconds recorded under *label* (0.0 if never recorded)."""
        return self.totals.get(label, 0.0)

    def mean(self, label: str) -> float:
        """Mean seconds per recorded interval under *label*."""
        count = self.counts.get(label, 0)
        return self.totals.get(label, 0.0) / count if count else 0.0

    def merge(self, other: "Stopwatch") -> None:
        """Fold another stopwatch's accumulators into this one."""
        for label, seconds in other.totals.items():
            self.totals[label] = self.totals.get(label, 0.0) + seconds
        for label, count in other.counts.items():
            self.counts[label] = self.counts.get(label, 0) + count

    def as_dict(self) -> dict[str, float]:
        """Snapshot of label -> total seconds."""
        return dict(self.totals)


def time_call(func: Callable[[], object], repeat: int = 1) -> float:
    """Return the mean wall-clock seconds of calling *func* *repeat* times."""
    if repeat <= 0:
        raise ValueError("repeat must be positive")
    start = time.perf_counter()
    for _ in range(repeat):
        func()
    return (time.perf_counter() - start) / repeat


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-th percentile of *samples* by linear interpolation.

    ``q`` is in percent (``50`` is the median).  Pure Python on purpose: the
    latency suites call this on a few thousand floats, and keeping it free of
    numpy means the serving runtime can report percentiles without importing
    an array stack into a worker process.
    """
    if not samples:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} is outside [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


def summarize_latencies(samples: Sequence[float]) -> dict[str, float]:
    """The standard latency summary: p50/p95/p99 plus mean/max/count.

    This is the schema every latency SLO row uses (``regress.py --suite
    latency``, the trace-replay report), so the keys live in exactly one
    place.
    """
    if not samples:
        return {"count": 0.0, "mean": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "count": float(len(samples)),
        "mean": sum(samples) / len(samples),
        "max": float(max(samples)),
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
    }


class EwmaArrivalRate:
    """Exponentially weighted arrival-rate estimate with idle decay.

    ``observe(count, now)`` folds an arrival of *count* items into the
    estimate; ``rate(now)`` reads it back, decayed for the time elapsed since
    the last estimate update so a stream that has gone quiet does not keep
    reporting its burst-time rate forever.  Time comes in through the
    arguments (never a wall clock), which is what makes the control loop
    unit-testable with a fake clock.

    Arrivals are **aggregated over a minimum observation interval** before
    they touch the EWMA: the estimate folds in ``accumulated count /
    elapsed`` only once at least ``min_interval_seconds`` have passed since
    the window opened.  Naive per-gap instantaneous rates (``1 / gap``) read
    a three-email clump with millisecond gaps as hundreds of items per
    second — one clump would saturate any controller built on the estimate,
    even though the stream's real rate is a trickle.  Aggregation makes the
    estimator report what actually matters to a batching controller: how
    many items arrive per control-loop horizon.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        half_life_seconds: float = 0.5,
        min_interval_seconds: float | None = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if half_life_seconds <= 0.0:
            raise ValueError("half_life_seconds must be positive")
        if min_interval_seconds is not None and min_interval_seconds <= 0.0:
            raise ValueError("min_interval_seconds must be positive")
        self.alpha = alpha
        self.half_life_seconds = half_life_seconds
        self.min_interval_seconds = (
            half_life_seconds / 4.0 if min_interval_seconds is None else min_interval_seconds
        )
        self._rate = 0.0
        self._window_start: float | None = None
        self._window_count = 0.0
        self._last_update: float | None = None

    def observe(self, count: int, now: float) -> None:
        """Fold an arrival of *count* items at time *now* into the estimate."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self._window_start is None:
            # First arrival: opens the observation window, no rate yet.
            self._window_start = now
            self._last_update = now
            return
        self._window_count += count
        elapsed = now - self._window_start
        if elapsed < self.min_interval_seconds:
            return
        instantaneous = self._window_count / max(elapsed, 1e-9)
        self._rate = self.alpha * instantaneous + (1.0 - self.alpha) * self._rate
        self._window_start = now
        self._window_count = 0.0
        self._last_update = now

    def rate(self, now: float) -> float:
        """Items/second, decayed by a half-life per idle period since the last update."""
        if self._last_update is None or self._rate == 0.0:
            return 0.0
        idle = max(0.0, now - self._last_update)
        return self._rate * 0.5 ** (idle / self.half_life_seconds)


class AdaptiveWindowController:
    """Derive a decrypt-batching delay window from the observed arrival rate.

    The law: the window should be wide enough to collect
    ``target_batch_items`` at the *observed* rate, but never wider than
    ``max_delay_seconds`` — and when the stream cannot plausibly fill a batch
    within the cap, waiting buys nothing, so the window collapses toward
    ``min_delay_seconds``.  Concretely::

        fill  = min(1, rate / (target_batch_items / max_delay_seconds))
        delay = min_delay + (max_delay - min_delay) * fill ** response_exponent

    A hot stream (rate ≥ target/cap) gets the full cap — which in practice
    never binds, because the size trigger fires at ``target_batch_items``
    first.  A quiet stream gets ``min_delay_seconds``, so an idle-tail email
    is released almost immediately instead of serving out a throughput
    knob's worth of delay.  The response is *convex* (exponent 2 by
    default): at marginal rates a window cannot collect more than a couple
    of requests, so the delay it charges every one of them is nearly pure
    latency loss — the window should only open up once the rate can fill a
    meaningful fraction of the batch within the cap.  This is the
    batching/latency control loop of the §6.3 serving stack, in ~20 lines,
    driven entirely by injected time.
    """

    def __init__(
        self,
        min_delay_seconds: float = 0.002,
        max_delay_seconds: float = 0.25,
        target_batch_items: int = 32,
        alpha: float = 0.3,
        response_exponent: float = 2.0,
    ) -> None:
        if min_delay_seconds < 0:
            raise ValueError("min_delay_seconds must be non-negative")
        if max_delay_seconds < min_delay_seconds:
            raise ValueError("max_delay_seconds must be at least min_delay_seconds")
        if target_batch_items < 1:
            raise ValueError("target_batch_items must be at least 1")
        if response_exponent < 1.0:
            raise ValueError("response_exponent must be at least 1")
        self.min_delay_seconds = min_delay_seconds
        self.max_delay_seconds = max_delay_seconds
        self.target_batch_items = target_batch_items
        self.response_exponent = response_exponent
        self.estimator = EwmaArrivalRate(
            alpha=alpha, half_life_seconds=max(max_delay_seconds, 1e-6)
        )
        registry = get_registry()
        self._metric_rate = registry.gauge("adaptive_arrival_rate_per_s")
        self._metric_delay = registry.histogram("adaptive_window_delay_seconds")

    def observe(self, count: int, now: float) -> float:
        """Fold one arrival into the estimate; returns the retuned delay."""
        self.estimator.observe(count, now)
        delay = self.delay_seconds(now)
        self._metric_rate.set(self.estimator.rate(now))
        self._metric_delay.observe(delay)
        return delay

    def delay_seconds(self, now: float) -> float:
        """The delay window the current (decayed) arrival rate warrants."""
        full_batch_rate = self.target_batch_items / max(self.max_delay_seconds, 1e-9)
        fill = min(1.0, self.estimator.rate(now) / full_batch_rate)
        return self.min_delay_seconds + (
            self.max_delay_seconds - self.min_delay_seconds
        ) * fill**self.response_exponent


def format_duration(seconds: float) -> str:
    """Human-readable duration (µs / ms / s) used by the bench harness output."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
