"""Timing utilities used by benchmarks and the cost model.

The paper's evaluation reports per-operation CPU times (Fig. 6) and per-email
CPU times (Figs. 7, 10).  :class:`Stopwatch` accumulates named intervals so a
protocol run can attribute time to the provider and the client separately,
mirroring how the paper separates provider-side and client-side costs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass
class Stopwatch:
    """Accumulates wall-clock time under named labels."""

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager that adds the elapsed time to *label*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[label] = self.totals.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1

    def add(self, label: str, seconds: float) -> None:
        """Manually add an interval (used when timing happens elsewhere)."""
        self.totals[label] = self.totals.get(label, 0.0) + seconds
        self.counts[label] = self.counts.get(label, 0) + 1

    def total(self, label: str) -> float:
        """Total seconds recorded under *label* (0.0 if never recorded)."""
        return self.totals.get(label, 0.0)

    def mean(self, label: str) -> float:
        """Mean seconds per recorded interval under *label*."""
        count = self.counts.get(label, 0)
        return self.totals.get(label, 0.0) / count if count else 0.0

    def merge(self, other: "Stopwatch") -> None:
        """Fold another stopwatch's accumulators into this one."""
        for label, seconds in other.totals.items():
            self.totals[label] = self.totals.get(label, 0.0) + seconds
        for label, count in other.counts.items():
            self.counts[label] = self.counts.get(label, 0) + count

    def as_dict(self) -> dict[str, float]:
        """Snapshot of label -> total seconds."""
        return dict(self.totals)


def time_call(func: Callable[[], object], repeat: int = 1) -> float:
    """Return the mean wall-clock seconds of calling *func* *repeat* times."""
    if repeat <= 0:
        raise ValueError("repeat must be positive")
    start = time.perf_counter()
    for _ in range(repeat):
        func()
    return (time.perf_counter() - start) / repeat


def format_duration(seconds: float) -> str:
    """Human-readable duration (µs / ms / s) used by the bench harness output."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
