"""Shared utilities: bit manipulation, deterministic randomness, timing, serialization."""

from repro.utils.bitops import (
    bit_length,
    bits_to_int,
    bytes_needed,
    ceil_div,
    int_from_bytes,
    int_to_bits,
    int_to_bytes,
    pack_fields,
    unpack_fields,
)
from repro.utils.rand import DeterministicRandom, secure_randbelow, secure_randbits, secure_randint
from repro.utils.serialization import canonical_dumps, canonical_loads
from repro.utils.timing import Stopwatch, format_duration, time_call

__all__ = [
    "bit_length",
    "bits_to_int",
    "bytes_needed",
    "ceil_div",
    "int_from_bytes",
    "int_to_bits",
    "int_to_bytes",
    "pack_fields",
    "unpack_fields",
    "DeterministicRandom",
    "secure_randbelow",
    "secure_randbits",
    "secure_randint",
    "canonical_dumps",
    "canonical_loads",
    "Stopwatch",
    "format_duration",
    "time_call",
]
