"""Cross-host shard fabric: TCP agents, a versioned control plane, migration.

The in-box :class:`~repro.core.runtime.ShardedRuntime` scales Pretzel's
serving loop across *processes*; this package scales it across *hosts*.
Each remote **agent** (:mod:`repro.fabric.agent`) is a standalone process
serving one :class:`~repro.core.runtime.ShardWorkerCore` — the same shard
brain the pipe workers run — over the reliable TCP control channel, so the
two fabrics cannot drift in semantics.  The parent-side
:class:`~repro.fabric.control.FabricRuntime` speaks the versioned CONTROL
frame family of :mod:`repro.twopc.wire` (HELLO registration replay,
seq-tagged COMMAND/REPLY, HEARTBEAT health, streamed METRICS snapshots) and
mirrors the ``ShardedRuntime`` drive API, so
:meth:`~repro.core.system.PretzelSystem.drain_all_mailboxes_sharded` runs
unchanged on either.

:mod:`repro.fabric.migrate` moves live shards between agents: checkpoint the
open decrypt windows on host A, restore them bit-identically on host B,
redirect the mailbox hash range, retire A — zero resubmissions, no email
lost or served twice.  ``rebalance`` picks the migration itself, using the
fabric's aggregated ``emails_served_total`` as the load signal.
"""

from repro.fabric.agent import AgentProcess, spawn_local_agent
from repro.fabric.control import (
    FabricRuntime,
    metrics_projection,
    pack_control,
    unpack_control,
)
from repro.fabric.migrate import migrate, rebalance

__all__ = [
    "AgentProcess",
    "FabricRuntime",
    "launch_fabric",
    "metrics_projection",
    "migrate",
    "pack_control",
    "rebalance",
    "spawn_local_agent",
    "unpack_control",
]


def launch_fabric(
    num_agents: int,
    checkpoint_dir=None,
    **runtime_options,
) -> tuple[FabricRuntime, list[AgentProcess]]:
    """Spawn *num_agents* localhost agents and a fabric runtime over them.

    The two-line on-ramp the example, the bench suite and CI smoke use.  The
    caller owns both halves: ``runtime.close()`` retires the agents (they
    exit on BYE), then ``agent.wait()``/``agent.kill()`` reaps the processes.
    """
    agents = [
        spawn_local_agent(shard_index=index, checkpoint_dir=checkpoint_dir)
        for index in range(num_agents)
    ]
    try:
        runtime = FabricRuntime(agents, **runtime_options)
    except BaseException:
        for agent in agents:
            agent.kill()
        raise
    return runtime, agents
