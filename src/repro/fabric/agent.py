"""The fabric worker agent: one shard served over TCP, as its own process.

An agent is the cross-host twin of the in-box pipe worker
(:func:`repro.core.runtime._shard_worker_main`): the same
:class:`~repro.core.runtime.ShardWorkerCore` brain, a different envelope.
It binds a TCP port (``--port 0`` for an OS-assigned one, announced as
``PORT <n>`` on stdout so a parent script can harvest it), accepts one
parent connection, and speaks the versioned control protocol of
:mod:`repro.fabric.control` over a reliable transport — so commands survive
a lossy link exactly once, in order.

Lifecycle: the parent's HELLO delivers the scheduler spec and fabric
incarnation (the agent builds its core only then — the parent owns serving
policy), after which two tasks share the single connection: the *command
loop* turns COMMANDs into REPLYs one at a time, and *housekeeping* fires
aged decrypt windows between commands, pushes HEARTBEAT beacons, and
streams cumulative METRICS snapshots on the configured interval.  The agent
exits when the parent says BYE (or ``stop``), when the connection dies, or
when the parent stays silent past its advertised timeout — an orphaned
agent never lingers.

With ``--checkpoint-dir``, open windows are synced to the agent's own
append-only :class:`~repro.core.runtime.ShardCheckpointLog` at every burst
boundary; a replacement agent launched on the same directory and shard
index restores them via the parent's ``restore`` command, and a live
migration ships them to a *different* agent via ``checkpoint``/``restore``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import subprocess
import sys
import time
from dataclasses import dataclass

from repro.core.runtime import FileSessionStore, ShardWorkerCore
from repro.exceptions import ProtocolError, ReliabilityError, TransportClosedError
from repro.fabric.control import (
    CONTROL_MAX_ATTEMPTS,
    CONTROL_PARTIES,
    pack_control,
    unpack_control,
)
from repro.obs import MetricsRegistry, SpanTracer, get_registry, scoped_registry, set_registry, set_tracer
from repro.twopc.reliable import AsyncReliableTransport
from repro.twopc.transport import AsyncTcpTransport
from repro.twopc.wire import CONTROL_VERSION, ControlVerb

#: Housekeeping granularity: the longest the agent sleeps between checking
#: window deadlines, heartbeat/metrics due times and parent liveness.
_TICK_SECONDS = 0.05


async def _serve_connection(
    link: AsyncReliableTransport,
    checkpoint_dir: str | None,
    shard_index: int,
) -> None:
    """Serve one parent over one connection until BYE/stop/death."""
    try:
        verb, hello = unpack_control(
            await link.receive("agent", timeout_seconds=30.0)
        )
    except ProtocolError:
        return
    if verb != ControlVerb.HELLO:
        await link.send(
            "agent",
            pack_control(ControlVerb.BYE, {"error": "expected HELLO first"}),
        )
        return
    if hello.get("version") != CONTROL_VERSION:
        await link.send(
            "agent",
            pack_control(
                ControlVerb.BYE,
                {
                    "error": (
                        f"agent speaks control v{CONTROL_VERSION}, "
                        f"parent sent v{hello.get('version')}"
                    )
                },
            ),
        )
        return
    store = FileSessionStore(checkpoint_dir) if checkpoint_dir is not None else None
    core = ShardWorkerCore(
        hello["scheduler_spec"],
        checkpoint_store=store,
        shard_index=shard_index,
        incarnation=hello.get("incarnation", ""),
    )
    await link.send(
        "agent",
        pack_control(
            ControlVerb.HELLO,
            {
                "version": CONTROL_VERSION,
                "pid": os.getpid(),
                "shard_index": shard_index,
                "has_checkpoint": store is not None,
            },
        ),
    )
    heartbeat_interval = float(hello.get("heartbeat_interval", 0.25))
    metrics_interval = float(hello.get("metrics_interval", 0.0))
    parent_timeout = float(hello.get("parent_timeout", 60.0))
    stop = asyncio.Event()
    last_parent = [time.monotonic()]

    async def command_loop() -> None:
        try:
            while not stop.is_set():
                raw = await link.receive("agent")
                last_parent[0] = time.monotonic()
                verb, body = unpack_control(raw)
                if verb == ControlVerb.BYE:
                    return
                if verb == ControlVerb.HEARTBEAT:
                    continue
                if verb != ControlVerb.COMMAND:
                    continue
                reply = core.handle(body["command"], body["payload"])
                await link.send(
                    "agent", pack_control(ControlVerb.REPLY, (body["seq"], reply))
                )
                if body["command"] == "stop":
                    return
        except (TransportClosedError, ReliabilityError):
            # The parent is gone (hangup) or unreachable past the retry
            # budget; either way this agent has no one to serve.
            return
        finally:
            stop.set()

    async def housekeeping() -> None:
        next_heartbeat = 0.0
        next_metrics = 0.0
        try:
            while not stop.is_set():
                now = time.monotonic()
                if now - last_parent[0] > parent_timeout:
                    return  # orphaned: the parent stopped talking entirely
                if now >= next_heartbeat:
                    await link.send("agent", pack_control(ControlVerb.HEARTBEAT, {}))
                    next_heartbeat = now + heartbeat_interval
                if (
                    metrics_interval > 0
                    and now >= next_metrics
                    and not core.quiesced
                ):
                    # Streamed scrape: cumulative snapshot, so a lost push
                    # costs freshness, never correctness.
                    await link.send(
                        "agent",
                        pack_control(
                            ControlVerb.METRICS,
                            {"metrics": get_registry().snapshot()},
                        ),
                    )
                    next_metrics = now + metrics_interval
                deadline = core.next_timeout()
                if deadline is not None and deadline <= 0:
                    core.idle_tick()
                await asyncio.sleep(
                    _TICK_SECONDS
                    if deadline is None
                    else min(_TICK_SECONDS, max(deadline, 0.005))
                )
        except (TransportClosedError, ReliabilityError):
            return
        finally:
            stop.set()

    commands = asyncio.ensure_future(command_loop())
    chores = asyncio.ensure_future(housekeeping())
    await stop.wait()
    for task in (commands, chores):
        task.cancel()
        try:
            await task
        except (asyncio.CancelledError, ProtocolError):
            pass


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    checkpoint_dir: str | None = None,
    shard_index: int = 0,
    announce=None,
) -> None:
    """Bind, announce ``PORT <n>``, serve one parent connection, exit."""
    done = asyncio.Event()

    async def handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        # The control link's own accounting must not pollute the serving
        # registry: agent snapshots have to merge with in-box worker
        # snapshots, which never see a TCP control channel.  Instruments
        # bind at construction, so building the whole link stack under a
        # scratch registry keeps every control-plane counter (tcp frames,
        # reliable retransmits) out of the serving series.
        with scoped_registry(MetricsRegistry()):
            tcp = AsyncTcpTransport(
                reader,
                writer,
                local_party="agent",
                parties=CONTROL_PARTIES,
                name=f"agent[{shard_index}]",
            )
            link = AsyncReliableTransport(
                tcp,
                name=f"agent-link[{shard_index}]",
                max_attempts=CONTROL_MAX_ATTEMPTS,
            )
        try:
            await _serve_connection(link, checkpoint_dir, shard_index)
        finally:
            await tcp.aclose()
            done.set()

    server = await asyncio.start_server(handler, host, port)
    print(
        f"PORT {AsyncTcpTransport.bound_port(server)}",
        file=announce or sys.stdout,
        flush=True,
    )
    try:
        await done.wait()
    finally:
        server.close()
        await server.wait_closed()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Pretzel fabric agent: serve one shard over TCP"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = OS-assigned")
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for the shard's append-only checkpoint log",
    )
    parser.add_argument(
        "--shard-index",
        type=int,
        default=0,
        help="stable shard identity (keys the checkpoint log)",
    )
    args = parser.parse_args(argv)
    # Fresh serving telemetry for this process — nothing inherited, and
    # snapshots merge cleanly with in-box worker snapshots.
    set_registry(MetricsRegistry())
    set_tracer(SpanTracer())
    asyncio.run(
        serve(
            host=args.host,
            port=args.port,
            checkpoint_dir=args.checkpoint_dir,
            shard_index=args.shard_index,
        )
    )
    return 0


# -- parent-side spawning helpers --------------------------------------------
@dataclass
class AgentProcess:
    """A locally spawned agent: its process handle and announced endpoint."""

    process: subprocess.Popen
    host: str
    port: int
    shard_index: int

    @property
    def pid(self) -> int:
        return self.process.pid

    def kill(self) -> None:
        self.process.kill()

    def terminate(self) -> None:
        self.process.terminate()

    def wait(self, timeout: float | None = 10.0) -> int | None:
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            return None


def spawn_local_agent(
    shard_index: int = 0,
    checkpoint_dir=None,
    host: str = "127.0.0.1",
) -> AgentProcess:
    """Launch ``python -m repro.fabric.agent`` and harvest its bound port.

    In-test stand-in for a remote host: the agent is a genuinely separate
    process reached only over TCP — nothing is shared but the wire (and,
    when *checkpoint_dir* is given, the checkpoint directory a replacement
    agent restores from).
    """
    command = [
        sys.executable,
        "-m",
        "repro.fabric",
        "--host",
        host,
        "--port",
        "0",
        "--shard-index",
        str(shard_index),
    ]
    if checkpoint_dir is not None:
        command += ["--checkpoint-dir", str(checkpoint_dir)]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline() if process.stdout else ""
    if not line.startswith("PORT "):
        process.kill()
        process.wait(timeout=10.0)
        raise ProtocolError(
            f"fabric agent {shard_index} exited before announcing its port "
            f"(returncode {process.returncode})"
        )
    return AgentProcess(
        process=process,
        host=host,
        port=int(line.split()[1]),
        shard_index=shard_index,
    )


if __name__ == "__main__":
    raise SystemExit(main())
