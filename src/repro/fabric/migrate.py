"""Live shard migration: move open decrypt windows between fabric agents.

A migration relocates every mailbox hash range (slot) one agent owns onto
another agent *without losing or re-running a single email*:

::

    source agent                parent                       target agent
    ────────────                ──────                       ────────────
    serving ──checkpoint──▶ quiesced          │
         (blob: open windows +  │  replay registrations ──▶  pools deferred
          parked sessions,      │  restore(blob) ─────────▶  windows resumed
          final metrics,        │  ensure_pools ──────────▶  pools backfilled
          stray results)        │  redirect slots source→target
                  ◀────BYE──────┤  fold source metrics once
       exits                    │  resubmit anything the blob missed

    The ``checkpoint`` command quiesces the source *before* serializing, so
    the blob and the final metrics snapshot are a consistent cut: no idle
    tick can fire a window the target is about to resume, which is what
    makes the "every email served exactly once" accounting hold.

The blob rides the control channel parent→target and is admissible there
because every agent of one fabric shares the parent's incarnation — while
a blob from some *other* parent's run is still refused (stale-incarnation
protection, pinned in the session-state tests).  Resumed sessions restart
bit-identically mid-protocol (same OT pads, same window cursors); whatever
the checkpoint did not cover — work that raced past the last sync, or
sessions that declined to snapshot — is resubmitted from features, and the
return value counts those resubmissions so callers can assert ``0``.

``rebalance`` picks the migration itself: the hottest serving agent by
``emails_served_total`` (from the fabric's aggregated, streamed metrics)
hands its range to the least-loaded spare.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import ProtocolError

if TYPE_CHECKING:  # import cycle: control.py's methods delegate here
    from repro.fabric.control import FabricRuntime


def migrate(fabric: "FabricRuntime", source: int, target: int) -> int:
    """Move every slot *source* owns onto *target*, live; retire *source*.

    Returns the number of emails that had to be *resubmitted* on the target
    (not covered by the checkpoint); ``0`` means the whole in-flight window
    state moved — the zero-resubmission property the fabric suite pins.
    """
    if source == target:
        raise ProtocolError("cannot migrate an agent onto itself")
    source_link = fabric._link(source)
    target_link = fabric._link(target)
    if not source_link.alive:
        raise ProtocolError(
            f"agent {source} is dead — use attach_replacement, not migrate"
        )
    if not target_link.alive:
        raise ProtocolError(f"migration target agent {target} is dead")
    slots = {slot for slot, owner in enumerate(fabric._slot_owner) if owner == source}
    if not slots:
        raise ProtocolError(f"agent {source} owns no slots; nothing to migrate")
    # 1. Quiescing checkpoint: the source serializes its open windows and
    #    stops serving.  Stray finished results and the final cumulative
    #    metrics snapshot ride the same reply (absorbed by the request
    #    plumbing), so nothing is stranded on the retiring agent.
    blob, _results, _metrics = fabric._request(source, "checkpoint", None)
    # 2. The target learns the moved mailboxes.  OT pools are deferred: the
    #    checkpoint carries the live pools (mid-stream cursors intact), and
    #    ensure_pools backfills mailboxes with nothing in flight — paying
    #    base OTs only to overwrite them would be dead migration time.
    for slot, command, payload in fabric._registrations:
        if slot in slots:
            fabric._request(target, command, (*payload, True))
    resumed: set[int] = set()
    if blob is not None:
        resumed_ids, _results, _metrics = fabric._request(target, "restore", blob)
        resumed = set(resumed_ids)
    fabric._request(target, "ensure_pools", None)
    # 3. Redirect the hash ranges; from here every burst routes to target.
    for slot in slots:
        fabric._slot_owner[slot] = target
    # 4. Retire the source: BYE, fold its final metrics exactly once.
    fabric._run(fabric._aretire(source_link))
    # 5. Recompute fallback for anything the checkpoint did not cover.
    resubmit = [
        (job_id, item)
        for job_id, item in sorted(fabric._outstanding.items())
        if item.slot in slots and job_id not in resumed
    ]
    if resubmit:
        fabric._request(
            target,
            "burst",
            [
                (job_id, item.kind, item.address, item.features, item.candidates)
                for job_id, item in resubmit
            ],
        )
    return len(resubmit)


def rebalance(fabric: "FabricRuntime") -> tuple[int, int, int] | None:
    """Migrate the hottest agent's hash range onto the least-loaded spare.

    Load is ``emails_served_total`` from each agent's latest streamed
    cumulative snapshot — the aggregation the control plane already keeps,
    no extra round trip.  Candidates to receive the range are live agents
    owning *no* slots (freshly attached spares); with no spare, or with no
    load contrast at all, this is a no-op returning ``None``.  Otherwise
    returns ``(source, target, resubmitted)``.
    """
    owners = set(fabric._slot_owner)
    spares = [index for index in fabric._live_indexes() if index not in owners]
    if not spares:
        return None
    loads: list[tuple[float, int]] = []
    for index in fabric._live_indexes():
        if index not in owners:
            continue
        snapshot = fabric._link(index).metrics
        served = 0.0
        for entry in (snapshot or {}).get("counters", []):
            if entry["name"] == "emails_served_total":
                served += entry["value"]
        loads.append((served, index))
    if not loads:
        return None
    served, hottest = max(loads)
    if served <= 0:
        return None  # nobody has served anything; nothing is "hot" yet
    target = spares[0]
    resubmitted = migrate(fabric, hottest, target)
    return hottest, target, resubmitted
