"""The fabric's control plane: versioned frames and the parent-side runtime.

One ``FabricRuntime`` drives N remote agents over TCP the way a
:class:`~repro.core.runtime.ShardedRuntime` drives N pipe workers — the
command vocabulary is literally the same (both ends run a
:class:`~repro.core.runtime.ShardWorkerCore`), only the envelope differs.
Every message on the wire is a :class:`~repro.twopc.wire.ControlFrame`:
a verb byte, the :data:`~repro.twopc.wire.CONTROL_VERSION` stamp both ends
check before trusting a body, and an opaque payload this module pickles —
the parent<->agent link is a trusted deployment channel, like the pipe it
replaces, so rich registration payloads (protocols, setups) ride whole.

The channel stack is ``ControlFrame`` over
:class:`~repro.twopc.reliable.AsyncReliableTransport` over
:class:`~repro.twopc.transport.AsyncTcpTransport` (optionally with an
:class:`~repro.twopc.transport.AsyncFaultyTransport` chaos layer between
them, which the migration-under-chaos tests exploit): commands survive
drops, duplication and reordering, and arrive in order exactly once.

Health and telemetry ride the same link.  Agents push HEARTBEAT beacons
and streamed cumulative METRICS snapshots on configured intervals; the
parent keeps only the *latest* snapshot per live agent and folds a retired
or evicted agent's final snapshot into a base exactly once, so
:meth:`FabricRuntime.aggregated_metrics` can never double-count — the same
replace-per-shard/fold-once discipline the in-box runtime uses.  An agent
that stays silent past ``heartbeat_timeout`` (and has no command in
flight — a shard deep in a decrypt burst is busy, not dead) is evicted.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.runtime import shard_of_address
from repro.exceptions import ProtocolError, WireFormatError
from repro.obs import empty_snapshot, merge_snapshots
from repro.twopc.reliable import AsyncReliableTransport
from repro.twopc.transport import AsyncFaultyTransport, AsyncTcpTransport, FaultSpec
from repro.twopc.wire import CONTROL_VERSION, ControlFrame, ControlVerb, WireCodec

#: Parties of every control link: the fabric parent dials, the agent serves.
CONTROL_PARTIES = ("parent", "agent")

#: Reliable-layer retry budget on control links.  Much higher than the
#: protocol-channel default: a shard deep in a multi-second decrypt burst
#: legitimately goes quiet (its event loop is busy computing), and the
#: parent's reader must outwait that without declaring the link dead —
#: liveness policy belongs to the heartbeat watchdog, not the retry loop.
CONTROL_MAX_ATTEMPTS = 64

_CODEC = WireCodec()  # control frames never carry ciphertexts; schemeless is fine


def pack_control(verb: int, body: Any) -> bytes:
    """Encode one control message: pickle the body into a versioned frame."""
    return _CODEC.encode(
        ControlFrame(verb=verb, version=CONTROL_VERSION, payload=pickle.dumps(body))
    )


def unpack_control(data: bytes) -> tuple[int, Any]:
    """Decode one control message to ``(verb, body)``.

    Refuses a foreign version *before* unpickling the body — the version
    stamp exists precisely so an endpoint never has to parse a payload
    format it does not speak.
    """
    frame = _CODEC.decode(data)
    if not isinstance(frame, ControlFrame):
        raise ProtocolError(
            f"expected a control frame on the control channel, got {type(frame).__name__}"
        )
    if frame.version != CONTROL_VERSION:
        raise ProtocolError(
            f"control version mismatch: peer speaks v{frame.version}, "
            f"this end speaks v{CONTROL_VERSION}"
        )
    try:
        body = pickle.loads(frame.payload)
    except Exception as error:  # pickle raises a zoo of types on bad bytes
        raise WireFormatError(f"undecodable control payload: {error}") from error
    return frame.verb, body


# -- deterministic metrics projection ----------------------------------------
#
# Serving metrics split into two families: pure *work accounting* (emails,
# decrypt batches, protocol frames — identical however the stream is
# partitioned) and *timing* (decrypt ages, adaptive delays — wall-clock
# noise by nature).  Cross-fabric equivalence is asserted on the first
# family; byte counters are excluded too, because big-integer wire encodings
# vary by a byte when a random group element happens to have leading zeros.
_DETERMINISTIC_COUNTERS = frozenset(
    {
        "emails_served_total",
        "decrypt_batches_total",
        "transport_frames_total",
        "transport_rounds_total",
    }
)
_DETERMINISTIC_HISTOGRAMS = frozenset(
    {
        "decrypt_batch_ciphertexts",
        "window_flush_ciphertexts",
        "window_flush_sessions",
    }
)


def metrics_projection(snapshot: Mapping[str, Any]) -> dict:
    """The partition-invariant slice of a metrics snapshot.

    Two runs that served the same emails — whatever mix of in-box shards and
    remote agents did the serving, and however many migrations happened in
    between — must agree on this projection exactly.  The fabric equivalence
    tests and the ``regress.py --suite fabric`` gate compare these.
    """
    counters: dict[tuple, float] = {}
    for entry in snapshot.get("counters", []):
        if entry["name"] in _DETERMINISTIC_COUNTERS:
            key = (entry["name"], tuple(sorted(entry["labels"].items())))
            counters[key] = counters.get(key, 0) + entry["value"]
    histograms: dict[tuple, dict] = {}
    for entry in snapshot.get("histograms", []):
        if entry["name"] not in _DETERMINISTIC_HISTOGRAMS:
            continue
        key = (entry["name"], tuple(sorted(entry["labels"].items())))
        slot = histograms.setdefault(
            key, {"count": 0, "sum": 0, "counts": [0] * len(entry["counts"])}
        )
        slot["count"] += entry["count"]
        slot["sum"] += entry["sum"]
        for index, bucket in enumerate(entry["counts"]):
            slot["counts"][index] += bucket
    return {
        "counters": counters,
        "histograms": {
            key: dict(value, counts=tuple(value["counts"]))
            for key, value in histograms.items()
        },
    }


@dataclass
class _FabricItem:
    """Parent-side record of one submitted email (resubmission capital)."""

    slot: int
    kind: str
    address: str
    features: Any
    candidates: Sequence[int] | None = None


class _AgentLink:
    """Parent-side state of one agent connection (loop-thread only)."""

    def __init__(self, index: int, transport: AsyncReliableTransport) -> None:
        self.index = index
        self.transport = transport
        self.alive = True
        self.failure: BaseException | None = None
        self.last_seen = time.monotonic()
        self.metrics: dict | None = None  # latest cumulative snapshot
        self.pid: int | None = None
        self.shard_index: int | None = None
        self.has_checkpoint = False
        self.replies: asyncio.Queue = asyncio.Queue()
        self.lock = asyncio.Lock()  # serializes request/reply on this link
        self.reader: asyncio.Task | None = None
        self.next_seq = 0


class FabricRuntime:
    """Drive remote TCP agents with the ``ShardedRuntime`` steering wheel.

    *endpoints* name the agents: ``(host, port)`` pairs or any object with
    ``host``/``port`` attributes (an
    :class:`~repro.fabric.agent.AgentProcess` qualifies).  The mailbox hash
    space is split into ``len(endpoints)`` **slots** — the same
    :func:`~repro.core.runtime.shard_of_address` partition the in-box
    runtime uses — and the slot→agent routing table is *mutable*: live
    migration (:func:`repro.fabric.migrate.migrate`) redirects a slot to a
    different agent mid-stream with its open windows intact.

    The drive API (``register_spam``/``submit_spam``/``drain``/
    ``take_result``/…) mirrors :class:`~repro.core.runtime.ShardedRuntime`
    method for method, so
    :meth:`~repro.core.system.PretzelSystem.drain_all_mailboxes_sharded`
    accepts either via its ``runtime=`` parameter.  Network plumbing lives
    on a private asyncio loop thread; the public surface is synchronous.
    """

    def __init__(
        self,
        endpoints: Sequence[Any],
        window_bursts: int = 1,
        max_pending_ciphertexts: int | None = None,
        max_delay_seconds: float | None = None,
        adaptive: bool = False,
        adaptive_options: Mapping[str, Any] | None = None,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 30.0,
        metrics_interval: float = 0.2,
        request_timeout: float = 300.0,
        connect_timeout: float = 10.0,
        fault_spec: FaultSpec | None = None,
    ) -> None:
        if not endpoints:
            raise ProtocolError("a fabric runtime needs at least one agent")
        if adaptive:
            self._scheduler_spec: tuple = ("adaptive", dict(adaptive_options or {}))
        else:
            self._scheduler_spec = (
                "static",
                window_bursts,
                max_pending_ciphertexts,
                max_delay_seconds,
            )
        # One incarnation shared by every agent of this fabric: a checkpoint
        # taken on host A is admissible on host B (migration), while blobs
        # from an earlier parent are still refused (job-id collision safety).
        self._incarnation = os.urandom(8).hex()
        self.num_slots = len(endpoints)
        self._slot_owner = list(range(self.num_slots))
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._metrics_interval = metrics_interval
        self._request_timeout = request_timeout
        self._connect_timeout = connect_timeout
        self._fault_spec = fault_spec
        self._registrations: list[tuple[int, str, tuple]] = []  # (slot, cmd, payload)
        self._registered: set[tuple[str, str]] = set()
        self._outstanding: dict[int, _FabricItem] = {}
        self._results: dict[int, Any] = {}
        self._next_job_id = 0
        self._links: list[_AgentLink | None] = []
        self._metrics_base: dict[int, dict] = {}
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="fabric-control", daemon=True
        )
        self._thread.start()
        self._keepalive_task: asyncio.Future | None = None
        try:
            for endpoint in endpoints:
                host, port = self._endpoint_address(endpoint)
                self._links.append(
                    self._run(self._aconnect(len(self._links), host, port))
                )
            self._keepalive_task = asyncio.run_coroutine_threadsafe(
                self._keepalive(), self._loop
            )
        except BaseException:
            self._shutdown_loop()
            raise

    # -- loop plumbing -------------------------------------------------------
    @staticmethod
    def _endpoint_address(endpoint: Any) -> tuple[str, int]:
        if hasattr(endpoint, "host") and hasattr(endpoint, "port"):
            return endpoint.host, endpoint.port
        host, port = endpoint
        return host, port

    def _run(self, coro, timeout: float | None = None):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout or self._request_timeout)
        except TimeoutError:
            future.cancel()
            raise ProtocolError(
                f"fabric control operation timed out after "
                f"{timeout or self._request_timeout:.0f}s"
            ) from None

    def _shutdown_loop(self) -> None:
        async def _reap_tasks() -> None:
            me = asyncio.current_task()
            others = [task for task in asyncio.all_tasks() if task is not me]
            for task in others:
                task.cancel()
            await asyncio.gather(*others, return_exceptions=True)

        try:
            asyncio.run_coroutine_threadsafe(_reap_tasks(), self._loop).result(5.0)
        except Exception:  # noqa: BLE001 — shutdown is best-effort
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        # run_forever has returned; a close() on a live loop would raise.
        if not self._loop.is_running():
            self._loop.close()

    # -- link lifecycle ------------------------------------------------------
    async def _aconnect(self, index: int, host: str, port: int) -> _AgentLink:
        tcp = await asyncio.wait_for(
            AsyncTcpTransport.connect(
                host,
                port,
                local_party="parent",
                parties=CONTROL_PARTIES,
                name=f"fabric[{index}]",
                timeout=self._connect_timeout,
            ),
            self._connect_timeout,
        )
        inner: Any = tcp
        if self._fault_spec is not None:
            inner = AsyncFaultyTransport(tcp, self._fault_spec, name=f"fabric-chaos[{index}]")
        transport = AsyncReliableTransport(
            inner, name=f"fabric-link[{index}]", max_attempts=CONTROL_MAX_ATTEMPTS
        )
        link = _AgentLink(index, transport)
        await transport.send(
            "parent",
            pack_control(
                ControlVerb.HELLO,
                {
                    "version": CONTROL_VERSION,
                    "incarnation": self._incarnation,
                    "scheduler_spec": self._scheduler_spec,
                    "agent_index": index,
                    "heartbeat_interval": self._heartbeat_interval,
                    "metrics_interval": self._metrics_interval,
                    "parent_timeout": max(self._heartbeat_timeout * 4, 60.0),
                },
            ),
        )
        verb, body = unpack_control(
            await transport.receive("parent", timeout_seconds=self._connect_timeout)
        )
        if verb == ControlVerb.BYE:
            raise ProtocolError(
                f"agent at {host}:{port} refused registration: "
                f"{body.get('error', 'no reason given')}"
            )
        if verb != ControlVerb.HELLO:
            raise ProtocolError(
                f"agent at {host}:{port} broke the HELLO handshake (verb 0x{verb:02x})"
            )
        if body.get("version") != CONTROL_VERSION:
            raise ProtocolError(
                f"agent at {host}:{port} speaks control v{body.get('version')}, "
                f"this parent speaks v{CONTROL_VERSION}"
            )
        link.pid = body.get("pid")
        link.shard_index = body.get("shard_index")
        link.has_checkpoint = bool(body.get("has_checkpoint"))
        link.last_seen = time.monotonic()
        link.reader = asyncio.get_running_loop().create_task(self._reader(link))
        return link

    async def _reader(self, link: _AgentLink) -> None:
        """Route every inbound frame of one link (the only receive() caller)."""
        try:
            while True:
                verb, body = unpack_control(await link.transport.receive("parent"))
                link.last_seen = time.monotonic()
                if verb == ControlVerb.REPLY:
                    link.replies.put_nowait(body)
                elif verb == ControlVerb.METRICS:
                    # Streamed scrape: cumulative, so replace — never add.
                    link.metrics = body["metrics"]
                elif verb == ControlVerb.HEARTBEAT:
                    pass  # last_seen is the whole message
                elif verb == ControlVerb.BYE:
                    raise ProtocolError("agent said BYE")
        except asyncio.CancelledError:
            raise
        except BaseException as error:  # noqa: BLE001 — any reader death ends the link
            self._fail_link(link, error)

    def _fail_link(self, link: _AgentLink, error: BaseException) -> None:
        """Mark one link dead and fold its final metrics exactly once."""
        if not link.alive:
            return
        link.alive = False
        link.failure = error
        if link.metrics is not None:
            base = self._metrics_base.get(link.index)
            self._metrics_base[link.index] = (
                merge_snapshots(base, link.metrics) if base is not None else link.metrics
            )
            link.metrics = None
        link.replies.put_nowait(None)  # wake any request waiting on this link
        link.transport.close()

    async def _keepalive(self) -> None:
        """Parent-side heartbeats out, liveness policy in.

        Outbound beacons keep an idle agent's reliable receive loop fed (its
        retry budget measures silence, and silence is normal between
        bursts); the timeout check evicts an agent that has said nothing for
        ``heartbeat_timeout`` — unless a command is in flight, because a
        shard mid-burst is compute-bound, not gone.
        """
        beacon = pack_control(ControlVerb.HEARTBEAT, {})
        while True:
            await asyncio.sleep(self._heartbeat_interval)
            now = time.monotonic()
            for link in self._links:
                if link is None or not link.alive or link.lock.locked():
                    continue
                if now - link.last_seen > self._heartbeat_timeout:
                    self._fail_link(
                        link,
                        ProtocolError(
                            f"agent {link.index} unheard from for "
                            f"{now - link.last_seen:.1f}s (> {self._heartbeat_timeout}s)"
                        ),
                    )
                    continue
                try:
                    await link.transport.send("parent", beacon)
                except BaseException as error:  # noqa: BLE001
                    self._fail_link(link, error)

    # -- command plumbing ----------------------------------------------------
    def _link(self, index: int) -> _AgentLink:
        if not 0 <= index < len(self._links) or self._links[index] is None:
            raise ProtocolError(f"no agent {index} in this fabric")
        return self._links[index]  # type: ignore[return-value]

    async def _arequest(self, index: int, command: str, payload: Any) -> Any:
        link = self._link(index)
        async with link.lock:
            if not link.alive:
                raise ProtocolError(
                    f"agent {index} is gone (attach_replacement can recover it): "
                    f"{link.failure}"
                )
            seq = link.next_seq
            link.next_seq += 1
            await link.transport.send(
                "parent",
                pack_control(
                    ControlVerb.COMMAND,
                    {"seq": seq, "command": command, "payload": payload},
                ),
            )
            while True:
                item = await link.replies.get()
                if item is None:
                    raise ProtocolError(
                        f"agent {index} died mid-{command!r} "
                        f"(attach_replacement can recover it): {link.failure}"
                    )
                got_seq, (tag, body) = item
                if got_seq == seq:
                    break
        return self._absorb(link, command, tag, body)

    def _absorb(self, link: _AgentLink, command: str, tag: str, body: Any) -> Any:
        """Mirror of ``ShardedRuntime._collect``: land results, track metrics."""
        if tag == "error":
            raise ProtocolError(f"agent {link.index} rejected {command!r}: {body}")
        if tag == "results":
            results, metrics = body
            self._land(results)
            link.metrics = metrics
        elif tag == "restored":
            _resumed_ids, results, metrics = body
            self._land(results)
            link.metrics = metrics
        elif tag == "checkpointed":
            _blob, results, metrics = body
            self._land(results)
            link.metrics = metrics
        elif tag == "stats" and isinstance(body, dict) and "metrics" in body:
            link.metrics = body["metrics"]
        return body

    def _land(self, results: Sequence[tuple[int, Any]]) -> None:
        for job_id, result in results:
            self._results[job_id] = result
            self._outstanding.pop(job_id, None)

    def _request(self, index: int, command: str, payload: Any) -> Any:
        if self._closed:
            raise ProtocolError("the fabric runtime is closed")
        return self._run(self._arequest(index, command, payload))

    async def _afanout(self, work: Sequence[tuple[int, str, Any]]) -> list[Any]:
        results = await asyncio.gather(
            *(self._arequest(index, command, payload) for index, command, payload in work),
            return_exceptions=True,
        )
        for outcome in results:
            if isinstance(outcome, BaseException):
                raise outcome
        return results

    def _fanout(self, work: Sequence[tuple[int, str, Any]]) -> list[Any]:
        if self._closed:
            raise ProtocolError("the fabric runtime is closed")
        if not work:
            return []
        return self._run(self._afanout(work))

    def _live_indexes(self) -> list[int]:
        return [
            index
            for index, link in enumerate(self._links)
            if link is not None and link.alive
        ]

    def _serving_indexes(self) -> list[int]:
        """Live agents that currently own at least one slot."""
        owners = set(self._slot_owner)
        return [index for index in self._live_indexes() if index in owners]

    # -- agent membership ----------------------------------------------------
    def attach_agent(self, endpoint: Any) -> int:
        """Connect one more agent (owning no slots yet); returns its index.

        The standard migration target: spawn a fresh agent, attach it, then
        :func:`repro.fabric.migrate.migrate` a hash range onto it.
        """
        if self._closed:
            raise ProtocolError("the fabric runtime is closed")
        host, port = self._endpoint_address(endpoint)
        index = len(self._links)
        self._links.append(self._run(self._aconnect(index, host, port)))
        return index

    def attach_replacement(self, index: int, endpoint: Any) -> int:
        """Rebuild a dead agent position from a fresh process; resubmit gaps.

        The cross-host twin of :meth:`ShardedRuntime.restart_shard`: replay
        the position's registrations (OT pools deferred when a checkpoint
        will cover them), restore from the agent's *own* on-disk log — the
        replacement must be launched with the dead agent's checkpoint
        directory and shard index — then resubmit whatever the checkpoint
        did not cover.  Returns the number of resubmitted emails; ``0``
        means every in-flight email resumed from its snapshot.
        """
        old = self._link(index)
        if old.alive:
            self._fail_link(old, ProtocolError("replaced by attach_replacement"))
        host, port = self._endpoint_address(endpoint)
        fresh = self._run(self._aconnect(index, host, port))
        if fresh.shard_index != old.shard_index:
            self._run(self._aretire(fresh))
            raise ProtocolError(
                f"replacement for agent {index} serves shard {fresh.shard_index}, "
                f"expected {old.shard_index} (checkpoints would not line up)"
            )
        self._links[index] = fresh
        slots = {slot for slot, owner in enumerate(self._slot_owner) if owner == index}
        resuming = fresh.has_checkpoint
        for slot, command, payload in self._registrations:
            if slot in slots:
                self._request(
                    index, command, (*payload, True) if resuming else payload
                )
        resumed: set[int] = set()
        if resuming:
            resumed_ids, _results, _metrics = self._request(index, "restore", None)
            resumed = set(resumed_ids)
            self._request(index, "ensure_pools", None)
        resubmit = [
            (job_id, item)
            for job_id, item in sorted(self._outstanding.items())
            if item.slot in slots and job_id not in resumed
        ]
        if resubmit:
            self._request(
                index,
                "burst",
                [
                    (job_id, item.kind, item.address, item.features, item.candidates)
                    for job_id, item in resubmit
                ],
            )
        return len(resubmit)

    async def _aretire(self, link: _AgentLink) -> None:
        if link.alive:
            try:
                await link.transport.send("parent", pack_control(ControlVerb.BYE, {}))
            except BaseException:  # noqa: BLE001 — retirement is best-effort
                pass
        self._fail_link(link, ProtocolError(f"agent {link.index} retired"))
        if link.reader is not None:
            link.reader.cancel()

    def retire_agent(self, index: int) -> None:
        """Say BYE to one agent and fold its final metrics into the base.

        The agent must not own any slots (migrate them away first) — retiring
        a serving agent would orphan its mailboxes.
        """
        if index in set(self._slot_owner):
            raise ProtocolError(
                f"agent {index} still owns slots "
                f"{[s for s, o in enumerate(self._slot_owner) if o == index]}; "
                "migrate them away before retiring it"
            )
        self._run(self._aretire(self._link(index)))

    def agent_alive(self, index: int) -> bool:
        return self._link(index).alive

    def agent_pid(self, index: int) -> int:
        """The OS pid the agent announced in HELLO (crash drills kill this)."""
        pid = self._link(index).pid
        if pid is None:
            raise ProtocolError(f"agent {index} never completed its HELLO")
        return pid

    def slot_owners(self) -> list[int]:
        """Routing table copy: ``slot -> agent index``, one entry per slot."""
        return list(self._slot_owner)

    # -- registration (ShardedRuntime drive API) -----------------------------
    def shard_of(self, address: str) -> int:
        return shard_of_address(address, self.num_slots)

    def _agent_of_slot(self, slot: int) -> int:
        return self._slot_owner[slot]

    def register_spam(self, address: str, protocol: Any, setup: Any) -> None:
        slot = self.shard_of(address)
        payload = (address, protocol, setup)
        self._request(self._agent_of_slot(slot), "register_spam", payload)
        self._registrations.append((slot, "register_spam", payload))
        self._registered.add(("spam", address))

    def register_topics(self, address: str, protocol: Any, setup: Any) -> None:
        slot = self.shard_of(address)
        payload = (address, protocol, setup)
        self._request(self._agent_of_slot(slot), "register_topics", payload)
        self._registrations.append((slot, "register_topics", payload))
        self._registered.add(("topics", address))

    def has_spam(self, address: str) -> bool:
        return ("spam", address) in self._registered

    def has_topics(self, address: str) -> bool:
        return ("topics", address) in self._registered

    # -- submission / results ------------------------------------------------
    def _submit(self, items: list[_FabricItem]) -> list[int]:
        job_ids = []
        by_agent: dict[int, list[tuple]] = {}
        for item in items:
            job_id = self._next_job_id
            self._next_job_id += 1
            job_ids.append(job_id)
            self._outstanding[job_id] = item
            by_agent.setdefault(self._agent_of_slot(item.slot), []).append(
                (job_id, item.kind, item.address, item.features, item.candidates)
            )
        self._fanout(
            [(agent, "burst", batch) for agent, batch in by_agent.items()]
        )
        return job_ids

    def submit_spam(self, emails: Sequence[tuple[str, Any]]) -> list[int]:
        """Submit one burst of (address, features) emails; returns their job ids."""
        return self._submit(
            [
                _FabricItem(
                    slot=self.shard_of(address),
                    kind="spam",
                    address=address,
                    features=features,
                )
                for address, features in emails
            ]
        )

    def submit_topics(
        self, emails: Sequence[tuple[str, Any, Sequence[int] | None]]
    ) -> list[int]:
        """Submit one burst of (address, features, candidates) topic emails."""
        return self._submit(
            [
                _FabricItem(
                    slot=self.shard_of(address),
                    kind="topics",
                    address=address,
                    features=features,
                    candidates=candidates,
                )
                for address, features, candidates in emails
            ]
        )

    def poll(self) -> int:
        """Tick every serving agent's age triggers; returns new results landed."""
        before = len(self._results)
        self._fanout([(index, "poll", None) for index in self._serving_indexes()])
        return len(self._results) - before

    def drain(self) -> None:
        """Close every serving agent's open windows; all outstanding results land."""
        self._fanout([(index, "drain", None) for index in self._serving_indexes()])

    def take_result(self, job_id: int) -> Any:
        """Pop the protocol result for *job_id* (drain first if still open)."""
        if job_id not in self._results:
            raise ProtocolError(
                f"no result for job {job_id} yet "
                f"({len(self._outstanding)} emails still inside open windows)"
            )
        return self._results.pop(job_id)

    def outstanding_count(self) -> int:
        return len(self._outstanding)

    def run_spam_stream(self, bursts: Sequence[Sequence[tuple[str, Any]]]) -> list[Any]:
        """Feed bursts through the fabric, drain, return results in order."""
        job_ids: list[int] = []
        for burst in bursts:
            job_ids.extend(self.submit_spam(burst))
        self.drain()
        return [self.take_result(job_id) for job_id in job_ids]

    # -- telemetry -----------------------------------------------------------
    def agent_stats(self) -> list[dict[str, Any]]:
        """Per-agent serving stats from every live agent (by agent index)."""
        indexes = self._live_indexes()
        replies = self._fanout([(index, "stats", None) for index in indexes])
        return [
            dict(reply, agent=index, link=self._link(index).transport.stats)
            for index, reply in zip(indexes, replies)
        ]

    def aggregated_metrics(self) -> dict:
        """One merged snapshot covering every agent, past and present.

        Sum of each position's dead-incarnation base and the live agents'
        latest streamed/piggybacked snapshots — replace-per-agent, fold-once,
        exactly the :meth:`ShardedRuntime.aggregated_metrics` discipline, so
        migrations, evictions and replacements can never double-count.
        """
        return self._run(self._ametrics())

    async def _ametrics(self) -> dict:
        snaps = list(self._metrics_base.values()) + [
            link.metrics
            for link in self._links
            if link is not None and link.alive and link.metrics is not None
        ]
        return merge_snapshots(*snaps) if snaps else empty_snapshot()

    # -- migration (delegates to repro.fabric.migrate) -----------------------
    def migrate_agent(self, source: int, target: int) -> int:
        """Live-migrate every slot *source* owns onto *target*; see ``migrate``."""
        from repro.fabric.migrate import migrate

        return migrate(self, source, target)

    def rebalance(self) -> tuple[int, int, int] | None:
        """Move the hottest agent's range to a spare agent; see ``rebalance``."""
        from repro.fabric.migrate import rebalance

        return rebalance(self)

    # -- shutdown ------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for index in self._live_indexes():
            try:
                self._run(self._arequest(index, "stop", None), timeout=10.0)
            except ProtocolError:
                pass
        for link in self._links:
            if link is not None:
                try:
                    self._run(self._aretire(link), timeout=5.0)
                except ProtocolError:
                    pass
        self._shutdown_loop()

    def __enter__(self) -> "FabricRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
