"""``python -m repro.fabric`` runs one worker agent (see fabric.agent)."""

from repro.fabric.agent import main

raise SystemExit(main())
