"""Setuptools shim so `pip install -e .` works on environments without PEP 517 wheel support."""

from setuptools import setup

setup()
