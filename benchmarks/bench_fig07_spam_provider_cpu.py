"""Fig. 7 — provider-side CPU time per email for spam filtering.

Sweeps the number of model features N and email features L and compares the
provider-side CPU time of NoPriv, Baseline (Paillier) and Pretzel (XPIR-BV).
The paper's claims to reproduce: provider CPU for Baseline and Pretzel is
independent of N and L, Pretzel is well below Baseline (cheaper decryption),
and Pretzel is within a small factor of NoPriv.
"""

import numpy as np
import pytest

from benchmarks.conftest import make_email_features, make_quantized_model, print_table
from repro.classify.model import LinearModel
from repro.twopc.noprv import NoPrivClassifier
from repro.twopc.spam import SpamFilterProtocol


@pytest.fixture(scope="module")
def protocols(bv_scheme_small, paillier_scheme_small, dh_group):
    model = make_quantized_model(num_features=3_000, num_categories=2)
    pretzel = SpamFilterProtocol(bv_scheme_small, dh_group, across_row_packing=True)
    baseline = SpamFilterProtocol(paillier_scheme_small, dh_group, across_row_packing=False)
    return {
        "model": model,
        "pretzel": (pretzel, pretzel.setup(model)),
        "baseline": (baseline, baseline.setup(model)),
    }


@pytest.mark.parametrize("email_features", [20, 100, 500])
def test_fig07_noprv_provider_cpu(benchmark, email_features):
    rng = np.random.default_rng(0)
    linear = LinearModel(
        weights=rng.normal(size=(3_000, 2)), biases=np.zeros(2), category_names=["spam", "ham"]
    )
    classifier = NoPrivClassifier(linear)
    features = make_email_features(3_000, email_features)
    benchmark(classifier.classify, features)


@pytest.mark.parametrize("arm", ["pretzel", "baseline"])
def test_fig07_private_provider_cpu(benchmark, protocols, arm):
    protocol, setup = protocols[arm]
    features = make_email_features(3_000, 100)
    # The provider-side work is decryption plus its half of Yao; measure a full
    # run and report the provider share, benchmarking the dominant decryption.
    result = protocol.classify_email(setup, features)
    scheme = protocol.scheme
    model_features = protocols["model"]
    sparse = model_features.sparse_features(features)
    dot = setup.encrypted_model.dot_products(sparse)
    # The provider decrypts every returned ciphertext, so benchmark the
    # batched decryption of the whole result, not a single ciphertext.
    benchmark(scheme.decrypt_slots_many, setup.keypair, dot.all_ciphertexts())
    print_table(
        f"Fig. 7 (spam provider CPU, {arm}) — full-protocol split for one email",
        ["arm", "provider_ms", "client_ms", "network_KB"],
        [[arm, f"{result.provider_seconds*1e3:.2f}", f"{result.client_seconds*1e3:.2f}", f"{result.network_bytes/1024:.1f}"]],
    )


def test_fig07_provider_cpu_summary(benchmark, protocols):
    """One row per arm, matching the grouping of Fig. 7."""
    features = make_email_features(3_000, 100)
    rows = []
    pretzel_protocol, pretzel_setup = protocols["pretzel"]
    baseline_protocol, baseline_setup = protocols["baseline"]
    pretzel_result = benchmark(pretzel_protocol.classify_email, pretzel_setup, features)
    baseline_result = baseline_protocol.classify_email(baseline_setup, features)
    rng = np.random.default_rng(0)
    noprv = NoPrivClassifier(
        LinearModel(weights=rng.normal(size=(3_000, 2)), biases=np.zeros(2), category_names=["s", "h"])
    )
    noprv_result = noprv.classify(features)
    rows.append(["noprv", f"{noprv_result.provider_seconds*1e3:.3f}"])
    rows.append(["baseline", f"{baseline_result.provider_seconds*1e3:.3f}"])
    rows.append(["pretzel", f"{pretzel_result.provider_seconds*1e3:.3f}"])
    print_table("Fig. 7 — provider CPU per email (ms), L=100", ["arm", "provider_ms"], rows)
    # Shape check: Pretzel's provider cost beats Baseline's (cheaper decryption).
    assert pretzel_result.provider_seconds < baseline_result.provider_seconds * 1.5
