"""Fig. 13 — topic-classification accuracy vs. degree of feature selection.

Sweeps the kept-feature fraction N'/N with chi-square selection for NB, LR
and SVM topic classifiers on the synthetic 20News / Reuters / RCV1 analogues.
The paper's claim to reproduce: keeping roughly 25% of features costs only a
marginal drop in accuracy.
"""

import pytest

from benchmarks.conftest import print_table
from repro.classify.logistic import MultinomialLogisticRegression
from repro.classify.metrics import accuracy
from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.classify.selection import project_documents, select_features
from repro.classify.svm import OneVsAllSVM
from repro.datasets import newsgroups20_like, prepare_classification_data, rcv1_like, reuters_like

FRACTIONS = [1.0, 0.5, 0.25, 0.1]
CORPORA = {
    "20news-like": lambda: newsgroups20_like(scale=0.25),
    "reuters-like": lambda: reuters_like(scale=0.25),
    "rcv1-like": lambda: rcv1_like(scale=0.25, num_topics=20),
}


def _accuracy_at_fraction(data, fraction, classifier_name):
    if fraction < 1.0:
        keep = select_features(data.train_vectors, data.train_labels, data.num_features, fraction)
        train = project_documents(data.train_vectors, keep)
        test = project_documents(data.test_vectors, keep)
        num_features = len(keep)
    else:
        train, test, num_features = data.train_vectors, data.test_vectors, data.num_features
    if classifier_name == "NB":
        model = MultinomialNaiveBayes(num_features=num_features).fit(train, data.train_labels).to_linear_model()
    elif classifier_name == "LR":
        model = MultinomialLogisticRegression(
            num_features=num_features, num_categories=data.num_categories, epochs=3
        ).fit(train, data.train_labels).to_linear_model()
    else:
        model = OneVsAllSVM(
            num_features=num_features, num_categories=data.num_categories, epochs=4
        ).fit(train, data.train_labels).to_linear_model()
    return accuracy([model.predict(vector) for vector in test], data.test_labels)


@pytest.mark.parametrize("corpus_name", list(CORPORA))
def test_fig13_feature_selection_sweep(benchmark, corpus_name):
    data = prepare_classification_data(CORPORA[corpus_name](), max_features=2000)
    results = {}

    def sweep():
        for fraction in FRACTIONS:
            results[fraction] = _accuracy_at_fraction(data, fraction, "NB")
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    # A lighter sweep for the other two classifiers at the operating point.
    lr_quarter = _accuracy_at_fraction(data, 0.25, "LR")
    svm_quarter = _accuracy_at_fraction(data, 0.25, "SVM")
    rows = [
        [f"N'/N={fraction}", f"{results[fraction]*100:.1f}"] for fraction in FRACTIONS
    ] + [["LR @ 0.25", f"{lr_quarter*100:.1f}"], ["SVM @ 0.25", f"{svm_quarter*100:.1f}"]]
    print_table(f"Fig. 13 — accuracy vs feature selection on {corpus_name} (NB sweep)", ["setting", "accuracy %"], rows)
    # Paper shape: 25% of the features costs only a modest accuracy drop.
    assert results[0.25] > results[1.0] - 0.10
