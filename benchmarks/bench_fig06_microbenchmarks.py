"""Fig. 6 — microbenchmarks of the common operations.

The paper's Fig. 6 reports per-operation CPU costs for GPG (e2e module),
Paillier, XPIR-BV, Yao (comparison and argmax) and the NoPriv plaintext
operations.  Each test here benchmarks one row of that figure using this
library's implementations.
"""

import pytest

from repro.crypto.circuits import SpamCircuit, TopicCircuit
from repro.crypto.garbled import garble
from repro.mail.e2e import E2EIdentity, E2EModule
from repro.mail.message import EmailMessage


@pytest.fixture(scope="module")
def email_identities(dh_group):
    e2e = E2EModule(dh_group)
    alice = E2EIdentity.generate("alice@example.com", dh_group)
    bob = E2EIdentity.generate("bob@example.com", dh_group)
    message = EmailMessage("alice@example.com", "bob@example.com", "bench", "x" * 75_000)
    return e2e, alice, bob, message


class TestGpgRow:
    def test_e2e_encrypt(self, benchmark, email_identities):
        e2e, alice, bob, message = email_identities
        benchmark(e2e.encrypt_and_sign, message, alice, bob.public_bundle())

    def test_e2e_decrypt(self, benchmark, email_identities):
        e2e, alice, bob, message = email_identities
        encrypted = e2e.encrypt_and_sign(message, alice, bob.public_bundle())
        benchmark(e2e.verify_and_decrypt, encrypted, bob, alice.public_bundle())


class TestPaillierRow:
    def test_encrypt(self, benchmark, paillier_scheme):
        keys = paillier_scheme.generate_keypair()
        benchmark(paillier_scheme.encrypt_slots, keys.public, [1, 2, 3])

    def test_decrypt(self, benchmark, paillier_scheme):
        keys = paillier_scheme.generate_keypair()
        ciphertext = paillier_scheme.encrypt_slots(keys.public, [1, 2, 3])
        benchmark(paillier_scheme.decrypt_slots, keys, ciphertext)

    def test_homomorphic_add(self, benchmark, paillier_scheme):
        keys = paillier_scheme.generate_keypair()
        a = paillier_scheme.encrypt_slots(keys.public, [1])
        b = paillier_scheme.encrypt_slots(keys.public, [2])
        benchmark(paillier_scheme.add, a, b)


class TestXpirBvRow:
    def test_encrypt(self, benchmark, bv_scheme):
        keys = bv_scheme.generate_keypair()
        benchmark(bv_scheme.encrypt_slots, keys.public, [1, 2, 3])

    def test_decrypt(self, benchmark, bv_scheme):
        keys = bv_scheme.generate_keypair()
        ciphertext = bv_scheme.encrypt_slots(keys.public, [1, 2, 3])
        benchmark(bv_scheme.decrypt_slots, keys, ciphertext)

    def test_homomorphic_add(self, benchmark, bv_scheme):
        keys = bv_scheme.generate_keypair()
        a = bv_scheme.encrypt_slots(keys.public, [1])
        b = bv_scheme.encrypt_slots(keys.public, [2])
        benchmark(bv_scheme.add, a, b)

    def test_left_shift_and_add(self, benchmark, bv_scheme):
        keys = bv_scheme.generate_keypair()
        accumulator = bv_scheme.encrypt_slots(keys.public, [1, 2])
        row = bv_scheme.encrypt_slots(keys.public, [3, 4])
        benchmark(lambda: bv_scheme.add(accumulator, bv_scheme.shift_up(row, 2)))

    def test_ciphertext_size_matches_paper_scale(self, benchmark, bv_scheme):
        size = benchmark(bv_scheme.ciphertext_size_bytes)
        # The paper quotes ~16 KB XPIR-BV ciphertexts (§4.1).
        assert 12 * 1024 < size < 20 * 1024

    def test_packed_dot_product_per_email(self, benchmark, bv_scheme):
        """The client's whole homomorphic dot product (§4.2) as one operation.

        This is the unit the evaluation-domain representation and the batched
        accumulator optimise: an across-row packed spam model evaluated against
        an L=100 sparse email.
        """
        import numpy as np

        from repro.crypto.packing import PackedLinearModel

        keys = bv_scheme.generate_keypair()
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 1000, size=(501, 2)).tolist()
        model = PackedLinearModel.encrypt(bv_scheme, keys.public, rows, across_rows=True)
        sparse = [(int(row), 1) for row in rng.choice(500, size=100, replace=False)]
        model.dot_products(sparse)  # warm the stacked-model cache
        benchmark(model.dot_products, sparse)

    def test_decrypt_many_batch(self, benchmark, bv_scheme):
        keys = bv_scheme.generate_keypair()
        batch = [bv_scheme.encrypt_slots(keys.public, [index]) for index in range(8)]
        benchmark(bv_scheme.decrypt_slots_many, keys, batch)


class TestYaoRow:
    def test_garble_comparison_circuit(self, benchmark):
        circuit = SpamCircuit.build(32)
        benchmark(garble, circuit.circuit)

    def test_garble_argmax_per_input(self, benchmark):
        circuit = TopicCircuit.build(32, 10, 11)
        result = benchmark(garble, circuit.circuit)
        assert result.tables.size_bytes() > 0


class TestNoPrivRow:
    def test_lookup_and_float_add(self, benchmark):
        import numpy as np

        weights = np.random.default_rng(0).normal(size=(10_000, 2))
        biases = np.zeros(2)

        def classify():
            scores = biases.copy()
            for index in range(0, 10_000, 50):
                scores += weights[index]
            return scores

        benchmark(classify)
