"""Fig. 8 — size of the encrypted spam-classification model.

Compares, per model size N: the plaintext model, the Baseline's Paillier
encryption, Pretzel with the legacy packing ("Pretzel-NoOptimPack") and
Pretzel with across-row packing.  The paper's claims: Pretzel's model is ~7x
smaller than the Baseline's, and the across-row packing is what makes the
XPIR-BV ciphertext expansion tolerable (NoOptimPack is ~400x worse).
"""

import pytest

from benchmarks.conftest import SPAM_MODEL_FEATURES, make_quantized_model, print_table
from repro.costmodel import MicrobenchmarkConstants, WorkloadParameters
from repro.costmodel.estimates import estimate_baseline, estimate_pretzel
from repro.crypto.packing import PackedLinearModel


@pytest.mark.parametrize("num_features", [500, 2_000])
def test_fig08_measured_model_sizes(benchmark, bv_scheme_small, paillier_scheme_small, num_features):
    model = make_quantized_model(num_features=num_features, num_categories=2)
    rows_matrix = model.matrix_rows()
    bv_keys = bv_scheme_small.generate_keypair()
    paillier_keys = paillier_scheme_small.generate_keypair()

    pretzel = benchmark(
        PackedLinearModel.encrypt, bv_scheme_small, bv_keys.public, rows_matrix, True
    )
    no_pack = PackedLinearModel.encrypt(bv_scheme_small, bv_keys.public, rows_matrix, across_rows=False)
    baseline = PackedLinearModel.encrypt(
        paillier_scheme_small, paillier_keys.public, rows_matrix, across_rows=False
    )
    plaintext = model.plaintext_size_bytes()
    rows = [
        ["non-encrypted", f"{plaintext/1024:.1f} KB"],
        ["baseline (paillier)", f"{baseline.storage_bytes()/1024:.1f} KB"],
        ["pretzel-NoOptimPack", f"{no_pack.storage_bytes()/1024:.1f} KB"],
        ["pretzel", f"{pretzel.storage_bytes()/1024:.1f} KB"],
    ]
    print_table(f"Fig. 8 — spam model sizes (N={num_features}, B=2)", ["arm", "size"], rows)
    # Shape checks from the paper.
    assert pretzel.storage_bytes() < no_pack.storage_bytes() / 50
    assert pretzel.storage_bytes() < baseline.storage_bytes() * 2


def test_fig08_extrapolated_to_paper_scale(benchmark):
    """Analytic extrapolation to N = 200K / 1M / 5M (the actual Fig. 8 axis)."""
    constants = MicrobenchmarkConstants.paper_values()
    rows = []

    def compute():
        rows.clear()
        for features in (200_000, 1_000_000, 5_000_000):
            workload = WorkloadParameters(model_features=features, categories=2)
            baseline = estimate_baseline(constants, workload)
            pretzel = estimate_pretzel(constants, workload)
            rows.append(
                [
                    f"N={features:,}",
                    f"{features * 2 * 4 / 1e6:.1f} MB",
                    f"{baseline.client_storage_bytes/1e6:.1f} MB",
                    f"{pretzel.client_storage_bytes/1e6:.1f} MB",
                ]
            )
        return rows

    benchmark(compute)
    print_table(
        "Fig. 8 — extrapolated model sizes at paper scale",
        ["N", "non-encrypted", "baseline", "pretzel"],
        rows,
    )
