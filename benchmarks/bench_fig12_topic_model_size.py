"""Fig. 12 — size of the encrypted topic-extraction model.

Measured storage for a scaled-down model plus the analytic extrapolation to
the paper's N = 20K / 100K, B = 2048 parameters.  The paper's claim to
reproduce: Pretzel's topic model is larger than the Baseline's (XPIR-BV
ciphertext expansion, ~2x) but both are within a small factor of each other.
"""

from benchmarks.conftest import make_quantized_model, print_table
from repro.costmodel import MicrobenchmarkConstants, WorkloadParameters
from repro.costmodel.estimates import estimate_baseline, estimate_pretzel
from repro.crypto.packing import PackedLinearModel


def test_fig12_measured_topic_model_size(benchmark, bv_scheme_small, paillier_scheme_small):
    categories = 64
    model = make_quantized_model(num_features=400, num_categories=categories, seed=12)
    rows_matrix = model.matrix_rows()
    bv_keys = bv_scheme_small.generate_keypair()
    paillier_keys = paillier_scheme_small.generate_keypair()
    pretzel = benchmark.pedantic(
        PackedLinearModel.encrypt,
        args=(bv_scheme_small, bv_keys.public, rows_matrix),
        kwargs={"across_rows": True},
        rounds=1,
        iterations=1,
    )
    baseline = PackedLinearModel.encrypt(
        paillier_scheme_small, paillier_keys.public, rows_matrix, across_rows=False
    )
    rows = [
        ["non-encrypted", f"{model.plaintext_size_bytes()/1024:.1f} KB"],
        ["baseline (paillier)", f"{baseline.storage_bytes()/1024:.1f} KB"],
        ["pretzel (xpir-bv)", f"{pretzel.storage_bytes()/1024:.1f} KB"],
    ]
    print_table(f"Fig. 12 — topic model size (N=400, B={categories})", ["arm", "size"], rows)


def test_fig12_extrapolated_to_paper_scale(benchmark):
    constants = MicrobenchmarkConstants.paper_values()
    rows = []

    def compute():
        rows.clear()
        for features in (20_000, 100_000):
            workload = WorkloadParameters(model_features=features, categories=2048, candidate_topics=20)
            baseline = estimate_baseline(constants, workload)
            pretzel = estimate_pretzel(constants, workload)
            rows.append(
                [
                    f"N={features:,}",
                    f"{features * 2048 * 4 / 1e6:.0f} MB",
                    f"{baseline.client_storage_bytes/1e6:.0f} MB",
                    f"{pretzel.client_storage_bytes/1e6:.0f} MB",
                ]
            )
        return rows

    benchmark(compute)
    print_table(
        "Fig. 12 — extrapolated topic model sizes at paper scale (B=2048)",
        ["N", "non-encrypted", "baseline", "pretzel"],
        rows,
    )
    # Paper shape: Pretzel's encrypted model is within ~4x of the Baseline's.
    baseline_mb = float(rows[-1][2].split()[0])
    pretzel_mb = float(rows[-1][3].split()[0])
    assert pretzel_mb < 4 * baseline_mb
