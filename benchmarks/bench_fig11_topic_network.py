"""Fig. 11 — network transfers per email for topic extraction.

Measured protocol bytes per email for Baseline-style (B'=B) and Pretzel with
decomposition (B'=10, 20), across category counts.  The paper's claims to
reproduce: without decomposition the transfer grows linearly with B (8 MB at
B=2048); with decomposition it is independent of B and proportional to B'.
"""

import pytest

from benchmarks.conftest import make_email_features, make_quantized_model, print_table
from repro.costmodel import MicrobenchmarkConstants, WorkloadParameters
from repro.costmodel.estimates import estimate_baseline, estimate_pretzel
from repro.twopc.topics import TopicExtractionProtocol

MODEL_FEATURES = 800
CATEGORY_COUNTS = [16, 64]


@pytest.fixture(scope="module")
def setups(bv_scheme_small, dh_group):
    result = {}
    for categories in CATEGORY_COUNTS:
        model = make_quantized_model(MODEL_FEATURES, categories, seed=categories)
        protocol = TopicExtractionProtocol(bv_scheme_small, dh_group)
        result[categories] = (protocol, protocol.setup(model))
    return result


@pytest.mark.parametrize("categories", CATEGORY_COUNTS)
def test_fig11_measured_network_transfers(benchmark, setups, categories):
    protocol, setup = setups[categories]
    features = make_email_features(MODEL_FEATURES, 50, boolean=False)
    results = {}

    def run_all():
        results["full"] = protocol.extract_topic(setup, features, candidate_topics=None)
        results["b10"] = protocol.extract_topic(setup, features, candidate_topics=list(range(10)))
        results["b5"] = protocol.extract_topic(setup, features, candidate_topics=list(range(5)))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        ["B'=B", f"{results['full'].network_bytes/1024:.1f} KB"],
        ["B'=10", f"{results['b10'].network_bytes/1024:.1f} KB"],
        ["B'=5", f"{results['b5'].network_bytes/1024:.1f} KB"],
    ]
    print_table(f"Fig. 11 — topic-extraction network per email, B={categories}", ["arm", "bytes"], rows)
    # Decomposition decouples network cost from B.
    assert results["b10"].network_bytes < results["full"].network_bytes
    assert results["b5"].network_bytes < results["b10"].network_bytes


def test_fig11_extrapolated_to_paper_scale(benchmark):
    constants = MicrobenchmarkConstants.paper_values()
    rows = []

    def compute():
        rows.clear()
        for categories in (128, 512, 2048):
            baseline = estimate_baseline(
                constants, WorkloadParameters(model_features=100_000, categories=categories)
            )
            pretzel_20 = estimate_pretzel(
                constants,
                WorkloadParameters(model_features=100_000, categories=categories, candidate_topics=20),
            )
            pretzel_10 = estimate_pretzel(
                constants,
                WorkloadParameters(model_features=100_000, categories=categories, candidate_topics=10),
            )
            email = 75 * 1024
            rows.append(
                [
                    f"B={categories}",
                    f"{(baseline.email_network_bytes - email)/1024:.0f} KB",
                    f"{(pretzel_20.email_network_bytes - email)/1024:.0f} KB",
                    f"{(pretzel_10.email_network_bytes - email)/1024:.0f} KB",
                ]
            )
        return rows

    benchmark(compute)
    print_table(
        "Fig. 11 — extrapolated protocol bytes per email at paper scale",
        ["B", "baseline", "pretzel B'=20", "pretzel B'=10"],
        rows,
    )
