"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index).  The paper's headline parameters (N = 5M
features, 800k-document corpora, EC2 hardware) are too large for a
pure-Python run, so the benches use scaled-down workloads and, where the
figure is about absolute scale (model sizes, setup cost), also print the
analytic extrapolation from the Fig. 3 cost model.  Run with ``-s`` to see
the per-figure tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.model import LinearModel, QuantizedLinearModel
from repro.crypto.bv import BVParameters, BVScheme
from repro.crypto.dh import generate_group
from repro.crypto.paillier import PaillierScheme

# Scaled-down workload sizes used across the benches.
SPAM_MODEL_FEATURES = [2_000, 10_000, 50_000]      # stands in for N = 200K / 1M / 5M
EMAIL_FEATURE_COUNTS = [20, 100, 500]              # stands in for L = 200 / 1K / 5K
TOPIC_CATEGORY_COUNTS = [16, 64, 256]              # stands in for B = 128 / 512 / 2048
SCALE_NOTE = (
    "scaled-down workload: divide-by-100 feature counts and divide-by-8 category "
    "counts relative to the paper; shapes and ratios are the comparison target"
)


def make_quantized_model(num_features: int, num_categories: int, seed: int = 0) -> QuantizedLinearModel:
    """Random linear model quantized with the default bin/fin budget."""
    rng = np.random.default_rng(seed)
    linear = LinearModel(
        weights=rng.normal(size=(num_features, num_categories)),
        biases=rng.normal(size=num_categories),
        category_names=[f"c{i}" for i in range(num_categories)],
    )
    return QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=4096
    )


def make_email_features(num_features: int, email_features: int, seed: int = 1, boolean: bool = True):
    """A synthetic email's sparse feature vector with L non-zero entries."""
    rng = np.random.default_rng(seed)
    indices = rng.choice(num_features, size=min(email_features, num_features), replace=False)
    return {int(index): 1 if boolean else int(rng.integers(1, 5)) for index in indices}


@pytest.fixture(scope="session")
def dh_group():
    return generate_group(256)


@pytest.fixture(scope="session")
def bv_scheme():
    """Paper-faithful XPIR-BV parameters: 1024 slots, ~16 KB ciphertexts."""
    return BVScheme(BVParameters())


@pytest.fixture(scope="session")
def bv_scheme_small():
    """Reduced ring degree for benches that sweep many configurations."""
    return BVScheme(BVParameters.test_parameters())


@pytest.fixture(scope="session")
def paillier_scheme():
    return PaillierScheme(modulus_bits=1024, slot_bits=32)


@pytest.fixture(scope="session")
def paillier_scheme_small():
    return PaillierScheme(modulus_bits=512, slot_bits=32)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Uniform table printer for the per-figure outputs."""
    print(f"\n=== {title} ===")
    print(f"    ({SCALE_NOTE})")
    widths = [max(len(str(header[i])), max((len(str(row[i])) for row in rows), default=0)) for i in range(len(header))]
    print("    " + "  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))))
    for row in rows:
        print("    " + "  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))
