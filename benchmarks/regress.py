"""Regression benchmark harness: the BV hot path and the serving runtime.

``--suite hotpath`` (default) times the operations that dominate Pretzel's
per-email costs (Figs. 6, 7 and 10).  ``--suite runtime`` measures multi-user
serving-loop throughput: 8 emails classified one-shot sequentially versus as
8 concurrent sessions through :class:`repro.core.runtime.ProviderRuntime`
(cross-session batched decrypts + the per-pair persistent OT extension).
Each suite writes its medians to a ``BENCH_*.json`` file, so successive PRs
can track the performance trajectory instead of re-deriving it from one-off
pytest-benchmark runs.

Usage::

    PYTHONPATH=src python benchmarks/regress.py                 # full-size ring (n=1024)
    PYTHONPATH=src python benchmarks/regress.py --ring-degree 256 --repeat 3
    PYTHONPATH=src python benchmarks/regress.py --suite runtime
    PYTHONPATH=src python benchmarks/regress.py --output BENCH_smoke.json

The JSON schema is flat on purpose: ``{"meta": {...}, "results": {name: ...}}``.
Compare two files with any JSON diff tool; lower is better for ``*_ms`` rows,
higher for ``*_emails_per_s`` rows.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.classify.model import LinearModel, QuantizedLinearModel
from repro.core.runtime import ProviderRuntime, run_spam_batch
from repro.crypto.bv import BVParameters, BVScheme
from repro.crypto.dh import generate_group
from repro.crypto.packing import PackedLinearModel, decrypt_dot_products
from repro.twopc.blinding import blind_dot_products, blind_extracted_candidates
from repro.twopc.spam import SpamFilterProtocol

SPAM_FEATURE_ROWS = 500
EMAIL_FEATURES = 100
TOPIC_CATEGORIES = 64
TOPIC_CANDIDATES = 10
RUNTIME_SESSIONS = 8
RUNTIME_DH_BITS = 256


def _median_ms(function, repeat: int) -> float:
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        function()
        samples.append((time.perf_counter() - start) * 1e3)
    return statistics.median(samples)


def run(ring_degree: int, repeat: int) -> dict:
    parameters = BVParameters(ring_degree=ring_degree)
    scheme = BVScheme(parameters)
    keys = scheme.generate_keypair()
    results: dict[str, float] = {}

    results["bv_keygen_ms"] = _median_ms(scheme.generate_keypair, repeat)
    ciphertext = scheme.encrypt_slots(keys.public, [1, 2, 3])
    results["bv_encrypt_ms"] = _median_ms(
        lambda: scheme.encrypt_slots(keys.public, [1, 2, 3]), repeat
    )
    results["bv_decrypt_ms"] = _median_ms(
        lambda: scheme.decrypt_slots(keys, ciphertext), repeat
    )
    batch = [scheme.encrypt_slots(keys.public, [index]) for index in range(8)]
    results["bv_decrypt_many8_ms"] = _median_ms(
        lambda: scheme.decrypt_slots_many(keys, batch), repeat
    )
    results["bv_add_ms"] = _median_ms(lambda: scheme.add(ciphertext, ciphertext), repeat)
    results["bv_shift_up_ms"] = _median_ms(lambda: scheme.shift_up(ciphertext, 2), repeat)

    # Spam arm (Fig. 7 client): across-row packed two-column model.
    rng = np.random.default_rng(0)
    spam_rows = rng.integers(0, 1000, size=(SPAM_FEATURE_ROWS + 1, 2)).tolist()
    spam_model = PackedLinearModel.encrypt(scheme, keys.public, spam_rows, across_rows=True)
    sparse = [
        (int(row), int(freq))
        for row, freq in zip(
            rng.choice(SPAM_FEATURE_ROWS, size=EMAIL_FEATURES, replace=False),
            rng.integers(1, 8, size=EMAIL_FEATURES),
        )
    ]
    spam_dot = spam_model.dot_products(sparse)  # warm the model stacks
    results["spam_dot_products_ms"] = _median_ms(lambda: spam_model.dot_products(sparse), repeat)
    results["spam_blinding_ms"] = _median_ms(
        lambda: blind_dot_products(
            scheme, keys.public, spam_model, spam_dot, output_columns=[0, 1], dot_bits=20
        ),
        repeat,
    )
    results["spam_client_total_ms"] = (
        results["spam_dot_products_ms"] + results["spam_blinding_ms"]
    )
    blinded = blind_dot_products(
        scheme, keys.public, spam_model, spam_dot, output_columns=[0, 1], dot_bits=20
    )
    results["spam_provider_decrypt_ms"] = _median_ms(
        lambda: scheme.decrypt_slots_many(keys, blinded.ciphertexts), repeat
    )

    # Topic arm (Fig. 10 client): candidate extraction over a wider model.
    topic_rows = rng.integers(0, 1000, size=(101, TOPIC_CATEGORIES)).tolist()
    topic_model = PackedLinearModel.encrypt(scheme, keys.public, topic_rows, across_rows=True)
    topic_sparse = [(int(row), 1) for row in rng.choice(100, size=30, replace=False)]
    topic_dot = topic_model.dot_products(topic_sparse)
    candidates = list(range(TOPIC_CANDIDATES))
    results["topic_dot_products_ms"] = _median_ms(
        lambda: topic_model.dot_products(topic_sparse), repeat
    )
    results["topic_candidate_blinding_ms"] = _median_ms(
        lambda: blind_extracted_candidates(
            scheme, keys.public, topic_model, topic_dot, candidate_columns=candidates, dot_bits=20
        ),
        repeat,
    )

    # Sanity pin: the batched path must agree with the plaintext reference.
    reference = np.array(spam_rows[-1], dtype=np.int64)
    for row, freq in sparse:
        reference = reference + freq * np.array(spam_rows[row], dtype=np.int64)
    decrypted = decrypt_dot_products(scheme, keys, spam_dot)
    if decrypted != [int(value) % scheme.slot_modulus for value in reference]:
        raise AssertionError("batched dot products disagree with the plaintext reference")

    return results


def run_runtime(ring_degree: int, repeat: int) -> dict:
    """Multi-user serving-loop throughput: sequential one-shots vs 8 concurrent.

    The sequential arm is the one-shot baseline (fresh sessions, fresh base
    OTs per email); the concurrent arm drives the same 8 emails through the
    serving loop, which batches the provider decrypts across sessions and
    amortises one per-pair OT-extension handshake over the whole burst.
    """
    parameters = BVParameters(ring_degree=ring_degree)
    scheme = BVScheme(parameters)
    group = generate_group(RUNTIME_DH_BITS)
    rng = np.random.default_rng(7)
    linear = LinearModel(
        weights=rng.normal(size=(SPAM_FEATURE_ROWS, 2)),
        biases=np.array([0.25, -0.25]),
        category_names=["spam", "ham"],
    )
    quantized = QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=4096
    )
    protocol = SpamFilterProtocol(scheme, group)
    setup = protocol.setup(quantized)
    emails = [
        {int(row): 1 for row in rng.choice(SPAM_FEATURE_ROWS, size=EMAIL_FEATURES, replace=False)}
        for _ in range(RUNTIME_SESSIONS)
    ]
    # Warm the one-time caches both arms share (model stacks, circuits).
    expected = [protocol.classify_email(setup, features).is_spam for features in emails]

    sequential_rates = []
    concurrent_rates = []
    batch_counts = []
    largest_batches = []
    for _ in range(repeat):
        start = time.perf_counter()
        sequential = [protocol.classify_email(setup, features) for features in emails]
        sequential_rates.append(RUNTIME_SESSIONS / (time.perf_counter() - start))
        runtime = ProviderRuntime()
        start = time.perf_counter()
        concurrent = run_spam_batch(protocol, setup, emails, runtime=runtime)
        concurrent_rates.append(RUNTIME_SESSIONS / (time.perf_counter() - start))
        # The batch *count* (and largest batch) are what detect a batching
        # regression: total ciphertexts is invariant under batching.
        batch_counts.append(len(runtime.decrypt_batch_sizes))
        largest_batches.append(max(runtime.decrypt_batch_sizes))
        if [r.is_spam for r in sequential] != expected or [r.is_spam for r in concurrent] != expected:
            raise AssertionError("concurrent and sequential verdicts disagree")

    sequential_rate = statistics.median(sequential_rates)
    concurrent_rate = statistics.median(concurrent_rates)
    # The suite's reason to exist: the serving loop must never be slower than
    # one-shot sequential sessions.  Fail loudly (CI-visible) if it regresses.
    if concurrent_rate < sequential_rate:
        raise AssertionError(
            f"serving-loop throughput regressed: {concurrent_rate:.2f} emails/s "
            f"concurrent < {sequential_rate:.2f} emails/s sequential"
        )
    return {
        "runtime_sequential_emails_per_s": sequential_rate,
        "runtime_concurrent8_emails_per_s": concurrent_rate,
        "runtime_concurrent_speedup": concurrent_rate / sequential_rate,
        "runtime_decrypt_batches_per_burst": statistics.median(batch_counts),
        "runtime_largest_decrypt_batch": statistics.median(largest_batches),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ring-degree", type=int, default=1024)
    parser.add_argument("--repeat", type=int, default=9, help="samples per op (median reported)")
    parser.add_argument(
        "--suite",
        choices=("hotpath", "runtime"),
        default="hotpath",
        help="hotpath = BV micro/protocol ops; runtime = serving-loop throughput",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="output JSON path (default benchmarks/BENCH_<suite>_n<degree>.json)",
    )
    args = parser.parse_args()
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")
    stem = "bv_hotpath" if args.suite == "hotpath" else "runtime"
    output = args.output or Path(__file__).parent / f"BENCH_{stem}_n{args.ring_degree}.json"

    if args.suite == "hotpath":
        results = run(args.ring_degree, args.repeat)
    else:
        results = run_runtime(args.ring_degree, args.repeat)
    payload = {
        "meta": {
            "harness": "benchmarks/regress.py",
            "suite": args.suite,
            "ring_degree": args.ring_degree,
            "repeat": args.repeat,
            "spam_feature_rows": SPAM_FEATURE_ROWS,
            "email_features": EMAIL_FEATURES,
            "topic_categories": TOPIC_CATEGORIES,
            "topic_candidates": TOPIC_CANDIDATES,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        },
        "results": {name: round(value, 4) for name, value in results.items()},
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(name) for name in results)
    print(f"{args.suite} suite (ring degree {args.ring_degree}, median of {args.repeat}):")
    for name, value in results.items():
        unit = "" if args.suite == "runtime" else " ms"
        print(f"  {name.ljust(width)}  {value:10.3f}{unit}")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
